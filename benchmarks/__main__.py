"""``python -m benchmarks`` entry point (writes ``BENCH_5.json`` by default)."""

from .harness import main

if __name__ == "__main__":
    raise SystemExit(main())
