"""``python -m benchmarks`` entry point."""

from .harness import main

if __name__ == "__main__":
    raise SystemExit(main())
