"""Fail CI unless the cross-branch join plan pays off on the split workload.

The §4 acceptance gate: on the ``graph_reverse`` workload the hot query
binds ``{dst}``, whose column is only indexed by the ``dst``-keyed
key-projection branch while the weights live under the ``src``-keyed
primary.  The planner must answer it with a **join plan** (Figure 8), and
that plan must be strictly cheaper — on deterministic
:class:`~repro.structures.base.OperationCounter` access counts — than the
best single-path plan over the same populated instance.  The harness
records the comparison in the report's ``join_plan`` section
(:func:`measure_join_benefit`); this script validates it.

Usage::

    PYTHONPATH=src python benchmarks/check_join.py BENCH_5.json
"""

from __future__ import annotations

import json
import sys

#: Workload and hot pattern the gate measures.
WORKLOAD = "graph_reverse"
HOT_PATTERN = ("dst",)


def measure_join_benefit(workload) -> dict:
    """Replay *workload* on the interpreted tier, then measure the hot
    pattern's chosen plan against the best single-path plan.

    Both plans run over the identical populated instance and every distinct
    value of the hot pattern's column(s), under the library-wide
    :class:`~repro.structures.base.OperationCounter` — machine- and
    timing-independent.  Returns the ``join_plan`` report section.
    """
    from repro.core import Tuple
    from repro.decomposition import DecomposedRelation, JoinPlan, execute_plan, plan_query
    from repro.structures import COUNTER

    from .harness import replay

    relation = DecomposedRelation(workload.spec, workload.layout)
    replay(relation, workload.trace)

    pattern_cols = frozenset(HOT_PATTERN)
    chosen = relation.plan_for(pattern_cols)
    single = plan_query(
        relation.decomposition,
        pattern_cols,
        sizes=relation.instance.edge_sizes(),
        spec=workload.spec,
        allow_join=False,
    )
    values = sorted(
        {tuple(t[c] for c in sorted(pattern_cols)) for t in relation.instance.iter_tuples()}
    )
    patterns = [
        Tuple(dict(zip(sorted(pattern_cols), value))) for value in values
    ]

    def count(plan) -> int:
        with COUNTER:
            for pattern in patterns:
                rows = list(execute_plan(plan, relation.instance, pattern))
                assert rows is not None
            return COUNTER.accesses

    chosen_accesses = count(chosen)
    single_accesses = count(single)
    # Both plans must agree on every result (they answer the same queries).
    for pattern in patterns:
        left = set(execute_plan(chosen, relation.instance, pattern))
        right = set(execute_plan(single, relation.instance, pattern))
        assert left == right, f"join and single-path plans disagree on {pattern!r}"
    return {
        "workload": workload.name,
        "pattern": sorted(pattern_cols),
        "queries": len(patterns),
        "chosen_plan": chosen.describe(),
        "chosen_is_join": isinstance(chosen, JoinPlan),
        "join_accesses": chosen_accesses,
        "single_accesses": single_accesses,
        "single_plan": single.describe(),
        "speedup": round(single_accesses / chosen_accesses, 2)
        if chosen_accesses
        else None,
    }


def check(report: dict) -> list:
    failures = []
    section = report.get("join_plan")
    if section is None:
        return [
            "join_plan section missing from the report (was the harness run "
            "on an older benchmarks/ tree?)"
        ]
    if section.get("workload") != WORKLOAD:
        failures.append(
            f"join_plan section measures {section.get('workload')!r}, "
            f"expected {WORKLOAD!r}"
        )
    if not section.get("chosen_is_join"):
        failures.append(
            f"the planner did not choose a join plan for the hot pattern "
            f"{section.get('pattern')}: chose {section.get('chosen_plan')!r}"
        )
    join_accesses = section.get("join_accesses", 0)
    single_accesses = section.get("single_accesses", 0)
    if not join_accesses or join_accesses >= single_accesses:
        failures.append(
            f"join plan ({join_accesses:,d} accesses) does not strictly beat "
            f"the best single-path plan ({single_accesses:,d}) on the "
            f"split-pattern workload — the cross-branch join advantage is gone"
        )
    return failures


def main(argv: list) -> int:
    if len(argv) != 2:
        print(__doc__, file=sys.stderr)
        return 2
    with open(argv[1]) as handle:
        report = json.load(handle)
    section = report.get("join_plan") or {}
    if section:
        print(f"workload {section.get('workload')} · pattern {section.get('pattern')}")
        print(f"  chosen: {section.get('chosen_plan')}")
        print(f"  single: {section.get('single_plan')}")
        print(
            f"  accesses over {section.get('queries'):,d} queries: "
            f"join {section.get('join_accesses'):,d} vs single "
            f"{section.get('single_accesses'):,d}"
        )
    failures = check(report)
    if failures:
        print("\nJOIN GATE FAILURES:", file=sys.stderr)
        for failure in failures:
            print(f"  - {failure}", file=sys.stderr)
        return 1
    print(
        f"\njoin gate passed: the join plan is {section.get('speedup')}x cheaper "
        f"than the best single-path plan"
    )
    return 0


if __name__ == "__main__":
    raise SystemExit(main(sys.argv))
