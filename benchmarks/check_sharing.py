"""Fail CI unless node sharing pays off on the remove-heavy workload.

The §3 acceptance gate: on the ``scheduler_churn`` trace (dominated by
remove + re-insert through the per-state lists), the shared-record layout
(one record object, intrusive O(1) unlink) must beat the per-branch-copy
layout (one record copy per branch, linear victim scans) on deterministic
:class:`~repro.structures.base.OperationCounter` access counts.  Both
layouts are replayed on the identical trace by the benchmark harness's
autotuner column (``hand_written``), so the comparison is machine- and
timing-independent.

Usage::

    python benchmarks/check_sharing.py BENCH_5.json
"""

from __future__ import annotations

import json
import sys

#: Workload the gate reads, and the hand-layout keys it compares.
WORKLOAD = "scheduler_churn"
SHARED_KEY = "primary"  # The churn workload's primary layout is the shared one.
COPIED_KEY = "copied-2branch"


def check(report: dict) -> list:
    failures = []
    workload = report.get("workloads", {}).get(WORKLOAD)
    if workload is None:
        return [f"workload {WORKLOAD!r} missing from the report"]
    hand = (workload.get("autotuned") or {}).get("hand_written") or {}
    shared = hand.get(SHARED_KEY)
    copied = hand.get(COPIED_KEY)
    if shared is None or copied is None:
        return [
            f"{WORKLOAD}: hand-layout replays missing ({SHARED_KEY!r} and "
            f"{COPIED_KEY!r} required; was the harness run with --skip-autotune?)"
        ]
    if "where" not in shared.get("layout", ""):
        failures.append(
            f"{WORKLOAD}/{SHARED_KEY}: layout {shared.get('layout')!r} is not a "
            f"shared-node layout (no 'where' clause)"
        )
    if shared["accesses"] >= copied["accesses"]:
        failures.append(
            f"{WORKLOAD}: shared layout ({shared['accesses']:,d} accesses) does "
            f"not beat the per-branch-copy layout ({copied['accesses']:,d}) on "
            f"the remove-heavy trace — the O(1) unlink advantage is gone"
        )
    return failures


def main(argv: list) -> int:
    if len(argv) != 2:
        print(__doc__, file=sys.stderr)
        return 2
    with open(argv[1]) as handle:
        report = json.load(handle)
    workload = report.get("workloads", {}).get(WORKLOAD, {})
    hand = (workload.get("autotuned") or {}).get("hand_written") or {}
    for name, entry in sorted(hand.items()):
        print(f"{WORKLOAD}/{name:<16} {entry['accesses']:>14,d} accesses  {entry['layout']}")
    failures = check(report)
    if failures:
        print("\nSHARING GATE FAILURES:", file=sys.stderr)
        for failure in failures:
            print(f"  - {failure}", file=sys.stderr)
        return 1
    shared, copied = hand[SHARED_KEY]["accesses"], hand[COPIED_KEY]["accesses"]
    print(
        f"\nsharing gate passed: shared layout is "
        f"{copied / max(1, shared):.2f}x cheaper than the per-branch copy"
    )
    return 0


if __name__ == "__main__":
    raise SystemExit(main(sys.argv))
