"""Fail CI unless the compiled tier's wall-clock advantage holds up.

The PR-8 execution-core gate.  Counted accesses (``check_regression.py``)
prove the *asymptotics* never regress, but the execution-core refactor —
closure-specialised dispatch, packed node instances, batch mutation paths
— is about constant factors, which only wall-clock can see.  This gate
reads a median-of-3 wall-clock capture (``capture_wallclock.py``) and
enforces, variance-tolerantly:

* **per workload**: compiled beats interpreted by at least
  ``--min-tier-ratio`` (default 2.0x — the quick-mode floor; real ratios
  run 3-25x, so only a genuine dispatch regression trips it);
* **aggregate**: summed over every workload, compiled beats interpreted
  by at least ``--min-aggregate`` (default 4.0x);
* **vs a prior pin** (optional ``--prior``): summed compiled medians over
  the workloads both captures share must have sped up by at least
  ``--min-prior-speedup`` (default 3.0x).  Skipped with a warning when
  the two captures disagree on mode (quick-mode traces are shorter, so
  cross-mode medians are not comparable) — CI runs quick against the
  tier ratios only; the full-length pin is checked where it was captured.

Medians over three replays keep a single noisy sample from tripping the
gate; the thresholds sit far below the measured ratios for the same
reason.  Usage::

    python -m benchmarks.capture_wallclock BENCH_8.json
    python benchmarks/check_speed.py BENCH_8.json --prior benchmarks/pr7_wallclock.json
"""

from __future__ import annotations

import json
import sys

MIN_TIER_RATIO = 2.0
MIN_AGGREGATE = 4.0
MIN_PRIOR_SPEEDUP = 3.0


def _medians(report: dict, tier: str) -> dict:
    return {
        name: entry["tiers"][tier]["median_seconds"]
        for name, entry in report.get("workloads", {}).items()
        if tier in entry.get("tiers", {})
    }


def check_tiers(report: dict, min_tier_ratio: float, min_aggregate: float) -> list:
    failures = []
    compiled = _medians(report, "compiled")
    interpreted = _medians(report, "interpreted")
    if not compiled or not interpreted:
        return ["report has no compiled/interpreted wall-clock medians"]
    for name in sorted(compiled):
        ratio = interpreted[name] / max(compiled[name], 1e-9)
        print(
            f"{name:16s} interpreted {interpreted[name]:8.4f}s   "
            f"compiled {compiled[name]:8.4f}s   {ratio:6.2f}x"
        )
        if ratio < min_tier_ratio:
            failures.append(
                f"{name}: compiled is only {ratio:.2f}x the interpreted tier "
                f"(floor {min_tier_ratio:.1f}x)"
            )
    aggregate = sum(interpreted.values()) / max(sum(compiled.values()), 1e-9)
    print(f"{'TOTAL':16s} interpreted {sum(interpreted.values()):8.4f}s   "
          f"compiled {sum(compiled.values()):8.4f}s   {aggregate:6.2f}x")
    if aggregate < min_aggregate:
        failures.append(
            f"aggregate: compiled is only {aggregate:.2f}x the interpreted "
            f"tier (floor {min_aggregate:.1f}x)"
        )
    return failures


def check_prior(report: dict, prior: dict, min_prior_speedup: float) -> list:
    current_mode = report.get("meta", {}).get("mode")
    prior_mode = prior.get("meta", {}).get("mode")
    if current_mode != prior_mode:
        print(
            f"\nprior comparison skipped: capture modes differ "
            f"({current_mode!r} vs {prior_mode!r}); medians are not comparable",
            file=sys.stderr,
        )
        return []
    current = _medians(report, "compiled")
    pinned = _medians(prior, "compiled")
    shared = sorted(set(current) & set(pinned))
    if not shared:
        return ["prior comparison: no workloads in common"]
    print("\nvs prior pin (compiled medians):")
    for name in shared:
        print(
            f"{name:16s} prior {pinned[name]:8.4f}s   now {current[name]:8.4f}s   "
            f"{pinned[name] / max(current[name], 1e-9):6.2f}x"
        )
    speedup = sum(pinned[n] for n in shared) / max(
        sum(current[n] for n in shared), 1e-9
    )
    print(f"{'TOTAL':16s} prior {sum(pinned[n] for n in shared):8.4f}s   "
          f"now {sum(current[n] for n in shared):8.4f}s   {speedup:6.2f}x")
    if speedup < min_prior_speedup:
        return [
            f"aggregate compiled wall-clock is only {speedup:.2f}x the prior "
            f"pin over {len(shared)} shared workloads "
            f"(floor {min_prior_speedup:.1f}x)"
        ]
    return []


def main(argv: list) -> int:
    args = list(argv[1:])

    def take(flag, default, cast=float):
        if flag in args:
            i = args.index(flag)
            value = cast(args[i + 1])
            del args[i : i + 2]
            return value
        return default

    prior_path = take("--prior", None, str)
    min_tier_ratio = take("--min-tier-ratio", MIN_TIER_RATIO)
    min_aggregate = take("--min-aggregate", MIN_AGGREGATE)
    min_prior_speedup = take("--min-prior-speedup", MIN_PRIOR_SPEEDUP)
    if len(args) != 1:
        print(__doc__, file=sys.stderr)
        return 2
    with open(args[0]) as handle:
        report = json.load(handle)
    failures = check_tiers(report, min_tier_ratio, min_aggregate)
    if prior_path is not None:
        with open(prior_path) as handle:
            failures += check_prior(report, json.load(handle), min_prior_speedup)
    if failures:
        print("\nSPEED GATE FAILURES:", file=sys.stderr)
        for failure in failures:
            print(f"  - {failure}", file=sys.stderr)
        return 1
    print("\nspeed gate passed")
    return 0


if __name__ == "__main__":
    raise SystemExit(main(sys.argv))
