"""Deterministic operation traces in the spirit of the paper's Section 6.

Each workload is a relational specification, a decomposition, and a seeded
trace of the five relational operations.  Traces are generated once and
replayed identically against every tier, so timings and operation counts
are directly comparable; all traces are FD-respecting so they run with
enforcement on (the benchmarked configuration) without raising.
"""

from __future__ import annotations

import random
from typing import Callable, Dict, List, Tuple as PyTuple

from repro.core import RelationSpec, Tuple

__all__ = [
    "Operation",
    "Workload",
    "WORKLOADS",
    "build_workloads",
    "SHARED_SCHEDULER_LAYOUT",
    "COPIED_SCHEDULER_LAYOUT",
    "SPLIT_GRAPH_LAYOUT",
]

#: ("insert", tuple) | ("remove", pattern) | ("update", pattern, changes)
#: | ("query", pattern, output-or-None) | ("range", column, lo, hi)
Operation = PyTuple


class Workload:
    """A named spec + decomposition + seeded operation trace.

    ``alternatives`` are additional hand-written layouts for the same
    specification: the autotuner column of the benchmark report replays the
    trace on each of them so the synthesized winner is shown next to every
    layout a developer might plausibly have written by hand.
    """

    def __init__(
        self,
        name: str,
        description: str,
        spec: RelationSpec,
        layout: str,
        trace: List[Operation],
        alternatives: Dict[str, str] = None,
        tail_start: int = None,
    ):
        self.name = name
        self.description = description
        self.spec = spec
        self.layout = layout
        self.trace = trace
        self.alternatives: Dict[str, str] = dict(alternatives or {})
        #: For drifting workloads: the trace index where the operation mix
        #: flips.  ``trace[tail_start:]`` is the drifted tail the re-tune
        #: gate (benchmarks/check_retune.py) measures layouts against.
        self.tail_start = tail_start

    def hand_layouts(self) -> Dict[str, str]:
        """Every hand-written layout, keyed by display name (primary first)."""
        layouts = {"primary": self.layout}
        layouts.update(self.alternatives)
        return layouts

    def __repr__(self) -> str:
        return f"Workload({self.name!r}, {len(self.trace)} ops)"


def scheduler(scale: int) -> Workload:
    """The paper's running example: an OS process scheduler.

    Processes keyed by ``(ns, pid)`` with a per-state index; the trace mixes
    process creation/exit, context switches (state/cpu updates by primary
    key), primary-key queries and per-state queue scans.
    """
    spec = RelationSpec(
        "ns, pid, state, cpu",
        fds=["ns, pid -> state, cpu"],
        name="process",
    )
    layout = (
        "[ns -> htable pid -> btree {state, cpu}"
        " ; state -> htable (ns, pid -> dlist {cpu})]"
    )
    rng = random.Random(0x5EED0)
    states = ["running", "sleeping", "waiting"]
    processes = [(ns, pid) for ns in range(max(2, scale // 50)) for pid in range(50)]
    trace: List[Operation] = [
        ("insert", Tuple(ns=ns, pid=pid, state=rng.choice(states), cpu=rng.randrange(4)))
        for ns, pid in processes
    ]
    for _ in range(scale * 10):
        ns, pid = rng.choice(processes)
        roll = rng.random()
        if roll < 0.35:
            trace.append(("query", Tuple(ns=ns, pid=pid), "state, cpu"))
        elif roll < 0.55:
            trace.append(("query", Tuple(state=rng.choice(states)), "ns, pid"))
        elif roll < 0.85:
            trace.append(
                (
                    "update",
                    Tuple(ns=ns, pid=pid),
                    Tuple(state=rng.choice(states), cpu=rng.randrange(4)),
                )
            )
        else:  # Process exit and re-spawn.
            trace.append(("remove", Tuple(ns=ns, pid=pid)))
            trace.append(
                ("insert", Tuple(ns=ns, pid=pid, state="running", cpu=rng.randrange(4)))
            )
    return Workload(
        "scheduler",
        "process scheduler: pk index + per-state lists (paper §1/§6)",
        spec,
        layout,
        trace,
        alternatives={
            "flat-htable": "ns, pid -> htable {state, cpu}",
            "nested-trees": "ns -> btree pid -> btree {state, cpu}",
            "shared-records": SHARED_SCHEDULER_LAYOUT,
        },
    )


#: The §3 shared-record layout: one process record object reached from both
#: the primary-key index and the per-state lists, with intrusive O(1)
#: unlink on removal (decomposition 5 of the paper's Figure 12 family).
SHARED_SCHEDULER_LAYOUT = (
    "[ns, pid -> htable (state -> htable @rec)"
    " ; state -> htable (ns, pid -> ilist @rec)] where @rec = {cpu}"
)

#: The per-branch-copy twin of the shared layout: the same two indexes, but
#: every branch materialises its own copy of the record, so a removal pays
#: a per-state-list victim scan instead of an O(1) unlink.
COPIED_SCHEDULER_LAYOUT = (
    "[ns, pid -> htable {state, cpu}"
    " ; state -> htable (ns, pid -> dlist {cpu})]"
)


def scheduler_churn(scale: int) -> Workload:
    """Remove-heavy scheduler churn: the shared-record layout's home turf.

    Processes constantly exit and respawn (remove + insert by primary key)
    while the per-state lists stay hot.  On the copied layout every exit
    scans the victim's state list twice (lookup + unlink); on the shared
    layout the record is one object unlinked in O(1) from the intrusive
    list — the access-count gap the CI sharing gate pins.
    """
    spec = RelationSpec(
        "ns, pid, state, cpu",
        fds=["ns, pid -> state, cpu"],
        name="process",
    )
    rng = random.Random(0x5EED4)
    states = ["running", "sleeping", "waiting"]
    processes = [(ns, pid) for ns in range(max(2, scale // 50)) for pid in range(50)]
    trace: List[Operation] = [
        ("insert", Tuple(ns=ns, pid=pid, state=rng.choice(states), cpu=rng.randrange(4)))
        for ns, pid in processes
    ]
    for _ in range(scale * 10):
        ns, pid = rng.choice(processes)
        roll = rng.random()
        if roll < 0.7:  # Process exit and re-spawn: the dominant operation.
            trace.append(("remove", Tuple(ns=ns, pid=pid)))
            trace.append(
                ("insert", Tuple(ns=ns, pid=pid, state=rng.choice(states), cpu=rng.randrange(4)))
            )
        elif roll < 0.85:
            trace.append(("query", Tuple(state=rng.choice(states)), "ns, pid"))
        else:
            trace.append(("query", Tuple(ns=ns, pid=pid), "state, cpu"))
    return Workload(
        "scheduler_churn",
        "remove-heavy scheduler churn: shared records vs per-branch copies (§3)",
        spec,
        SHARED_SCHEDULER_LAYOUT,
        trace,
        alternatives={
            "copied-2branch": COPIED_SCHEDULER_LAYOUT,
            "flat-htable": "ns, pid -> htable {state, cpu}",
        },
    )


def directed_graph(scale: int) -> Workload:
    """A weighted directed graph with successor and predecessor indexes.

    Edges ``(src, dst, weight)`` with both adjacency directions indexed —
    the shape used by the paper's graph benchmarks (DFS, shortest paths).
    The trace mixes edge insertion/removal, weight relaxation by edge key,
    and out-/in-neighbour queries.
    """
    spec = RelationSpec(
        "src, dst, weight",
        fds=["src, dst -> weight"],
        name="edge",
    )
    layout = "[src -> htable (dst -> htable {weight}) ; dst -> htable (src -> htable {weight})]"
    rng = random.Random(0x5EED1)
    nodes = max(8, scale // 4)
    edges = [
        (rng.randrange(nodes), rng.randrange(nodes)) for _ in range(max(16, scale * 2))
    ]
    edges = sorted(set(edges))
    trace: List[Operation] = [
        ("insert", Tuple(src=s, dst=d, weight=rng.randrange(100))) for s, d in edges
    ]
    for _ in range(scale * 8):
        roll = rng.random()
        src, dst = rng.choice(edges)
        if roll < 0.35:
            trace.append(("query", Tuple(src=src), "dst, weight"))
        elif roll < 0.55:
            trace.append(("query", Tuple(dst=dst), "src, weight"))
        elif roll < 0.75:
            trace.append(("update", Tuple(src=src, dst=dst), Tuple(weight=rng.randrange(100))))
        elif roll < 0.9:
            trace.append(("query", Tuple(src=src, dst=dst), "weight"))
        else:
            trace.append(("remove", Tuple(src=src, dst=dst)))
            trace.append(("insert", Tuple(src=src, dst=dst, weight=rng.randrange(100))))
    return Workload(
        "graph",
        "directed graph: successor + predecessor adjacency (paper §6 graph benchmarks)",
        spec,
        layout,
        trace,
        alternatives={
            "flat-htable": "src, dst -> htable {weight}",
            "forward-only": "src -> htable dst -> htable {weight}",
        },
    )


#: The §4 split-pattern layout: the primary branch holds full edges keyed
#: ``src`` then ``dst``; the secondary is a **key-projection branch** — it
#: indexes only the edge keys by ``dst`` (no weight).  A reverse-neighbour
#: query ``{dst}`` binds a column that only the secondary serves, but needs
#: the weight that only the primary stores: the planner answers it with a
#: cross-branch join plan (lookup the secondary, probe the primary per row)
#: validated by the Figure 8 FD-closure rule.
SPLIT_GRAPH_LAYOUT = (
    "[src -> htable (dst -> htable {weight})"
    " ; dst -> htable (src -> htable {})]"
)


def graph_reverse(scale: int) -> Workload:
    """Reverse-neighbour-heavy directed graph: the join plan's home turf.

    The hot query binds ``{dst}`` and wants ``src, weight`` — its bound
    column lives in the ``dst``-keyed key-projection branch while the
    weights live only under the ``src``-keyed primary, so the two branches
    must be joined.  On the best single-path plan the query scans the whole
    ``src`` level; the join plan pays one secondary lookup plus two primary
    lookups per in-edge.  ``benchmarks/check_join.py`` gates that the join
    stays strictly cheaper.
    """
    spec = RelationSpec(
        "src, dst, weight",
        fds=["src, dst -> weight"],
        name="edge",
    )
    rng = random.Random(0x5EED5)
    nodes = max(16, scale // 2)
    edges: Dict[PyTuple[int, int], int] = {}
    while len(edges) < max(32, scale * 2):
        edges.setdefault(
            (rng.randrange(nodes), rng.randrange(nodes)), rng.randrange(100)
        )
    trace: List[Operation] = [
        ("insert", Tuple(src=s, dst=d, weight=w)) for (s, d), w in sorted(edges.items())
    ]
    edge_list = sorted(edges)
    for _ in range(scale * 8):
        roll = rng.random()
        src, dst = rng.choice(edge_list)
        if roll < 0.6:  # The hot split-pattern query: who points at dst?
            trace.append(("query", Tuple(dst=dst), "src, weight"))
        elif roll < 0.75:
            trace.append(("query", Tuple(src=src, dst=dst), "weight"))
        elif roll < 0.9:
            trace.append(
                ("update", Tuple(src=src, dst=dst), Tuple(weight=rng.randrange(100)))
            )
        else:
            trace.append(("remove", Tuple(src=src, dst=dst)))
            trace.append(("insert", Tuple(src=src, dst=dst, weight=rng.randrange(100))))
    return Workload(
        "graph_reverse",
        "reverse-neighbour graph: key-projection secondary + cross-branch join (§4)",
        spec,
        SPLIT_GRAPH_LAYOUT,
        trace,
        alternatives={
            "forward-only": "src -> htable (dst -> htable {weight})",
            "both-full": (
                "[src -> htable (dst -> htable {weight})"
                " ; dst -> htable (src -> htable {weight})]"
            ),
            "flat-htable": "src, dst -> htable {weight}",
        },
    )


def graph_drift(scale: int) -> Workload:
    """A graph workload whose mix flips to reverse-neighbour mid-run.

    Phase 1 (before ``tail_start``) is forward-neighbour-heavy: ``{src}``
    queries dominate, and the forward-only layout serves them in O(1).
    Phase 2 flips the hot query to ``{dst}`` — on the forward-only layout
    every reverse query scans the whole ``src`` level.  This is the
    online-adaptivity scenario: a ``LiveRelation`` opened on the phase-1
    layout detects the mix drift, re-tunes, and hot-swaps to a
    ``dst``-keyed layout; ``benchmarks/check_retune.py`` gates that the
    post-swap layout is strictly cheaper on the drifted tail.
    """
    spec = RelationSpec(
        "src, dst, weight",
        fds=["src, dst -> weight"],
        name="edge",
    )
    rng = random.Random(0x5EED6)
    nodes = max(16, scale // 2)
    edges: Dict[PyTuple[int, int], int] = {}
    while len(edges) < max(32, scale * 2):
        edges.setdefault(
            (rng.randrange(nodes), rng.randrange(nodes)), rng.randrange(100)
        )
    trace: List[Operation] = [
        ("insert", Tuple(src=s, dst=d, weight=w)) for (s, d), w in sorted(edges.items())
    ]
    edge_list = sorted(edges)

    def churn(forward: bool) -> None:
        roll = rng.random()
        src, dst = rng.choice(edge_list)
        if roll < 0.6:  # The hot query: direction depends on the phase.
            if forward:
                trace.append(("query", Tuple(src=src), "dst, weight"))
            else:
                trace.append(("query", Tuple(dst=dst), "src, weight"))
        elif roll < 0.75:
            trace.append(("query", Tuple(src=src, dst=dst), "weight"))
        elif roll < 0.9:
            trace.append(
                ("update", Tuple(src=src, dst=dst), Tuple(weight=rng.randrange(100)))
            )
        else:
            trace.append(("remove", Tuple(src=src, dst=dst)))
            trace.append(("insert", Tuple(src=src, dst=dst, weight=rng.randrange(100))))

    for _ in range(scale * 4):
        churn(forward=True)
    tail_start = len(trace)
    for _ in range(scale * 4):
        churn(forward=False)
    return Workload(
        "graph_drift",
        "drifting graph: forward-neighbour mix flips to reverse mid-run (online adaptivity)",
        spec,
        "src -> htable (dst -> htable {weight})",
        trace,
        alternatives={
            "reverse-capable": SPLIT_GRAPH_LAYOUT,
            "flat-htable": "src, dst -> htable {weight}",
        },
        tail_start=tail_start,
    )


def ordered_scan(scale: int) -> Workload:
    """A time-series event log scanned by timestamp range.

    Events keyed by timestamp with an ordered (``avl``) root index; the
    trace mixes out-of-order arrival, timestamp range scans (the ``range``
    operation — an ordered window over ``ts``), point queries, reading
    updates (residual-only: the in-place batch path) and late deletions.
    The ordered root serves every window by bounded descent where the
    hash-rooted alternative filters a full scan — the first workload that
    actually exercises ``avl`` range iteration.
    """
    spec = RelationSpec(
        "ts, sensor, reading",
        fds=["ts -> sensor, reading"],
        name="event",
    )
    layout = "ts -> btree {sensor, reading}"
    rng = random.Random(0x5EED7)
    span = max(64, scale * 4)
    stamps = list(range(span))
    rng.shuffle(stamps)  # Out-of-order arrival: the tree must rebalance.
    sensors = ["temp", "flow", "volt"]
    trace: List[Operation] = [
        ("insert", Tuple(ts=ts, sensor=rng.choice(sensors), reading=rng.randrange(1000)))
        for ts in stamps
    ]
    for _ in range(scale * 6):
        roll = rng.random()
        ts = rng.randrange(span)
        if roll < 0.4:  # The hot operation: a timestamp window.
            width = rng.randrange(1, max(2, span // 8))
            trace.append(("range", "ts", ts, min(span - 1, ts + width)))
        elif roll < 0.6:
            trace.append(("query", Tuple(ts=ts), "sensor, reading"))
        elif roll < 0.85:
            trace.append(("update", Tuple(ts=ts), Tuple(reading=rng.randrange(1000))))
        else:  # Late deletion and re-arrival.
            trace.append(("remove", Tuple(ts=ts)))
            trace.append(
                ("insert", Tuple(ts=ts, sensor=rng.choice(sensors), reading=rng.randrange(1000)))
            )
    return Workload(
        "ordered_scan",
        "time-series event log: timestamp range scans over an ordered root index",
        spec,
        layout,
        trace,
        alternatives={
            "flat-htable": "ts -> htable {sensor, reading}",
            "sensor-index": (
                "[ts -> btree {sensor, reading}"
                " ; sensor -> htable (ts -> dlist {reading})]"
            ),
        },
    )


def spanning(scale: int) -> Workload:
    """Spanning-forest components, Kruskal-style union by bulk update.

    Nodes carry a component id (``node -> comp``) with a per-component
    index; merging two components is a single pattern update
    ``update {comp: a} {comp: b}`` over the component index — the bulk
    operation that stresses pattern-resolved updates in every tier.
    """
    spec = RelationSpec("node, comp", fds=["node -> comp"], name="component")
    layout = "[node -> htable {comp} ; comp -> htable (node -> dlist {})]"
    rng = random.Random(0x5EED2)
    nodes = max(16, scale)
    trace: List[Operation] = [
        ("insert", Tuple(node=n, comp=n)) for n in range(nodes)
    ]
    live = list(range(nodes))
    for _ in range(scale * 4):
        roll = rng.random()
        if roll < 0.35 and len(live) > 1:
            a, b = rng.sample(live, 2)
            trace.append(("update", Tuple(comp=a), Tuple(comp=b)))
            live.remove(a)
        elif roll < 0.7:
            trace.append(("query", Tuple(node=rng.randrange(nodes)), "comp"))
        else:
            trace.append(("query", Tuple(comp=rng.choice(live)), "node"))
        if len(live) <= max(2, nodes // 8):
            # Reset the forest so unions keep happening at scale.
            trace.append(("remove", None))
            trace.extend(("insert", Tuple(node=n, comp=n)) for n in range(nodes))
            live = list(range(nodes))
    return Workload(
        "spanning",
        "spanning-forest components: union via bulk pattern update",
        spec,
        layout,
        trace,
        alternatives={"flat-htable": "node -> htable {comp}"},
    )


WORKLOADS: Dict[str, Callable[[int], Workload]] = {
    "scheduler": scheduler,
    "scheduler_churn": scheduler_churn,
    "graph": directed_graph,
    "graph_drift": graph_drift,
    "graph_reverse": graph_reverse,
    "ordered_scan": ordered_scan,
    "spanning": spanning,
}

#: Default scale knobs: ``--quick`` must stay CI-smoke-test fast.
DEFAULT_SCALE = 400
QUICK_SCALE = 60


def build_workloads(quick: bool = False, names: List[str] = None) -> List[Workload]:
    scale = QUICK_SCALE if quick else DEFAULT_SCALE
    selected = names or sorted(WORKLOADS)
    unknown = sorted(set(selected) - set(WORKLOADS))
    if unknown:
        raise ValueError(f"unknown workloads {unknown}; available: {sorted(WORKLOADS)}")
    return [WORKLOADS[name](scale) for name in selected]
