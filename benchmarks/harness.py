"""Drive the reference / interpreted / compiled tiers through identical traces.

For each workload the harness builds one fresh relation per tier, replays
the same operation trace, and records:

* wall-clock seconds and operations/second (``time.perf_counter``);
* deterministic container accesses from a second, instrumented replay under
  :data:`repro.structures.base.COUNTER` (machine-independent — this is what
  the CI regression check compares);
* the final relation, asserted identical across tiers (a coarse soundness
  check riding along with every benchmark run).

Results are written as JSON (``BENCH_2.json`` by convention at the repo
root); ``benchmarks/baseline.json`` holds the checked-in baseline used by
``benchmarks/check_regression.py``.
"""

from __future__ import annotations

import argparse
import json
import platform
import sys
import time
from typing import Dict, List, Optional

from repro.codegen import compile_relation
from repro.core import ReferenceRelation
from repro.core.interface import RelationInterface
from repro.decomposition import DecomposedRelation
from repro.structures import COUNTER

from .workloads import Workload, build_workloads

__all__ = ["main", "run_all", "run_workload", "replay"]

TIERS = ("reference", "interpreted", "compiled")


def make_tier(tier: str, workload: Workload) -> RelationInterface:
    if tier == "reference":
        return ReferenceRelation(workload.spec)
    if tier == "interpreted":
        return DecomposedRelation(workload.spec, workload.layout)
    if tier == "compiled":
        cls = compile_relation(workload.spec, workload.layout)
        return cls()
    raise ValueError(f"unknown tier {tier!r}")


def replay(relation: RelationInterface, trace: List[tuple]) -> int:
    """Apply every operation of *trace* to *relation*; returns the op count."""
    insert = relation.insert
    remove = relation.remove
    update = relation.update
    query = relation.query
    for op in trace:
        kind = op[0]
        if kind == "insert":
            insert(op[1])
        elif kind == "remove":
            remove(op[1])
        elif kind == "update":
            update(op[1], op[2])
        elif kind == "query":
            query(op[1], op[2])
        else:  # pragma: no cover - trace generator bug
            raise ValueError(f"unknown operation {kind!r}")
    return len(trace)


def run_workload(workload: Workload, verbose: bool = True) -> Dict:
    """Benchmark every tier on *workload*; verify the tiers agree."""
    results: Dict[str, Dict] = {}
    final = None
    for tier in TIERS:
        relation = make_tier(tier, workload)
        started = time.perf_counter()
        ops = replay(relation, workload.trace)
        seconds = time.perf_counter() - started

        outcome = relation.to_relation()
        if final is None:
            final = outcome
        elif outcome != final:
            raise AssertionError(
                f"tier {tier!r} diverged from the reference on workload "
                f"{workload.name!r}: {len(outcome.tuples ^ final.tuples)} differing tuple(s)"
            )

        # Second, instrumented replay on a fresh instance: COUNTER numbers
        # are deterministic and machine-independent, unlike the timings.
        instrumented = make_tier(tier, workload)
        with COUNTER:
            replay(instrumented, workload.trace)
            accesses = COUNTER.accesses
        results[tier] = {
            "seconds": round(seconds, 6),
            "ops": ops,
            "ops_per_sec": round(ops / seconds, 1) if seconds else float("inf"),
            "accesses": accesses,
        }
        if verbose:
            print(
                f"  {tier:12s} {results[tier]['ops_per_sec']:>12,.0f} ops/s"
                f"  {accesses:>12,d} accesses  ({seconds:.3f}s)",
                file=sys.stderr,
            )
    interp = results["interpreted"]["seconds"]
    compiled = results["compiled"]["seconds"]
    return {
        "description": workload.description,
        "layout": workload.layout,
        "ops": len(workload.trace),
        "final_size": len(final.tuples),
        "tiers": results,
        "speedup_compiled_vs_interpreted": round(interp / compiled, 2) if compiled else None,
        "speedup_compiled_vs_reference": round(
            results["reference"]["seconds"] / compiled, 2
        )
        if compiled
        else None,
    }


def run_all(
    quick: bool = False, names: Optional[List[str]] = None, verbose: bool = True
) -> Dict:
    workloads = build_workloads(quick=quick, names=names)
    report: Dict = {
        "meta": {
            "python": platform.python_version(),
            "implementation": platform.python_implementation(),
            "mode": "quick" if quick else "default",
        },
        "workloads": {},
    }
    for workload in workloads:
        if verbose:
            print(f"{workload.name}: {len(workload.trace)} ops", file=sys.stderr)
        report["workloads"][workload.name] = run_workload(workload, verbose=verbose)
    return report


def main(argv: Optional[List[str]] = None) -> int:
    parser = argparse.ArgumentParser(
        prog="python -m benchmarks",
        description="Benchmark the reference/interpreted/compiled representation tiers.",
    )
    parser.add_argument(
        "--quick", action="store_true", help="small traces (CI smoke mode)"
    )
    parser.add_argument(
        "--output", default="BENCH_2.json", help="where to write the JSON report"
    )
    parser.add_argument(
        "--workloads",
        nargs="*",
        default=None,
        help="subset of workloads to run (default: all)",
    )
    parser.add_argument("--quiet", action="store_true", help="suppress progress output")
    args = parser.parse_args(argv)

    report = run_all(quick=args.quick, names=args.workloads, verbose=not args.quiet)
    with open(args.output, "w") as handle:
        json.dump(report, handle, indent=2, sort_keys=True)
        handle.write("\n")
    if not args.quiet:
        for name, data in sorted(report["workloads"].items()):
            print(
                f"{name}: compiled is {data['speedup_compiled_vs_interpreted']}x the "
                f"interpreted tier ({data['ops']} ops)",
                file=sys.stderr,
            )
        print(f"wrote {args.output}", file=sys.stderr)
    return 0
