"""Drive the reference / interpreted / compiled tiers through identical traces.

For each workload the harness builds one fresh relation per tier, replays
the same operation trace, and records:

* wall-clock seconds and operations/second (``time.perf_counter``);
* deterministic container accesses from a second, instrumented replay under
  :data:`repro.structures.base.COUNTER` (machine-independent — this is what
  the CI regression check compares);
* the final relation, asserted identical across tiers (a coarse soundness
  check riding along with every benchmark run);
* the **autotuned** column: the §5 autotuner (:mod:`repro.autotuner`) picks
  a layout for each workload from its own trace, and the report shows the
  winner's access count next to every hand-written layout replayed on the
  same trace (``--skip-autotune`` drops the column).

Results are written as JSON (``BENCH_6.json`` by convention at the repo
root); ``benchmarks/baseline.json`` holds the checked-in baseline used by
``benchmarks/check_regression.py``.  The report also carries a
``join_plan`` section (see ``benchmarks/check_join.py``): on the
split-pattern ``graph_reverse`` workload the hot query's cross-branch join
plan is measured against the best single-path plan over the same populated
instance; and a ``retune`` section (see ``benchmarks/check_retune.py``):
on the drifting ``graph_drift`` workload a ``LiveRelation`` must re-tune
and hot-swap, and the post-swap layout must beat the pre-swap one on the
drifted tail.

Every tier is constructed through :func:`repro.open` (the unified factory
of ISSUE 6), so the factory's dispatch path is exercised — and its overhead
pinned — by the same regression gate that watches the tiers themselves.
"""

from __future__ import annotations

import argparse
import json
import platform
import sys
import time
from typing import Dict, List, Optional

import repro
from repro.autotuner import Trace, autotune, canonical_shape, replay_operations
from repro.autotuner.scorer import estimate_edge_sizes
from repro.core.interface import RelationInterface
from repro.decomposition import parse_decomposition
from repro.structures import COUNTER

from . import check_join, check_retune
from .workloads import Workload, build_workloads

__all__ = ["main", "run_all", "run_workload", "run_autotuner", "replay"]

TIERS = ("reference", "interpreted", "compiled")


def make_tier(tier: str, workload: Workload) -> RelationInterface:
    """Build one tier through the canonical :func:`repro.open` factory.

    The compiled tier is opened against the workload's trace-estimated
    container sizes — the §5 story: the representation (and its
    compile-time plan table, including cross-branch join plans on split
    patterns) is synthesized for the workload it will run.  Tiers are
    opened non-live: the benchmarked numbers measure the representations
    themselves, and the regression gate thereby also pins the factory's
    dispatch overhead; the live facade is measured separately by the
    ``retune`` section (see ``benchmarks/check_retune.py``).
    """
    sizes = None
    if tier == "compiled":
        decomposition = parse_decomposition(workload.layout)
        sizes = estimate_edge_sizes(
            decomposition, Trace.from_workload(workload).profile()
        )
        return repro.open(workload.spec, decomposition, tier=tier, sizes=sizes)
    if tier not in TIERS:
        raise ValueError(f"unknown tier {tier!r}")
    return repro.open(workload.spec, workload.layout, tier=tier)


def replay(relation: RelationInterface, trace: List[tuple]) -> int:
    """Apply every operation of *trace* to *relation*; returns the op count.

    Delegates to the autotuner's shared loop so harness access counts and
    autotuner scores stay comparable by construction.
    """
    return replay_operations(relation, trace)


def run_autotuner(workload: Workload, verbose: bool = True) -> Dict:
    """Tune *workload* from its own trace; report the winner vs hand layouts.

    Every hand-written layout (the workload's primary plus its
    ``alternatives``) is force-included in the exact replay phase, so the
    report shows the synthesized winner's interpreted-tier access count
    side by side with each of them — all on the identical trace.
    """
    hand_layouts = workload.hand_layouts()
    result = autotune(
        workload.spec,
        Trace.from_workload(workload),
        include=list(hand_layouts.values()),
    )
    by_shape = {canonical_shape(c.decomposition): c for c in result.replayed}
    hand_report = {}
    for name, layout in hand_layouts.items():
        candidate = by_shape[canonical_shape(parse_decomposition(layout))]
        hand_report[name] = {"layout": layout, "accesses": candidate.accesses}

    # The winner also gets a compiled-tier instrumented replay, comparable
    # with the hand layout's "compiled" tier accesses.
    compiled_cls = result.compile_winner()
    with COUNTER:
        replay(compiled_cls(), workload.trace)
        compiled_accesses = COUNTER.accesses

    best_hand = min(hand_report.values(), key=lambda h: h["accesses"])
    report = {
        "layout": result.winner_layout,
        "accesses": result.winner.accesses,
        "compiled_accesses": compiled_accesses,
        "candidates_enumerated": len(result.candidates),
        "candidates_replayed": len(result.replayed),
        "pareto": [
            {"layout": c.layout, "accesses": c.accesses, "memory": c.memory}
            for c in result.pareto
        ],
        "hand_written": hand_report,
        "speedup_vs_best_hand": round(
            best_hand["accesses"] / result.winner.accesses, 2
        )
        if result.winner.accesses
        else None,
    }
    if verbose:
        print(
            f"  {'autotuned':12s} {report['accesses']:>12,d} accesses"
            f"  ({report['speedup_vs_best_hand']}x best hand layout; "
            f"{report['candidates_enumerated']} candidates)",
            file=sys.stderr,
        )
    return report


def run_workload(workload: Workload, verbose: bool = True) -> Dict:
    """Benchmark every tier on *workload*; verify the tiers agree."""
    results: Dict[str, Dict] = {}
    final = None
    for tier in TIERS:
        relation = make_tier(tier, workload)
        started = time.perf_counter()
        ops = replay(relation, workload.trace)
        seconds = time.perf_counter() - started

        outcome = relation.to_relation()
        if final is None:
            final = outcome
        elif outcome != final:
            raise AssertionError(
                f"tier {tier!r} diverged from the reference on workload "
                f"{workload.name!r}: {len(outcome.tuples ^ final.tuples)} differing tuple(s)"
            )

        # Second, instrumented replay on a fresh instance: COUNTER numbers
        # are deterministic and machine-independent, unlike the timings.
        instrumented = make_tier(tier, workload)
        with COUNTER:
            replay(instrumented, workload.trace)
            accesses = COUNTER.accesses
        results[tier] = {
            "seconds": round(seconds, 6),
            "ops": ops,
            "ops_per_sec": round(ops / seconds, 1) if seconds else float("inf"),
            "accesses": accesses,
        }
        if verbose:
            print(
                f"  {tier:12s} {results[tier]['ops_per_sec']:>12,.0f} ops/s"
                f"  {accesses:>12,d} accesses  ({seconds:.3f}s)",
                file=sys.stderr,
            )
    interp = results["interpreted"]["seconds"]
    compiled = results["compiled"]["seconds"]
    return {
        "description": workload.description,
        "layout": workload.layout,
        "ops": len(workload.trace),
        "final_size": len(final.tuples),
        "tiers": results,
        "speedup_compiled_vs_interpreted": round(interp / compiled, 2) if compiled else None,
        "speedup_compiled_vs_reference": round(
            results["reference"]["seconds"] / compiled, 2
        )
        if compiled
        else None,
    }


def run_all(
    quick: bool = False,
    names: Optional[List[str]] = None,
    verbose: bool = True,
    tune: bool = True,
) -> Dict:
    workloads = build_workloads(quick=quick, names=names)
    report: Dict = {
        "meta": {
            "python": platform.python_version(),
            "implementation": platform.python_implementation(),
            "mode": "quick" if quick else "default",
        },
        "workloads": {},
    }
    for workload in workloads:
        if verbose:
            print(f"{workload.name}: {len(workload.trace)} ops", file=sys.stderr)
        data = run_workload(workload, verbose=verbose)
        if tune:
            data["autotuned"] = run_autotuner(workload, verbose=verbose)
        report["workloads"][workload.name] = data
        if workload.name == check_join.WORKLOAD:
            # The §4 join gate's measurement: the hot split pattern's join
            # plan vs the best single-path plan on the populated instance.
            report["join_plan"] = check_join.measure_join_benefit(workload)
            if verbose:
                section = report["join_plan"]
                print(
                    f"  {'join-plan':12s} {section['join_accesses']:>12,d} accesses"
                    f"  vs single-path {section['single_accesses']:,d} "
                    f"({section['speedup']}x)",
                    file=sys.stderr,
                )
        if workload.name == check_retune.WORKLOAD:
            # The online-adaptivity gate's measurement: a LiveRelation run
            # over the drifting trace must re-tune and hot-swap, and the
            # post-swap layout must beat the pre-swap one on the drifted
            # tail (counted accesses on fresh instances of each layout).
            report["retune"] = check_retune.measure_retune(workload)
            if verbose:
                section = report["retune"]
                print(
                    f"  {'retune':12s} {section['new_tail_accesses']:>12,d} accesses"
                    f"  vs pre-swap {section['old_tail_accesses']:,d} on the tail "
                    f"({section['speedup']}x; {section['swaps']} swap(s))",
                    file=sys.stderr,
                )
    return report


def main(argv: Optional[List[str]] = None) -> int:
    parser = argparse.ArgumentParser(
        prog="python -m benchmarks",
        description="Benchmark the reference/interpreted/compiled representation tiers.",
    )
    parser.add_argument(
        "--quick", action="store_true", help="small traces (CI smoke mode)"
    )
    parser.add_argument(
        "--output", default="BENCH_6.json", help="where to write the JSON report"
    )
    parser.add_argument(
        "--workloads",
        nargs="*",
        default=None,
        help="subset of workloads to run (default: all)",
    )
    parser.add_argument(
        "--skip-autotune",
        action="store_true",
        help="skip the autotuner column (faster; tiers only)",
    )
    parser.add_argument("--quiet", action="store_true", help="suppress progress output")
    args = parser.parse_args(argv)

    report = run_all(
        quick=args.quick,
        names=args.workloads,
        verbose=not args.quiet,
        tune=not args.skip_autotune,
    )
    with open(args.output, "w") as handle:
        json.dump(report, handle, indent=2, sort_keys=True)
        handle.write("\n")
    if not args.quiet:
        for name, data in sorted(report["workloads"].items()):
            print(
                f"{name}: compiled is {data['speedup_compiled_vs_interpreted']}x the "
                f"interpreted tier ({data['ops']} ops)",
                file=sys.stderr,
            )
            tuned = data.get("autotuned")
            if tuned:
                print(
                    f"{name}: autotuned layout is {tuned['speedup_vs_best_hand']}x the "
                    f"best hand-written layout ({tuned['accesses']:,d} accesses)",
                    file=sys.stderr,
                )
        print(f"wrote {args.output}", file=sys.stderr)
    return 0
