"""Fail CI when benchmark numbers regress more than 2x against the baseline.

The comparison is driven by the
:class:`~repro.structures.base.OperationCounter` access counts: they depend
only on the code and the seeded traces, not on the machine, so a >2x
increase is a genuine algorithmic regression (a plan gone bad, an index no
longer used, pruning lost) rather than CI noise.  Run the harness with
``PYTHONHASHSEED=0`` (as CI does) to make the counts bit-exact; otherwise
hash-table chain layouts introduce ~1% jitter, far inside the 2x headroom.
Timing-derived speedups are printed for context and checked only loosely
(the compiled tier must stay faster than the interpreted tier) because
wall-clock on shared CI runners is unreliable.

Usage::

    PYTHONPATH=src python benchmarks/check_regression.py BENCH_2.json benchmarks/baseline.json
"""

from __future__ import annotations

import json
import sys

#: Fail when accesses exceed baseline by more than this factor.
MAX_ACCESS_REGRESSION = 2.0


def compare(current: dict, baseline: dict) -> list:
    """Return a list of human-readable failures (empty when healthy)."""
    failures = []
    for name, base_data in sorted(baseline.get("workloads", {}).items()):
        cur_data = current.get("workloads", {}).get(name)
        if cur_data is None:
            failures.append(f"{name}: workload missing from current results")
            continue
        for tier, base_tier in sorted(base_data.get("tiers", {}).items()):
            cur_tier = cur_data.get("tiers", {}).get(tier)
            if cur_tier is None:
                failures.append(f"{name}/{tier}: tier missing from current results")
                continue
            base_accesses = base_tier.get("accesses", 0)
            cur_accesses = cur_tier.get("accesses", 0)
            if base_accesses and cur_accesses > base_accesses * MAX_ACCESS_REGRESSION:
                failures.append(
                    f"{name}/{tier}: {cur_accesses:,d} accesses vs baseline "
                    f"{base_accesses:,d} (>{MAX_ACCESS_REGRESSION}x regression)"
                )
        speedup = cur_data.get("speedup_compiled_vs_interpreted")
        if speedup is not None and speedup < 1.0:
            failures.append(
                f"{name}: compiled tier ({speedup}x) is slower than the interpreted tier"
            )
    return failures


def main(argv: list) -> int:
    if len(argv) != 3:
        print(__doc__, file=sys.stderr)
        return 2
    with open(argv[1]) as handle:
        current = json.load(handle)
    with open(argv[2]) as handle:
        baseline = json.load(handle)

    current_mode = current.get("meta", {}).get("mode")
    baseline_mode = baseline.get("meta", {}).get("mode")
    if current_mode != baseline_mode:
        print(
            f"mode mismatch: current results are {current_mode!r} but the baseline "
            f"is {baseline_mode!r} — trace sizes differ, access counts are not "
            f"comparable (re-run the harness with matching --quick settings)",
            file=sys.stderr,
        )
        return 2

    print(f"{'workload':<12} {'tier':<12} {'accesses':>14} {'baseline':>14} {'ratio':>7}")
    for name, base_data in sorted(baseline.get("workloads", {}).items()):
        cur_data = current.get("workloads", {}).get(name, {})
        for tier, base_tier in sorted(base_data.get("tiers", {}).items()):
            cur_tier = cur_data.get("tiers", {}).get(tier, {})
            base_accesses = base_tier.get("accesses", 0)
            cur_accesses = cur_tier.get("accesses", 0)
            if base_accesses:
                ratio = f"{cur_accesses / base_accesses:>6.2f}x"
            else:
                ratio = "     —"
            print(
                f"{name:<12} {tier:<12} {cur_accesses:>14,d} {base_accesses:>14,d} {ratio}"
            )
        speedup = cur_data.get("speedup_compiled_vs_interpreted")
        print(f"{name:<12} compiled-vs-interpreted speedup: {speedup}x")

    failures = compare(current, baseline)
    if failures:
        print("\nREGRESSIONS:", file=sys.stderr)
        for failure in failures:
            print(f"  - {failure}", file=sys.stderr)
        return 1
    print("\nno benchmark regressions (>2x) against the baseline")
    return 0


if __name__ == "__main__":
    raise SystemExit(main(sys.argv))
