"""Fail CI when benchmark numbers regress more than 2x against the baseline.

The comparison is driven by the
:class:`~repro.structures.base.OperationCounter` access counts: they depend
only on the code and the seeded traces, not on the machine, so a >2x
increase is a genuine algorithmic regression (a plan gone bad, an index no
longer used, pruning lost) rather than CI noise.  Run the harness with
``PYTHONHASHSEED=0`` (as CI does) to make the counts bit-exact; otherwise
hash-table chain layouts introduce ~1% jitter, far inside the 2x headroom.

Timing-derived speedups are machine-dependent, and wall-clock on shared CI
runners is unreliable — so in ``--quick`` mode (short traces, the CI
configuration, where a single scheduler hiccup can flip the ratio) the
"compiled must stay faster than interpreted" check is **advisory**: it
prints a warning and does not fail the run.  Only the access-count
regressions are fatal there.  Full-length runs keep the timing check fatal,
since at default trace sizes an inversion means something real.

With ``--strict-accesses`` the gate tightens from "no more than 2x" to "not
one access more": the chaos CI job uses it to prove that the fault-injection
hooks and the exception-safety undo-log bookkeeping add **zero counted
accesses** when no fault is armed — the counts must be byte-identical to the
pre-instrumentation baseline, not merely within headroom.

Usage::

    PYTHONPATH=src python benchmarks/check_regression.py BENCH_5.json benchmarks/baseline.json
    PYTHONPATH=src python benchmarks/check_regression.py --strict-accesses BENCH_7.json benchmarks/baseline.json
"""

from __future__ import annotations

import json
import sys

#: Fail when accesses exceed baseline by more than this factor.
MAX_ACCESS_REGRESSION = 2.0


def compare(current: dict, baseline: dict, strict_accesses: bool = False) -> "tuple[list, list]":
    """Compare *current* against *baseline*.

    Returns ``(failures, warnings)``: deterministic access-count regressions
    are always failures; a timing inversion (compiled slower than
    interpreted) is a failure on full-length runs but only a warning in
    quick mode, whose traces are too short for reliable wall-clock.

    ``strict_accesses=True`` additionally fails on *any* access-count
    increase — the zero-overhead gate for always-compiled-in instrumentation
    (fault hooks, undo journals) that must never touch the counters.
    """
    failures = []
    warnings = []
    quick = current.get("meta", {}).get("mode") == "quick"

    def check_accesses(label: str, cur_accesses: int, base_accesses: int) -> None:
        if not base_accesses:
            return
        if cur_accesses > base_accesses * MAX_ACCESS_REGRESSION:
            failures.append(
                f"{label}: {cur_accesses:,d} accesses vs baseline "
                f"{base_accesses:,d} (>{MAX_ACCESS_REGRESSION}x regression)"
            )
        elif strict_accesses and cur_accesses > base_accesses:
            failures.append(
                f"{label}: {cur_accesses:,d} accesses vs baseline {base_accesses:,d} "
                f"(+{cur_accesses - base_accesses:,d}; strict gate — disabled fault "
                f"hooks and undo bookkeeping must add zero counted accesses)"
            )

    for name, base_data in sorted(baseline.get("workloads", {}).items()):
        cur_data = current.get("workloads", {}).get(name)
        if cur_data is None:
            failures.append(f"{name}: workload missing from current results")
            continue
        for tier, base_tier in sorted(base_data.get("tiers", {}).items()):
            cur_tier = cur_data.get("tiers", {}).get(tier)
            if cur_tier is None:
                failures.append(f"{name}/{tier}: tier missing from current results")
                continue
            check_accesses(
                f"{name}/{tier}", cur_tier.get("accesses", 0), base_tier.get("accesses", 0)
            )
        # The autotuner's winning access count is as deterministic as the
        # tier counts; a >2x jump means the scorer started picking a
        # genuinely worse layout.  As with a missing tier, a baseline that
        # has the section while the current report does not is a hard
        # failure — otherwise a --skip-autotune run would silently disable
        # this gate.
        base_tuned = base_data.get("autotuned") or {}
        cur_tuned = cur_data.get("autotuned")
        base_accesses = base_tuned.get("accesses", 0)
        if base_accesses and cur_tuned is None:
            failures.append(
                f"{name}/autotuned: section missing from current results "
                f"(baseline has it; was the harness run with --skip-autotune?)"
            )
        elif base_accesses:
            check_accesses(f"{name}/autotuned", cur_tuned.get("accesses", 0), base_accesses)
        speedup = cur_data.get("speedup_compiled_vs_interpreted")
        if speedup is not None and speedup < 1.0:
            message = (
                f"{name}: compiled tier ({speedup}x) is slower than the interpreted tier"
            )
            if quick:
                warnings.append(message + " (advisory in quick mode: unreliable wall-clock)")
            else:
                failures.append(message)
    return failures, warnings


def main(argv: list) -> int:
    args = list(argv[1:])
    strict_accesses = "--strict-accesses" in args
    if strict_accesses:
        args.remove("--strict-accesses")
    if len(args) != 2:
        print(__doc__, file=sys.stderr)
        return 2
    with open(args[0]) as handle:
        current = json.load(handle)
    with open(args[1]) as handle:
        baseline = json.load(handle)

    current_mode = current.get("meta", {}).get("mode")
    baseline_mode = baseline.get("meta", {}).get("mode")
    if current_mode != baseline_mode:
        print(
            f"mode mismatch: current results are {current_mode!r} but the baseline "
            f"is {baseline_mode!r} — trace sizes differ, access counts are not "
            f"comparable (re-run the harness with matching --quick settings)",
            file=sys.stderr,
        )
        return 2

    print(f"{'workload':<12} {'tier':<12} {'accesses':>14} {'baseline':>14} {'ratio':>7}")
    for name, base_data in sorted(baseline.get("workloads", {}).items()):
        cur_data = current.get("workloads", {}).get(name, {})
        for tier, base_tier in sorted(base_data.get("tiers", {}).items()):
            cur_tier = cur_data.get("tiers", {}).get(tier, {})
            base_accesses = base_tier.get("accesses", 0)
            cur_accesses = cur_tier.get("accesses", 0)
            if base_accesses:
                ratio = f"{cur_accesses / base_accesses:>6.2f}x"
            else:
                ratio = "     —"
            print(
                f"{name:<12} {tier:<12} {cur_accesses:>14,d} {base_accesses:>14,d} {ratio}"
            )
        base_tuned = (base_data.get("autotuned") or {}).get("accesses", 0)
        cur_tuned = (cur_data.get("autotuned") or {}).get("accesses", 0)
        if base_tuned:
            ratio = f"{cur_tuned / base_tuned:>6.2f}x"
            print(f"{name:<12} {'autotuned':<12} {cur_tuned:>14,d} {base_tuned:>14,d} {ratio}")
        speedup = cur_data.get("speedup_compiled_vs_interpreted")
        print(f"{name:<12} compiled-vs-interpreted speedup: {speedup}x")

    failures, warnings = compare(current, baseline, strict_accesses=strict_accesses)
    if warnings:
        print("\nWARNINGS (advisory, not failing the run):", file=sys.stderr)
        for warning in warnings:
            print(f"  - {warning}", file=sys.stderr)
    if failures:
        print("\nREGRESSIONS:", file=sys.stderr)
        for failure in failures:
            print(f"  - {failure}", file=sys.stderr)
        return 1
    if strict_accesses:
        print("\nno access-count increase against the baseline (strict gate)")
    else:
        print("\nno benchmark regressions (>2x) against the baseline")
    return 0


if __name__ == "__main__":
    raise SystemExit(main(sys.argv))
