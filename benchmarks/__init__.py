"""Benchmark harness for the three representation tiers.

Runs deterministic, seeded operation traces — modelled on the paper's
Section 6 workloads (process scheduler, directed graph, spanning-forest
components) — against the reference, interpreted and compiled
implementations of the same relational specification, verifies they agree,
and reports throughput plus deterministic
:class:`~repro.structures.base.OperationCounter` access counts.

Usage::

    PYTHONPATH=src python -m benchmarks --quick --output BENCH_5.json
    PYTHONPATH=src python benchmarks/check_regression.py BENCH_5.json benchmarks/baseline.json
"""

from .harness import main, run_all, run_workload
from .workloads import WORKLOADS, Workload, build_workloads

__all__ = ["WORKLOADS", "Workload", "build_workloads", "main", "run_all", "run_workload"]
