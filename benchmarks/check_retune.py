"""Fail CI unless the live re-tune hot-swap pays off on the drift workload.

The ISSUE-6 online-adaptivity gate: the ``graph_drift`` workload's query
mix flips from forward-neighbour (``{src}``) to reverse-neighbour
(``{dst}``) at ``tail_start``.  A :class:`repro.LiveRelation` opened on
the forward-only phase-1 layout must detect the drift, re-tune, hot-swap
its compiled backing class, and stay α-equivalent to a reference mirror —
and the post-swap layout must be strictly cheaper than the pre-swap layout
on the drifted tail, measured as deterministic
:class:`~repro.structures.base.OperationCounter` access counts over fresh
instances of each layout.  The harness records the comparison in the
report's ``retune`` section (:func:`measure_retune`); this script
validates it.

Usage::

    PYTHONPATH=src python benchmarks/check_retune.py BENCH_6.json
"""

from __future__ import annotations

import json
import sys

#: The drifting workload the gate measures.
WORKLOAD = "graph_drift"

#: Re-tune policy for the measured run: thresholds small enough that the
#: drifted tail (scale*4 operations) comfortably triggers the swap.
POLICY = {"min_ops": 150, "drift_threshold": 0.25}


def measure_retune(workload) -> dict:
    """Drive *workload* through a live relation; measure the swap's payoff.

    Three measurements over the same trace:

    1. a ``repro.open(spec, layout, live=True)`` run over the full trace —
       must auto-re-tune, hot-swap at least once, and finish α-equivalent
       to a :class:`~repro.core.reference.ReferenceRelation` mirror;
    2. the **pre-swap** layout: a fresh compiled instance of the phase-1
       layout, replaying the whole trace with only the drifted tail's
       accesses counted;
    3. the **post-swap** layout: the layout the live run swapped to, same
       protocol.

    Counting only the tail on fresh instances isolates the layouts'
    steady-state costs from the one-off migration cost (which is also
    reported, separately).
    """
    import repro
    from repro.live import SamplingTraceRecorder
    from repro.structures import COUNTER

    from .harness import replay

    assert workload.tail_start is not None, "drift workloads must set tail_start"
    head = workload.trace[: workload.tail_start]
    tail = workload.trace[workload.tail_start :]

    live = repro.open(
        workload.spec,
        workload.layout,
        live=True,
        policy=POLICY,
        sampler=SamplingTraceRecorder(seed=0),
    )
    mirror = repro.open(workload.spec, tier="reference")
    replay(live, workload.trace)
    replay(mirror, workload.trace)
    alpha_equivalent = live.to_relation() == mirror.to_relation()
    swaps = [r for r in live.retunes if r.swapped]
    new_layout = live.backing_layout()

    def tail_accesses(layout: str) -> int:
        relation = repro.open(workload.spec, layout, tier="compiled")
        replay(relation, head)
        with COUNTER:
            replay(relation, tail)
            return COUNTER.accesses

    old_tail = tail_accesses(workload.layout)
    new_tail = tail_accesses(new_layout)

    return {
        "workload": workload.name,
        "ops": len(workload.trace),
        "tail_start": workload.tail_start,
        "old_layout": workload.layout,
        "new_layout": new_layout,
        "retunes": len(live.retunes),
        "swaps": len(swaps),
        "generation": live.generation,
        "migrated_rows": sum(r.migrated for r in swaps),
        "alpha_equivalent": alpha_equivalent,
        "sampler": live.sampler.stats(),
        "old_tail_accesses": old_tail,
        "new_tail_accesses": new_tail,
        "speedup": round(old_tail / new_tail, 2) if new_tail else None,
    }


def check(report: dict) -> list:
    failures = []
    section = report.get("retune")
    if section is None:
        return [
            "retune section missing from the report (was the harness run "
            "on an older benchmarks/ tree?)"
        ]
    if section.get("workload") != WORKLOAD:
        failures.append(
            f"retune section measures {section.get('workload')!r}, "
            f"expected {WORKLOAD!r}"
        )
    if not section.get("swaps"):
        failures.append(
            f"the live relation never hot-swapped on the drifting workload "
            f"({section.get('retunes', 0)} re-tune(s) ran) — drift detection "
            f"or the swap path is broken"
        )
    if not section.get("alpha_equivalent"):
        failures.append(
            "the live relation diverged from the reference mirror across the "
            "hot-swap — α-migration is unsound"
        )
    if section.get("new_layout") == section.get("old_layout"):
        failures.append(
            f"the post-swap layout equals the pre-swap layout "
            f"({section.get('new_layout')!r}) — the re-tune chose nothing new"
        )
    old_tail = section.get("old_tail_accesses", 0)
    new_tail = section.get("new_tail_accesses", 0)
    if not new_tail or new_tail >= old_tail:
        failures.append(
            f"post-swap layout ({new_tail:,d} accesses) does not strictly beat "
            f"the pre-swap layout ({old_tail:,d}) on the drifted tail — "
            f"re-tuning bought nothing"
        )
    return failures


def main(argv: list) -> int:
    if len(argv) != 2:
        print(__doc__, file=sys.stderr)
        return 2
    with open(argv[1]) as handle:
        report = json.load(handle)
    section = report.get("retune") or {}
    if section:
        print(
            f"workload {section.get('workload')} · {section.get('ops'):,d} ops, "
            f"tail from {section.get('tail_start'):,d}"
        )
        print(f"  pre-swap:  {section.get('old_layout')}")
        print(f"  post-swap: {section.get('new_layout')}")
        print(
            f"  {section.get('retunes')} re-tune(s), {section.get('swaps')} swap(s), "
            f"{section.get('migrated_rows'):,d} row(s) migrated, "
            f"α-equivalent: {section.get('alpha_equivalent')}"
        )
        print(
            f"  tail accesses: pre-swap {section.get('old_tail_accesses'):,d} vs "
            f"post-swap {section.get('new_tail_accesses'):,d}"
        )
    failures = check(report)
    if failures:
        print("\nRETUNE GATE FAILURES:", file=sys.stderr)
        for failure in failures:
            print(f"  - {failure}", file=sys.stderr)
        return 1
    print(
        f"\nretune gate passed: the hot-swapped layout is {section.get('speedup')}x "
        f"cheaper on the drifted tail"
    )
    return 0


if __name__ == "__main__":
    raise SystemExit(main(sys.argv))
