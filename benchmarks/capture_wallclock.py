"""Capture median-of-3 wall-clock replays per workload/tier (fast tiers only).

Used once per release to pin the previous PR's wall-clock numbers that the
speed gate (``benchmarks/check_speed.py``) compares against, and by hand to
sanity-check speedups without a full harness run (no reference tier, no
autotuner, no instrumented replay).

Usage::

    PYTHONPATH=src python -m benchmarks.capture_wallclock out.json [--quick]
"""

from __future__ import annotations

import json
import statistics
import sys
import time

from .harness import make_tier, replay
from .workloads import build_workloads

TIERS = ("interpreted", "compiled")
REPEAT = 3


def capture(quick: bool = False) -> dict:
    report: dict = {"meta": {"mode": "quick" if quick else "default", "repeat": REPEAT}}
    workloads = {}
    for workload in build_workloads(quick=quick):
        tiers = {}
        for tier in TIERS:
            samples = []
            for _ in range(REPEAT):
                relation = make_tier(tier, workload)
                started = time.perf_counter()
                replay(relation, workload.trace)
                samples.append(time.perf_counter() - started)
            tiers[tier] = {
                "median_seconds": round(statistics.median(samples), 6),
                "samples": [round(s, 6) for s in samples],
            }
            print(
                f"{workload.name:16s} {tier:12s} median "
                f"{tiers[tier]['median_seconds']:.4f}s",
                file=sys.stderr,
            )
        workloads[workload.name] = {"ops": len(workload.trace), "tiers": tiers}
    report["workloads"] = workloads
    return report


def main(argv) -> int:
    args = [a for a in argv[1:] if a != "--quick"]
    quick = "--quick" in argv[1:]
    if len(args) != 1:
        print(__doc__, file=sys.stderr)
        return 2
    report = capture(quick=quick)
    with open(args[0], "w") as handle:
        json.dump(report, handle, indent=2, sort_keys=True)
        handle.write("\n")
    print(f"wrote {args[0]}", file=sys.stderr)
    return 0


if __name__ == "__main__":
    raise SystemExit(main(sys.argv))
