"""Functional dependencies: parsing, closure, entailment, keys, semantics."""

import pytest

from repro.core import FDSet, FunctionalDependency, t
from repro.core.errors import SpecificationError


class TestFunctionalDependency:
    def test_parse(self):
        fd = FunctionalDependency.parse("ns, pid -> state, cpu")
        assert fd.lhs == frozenset({"ns", "pid"})
        assert fd.rhs == frozenset({"state", "cpu"})

    def test_parse_requires_arrow(self):
        with pytest.raises(SpecificationError):
            FunctionalDependency.parse("ns, pid")

    def test_empty_rhs_rejected(self):
        with pytest.raises(SpecificationError):
            FunctionalDependency("a", [])

    def test_empty_lhs_means_constant_columns(self):
        fd = FunctionalDependency([], "a")
        assert fd.holds_on([t(a=1, b=1), t(a=1, b=2)])
        assert not fd.holds_on([t(a=1, b=1), t(a=2, b=2)])

    def test_trivial(self):
        assert FunctionalDependency("a, b", "a").is_trivial()
        assert not FunctionalDependency("a", "b").is_trivial()

    def test_holds_on(self):
        fd = FunctionalDependency("a", "b")
        assert fd.holds_on([t(a=1, b=2, c=3), t(a=2, b=2, c=4)])
        assert not fd.holds_on([t(a=1, b=2, c=3), t(a=1, b=9, c=3)])


class TestFDSet:
    def test_closure(self):
        fds = FDSet(["a -> b", "b -> c"])
        assert fds.closure("a") == frozenset({"a", "b", "c"})
        assert fds.closure("b") == frozenset({"b", "c"})
        assert fds.closure("c") == frozenset({"c"})

    def test_entailment_is_transitive(self):
        fds = FDSet(["a -> b", "b -> c"])
        assert fds.entails("a", "c")
        assert not fds.entails("c", "a")

    def test_entailment_augmentation(self):
        fds = FDSet(["a -> b"])
        assert fds.entails("a, c", "b, c")

    def test_is_key_and_minimal_keys(self):
        fds = FDSet(["ns, pid -> state, cpu"])
        cols = "ns, pid, state, cpu"
        assert fds.is_key("ns, pid", cols)
        assert not fds.is_key("ns", cols)
        assert fds.minimal_keys(cols) == [frozenset({"ns", "pid"})]

    def test_minimal_keys_multiple(self):
        fds = FDSet(["a -> b", "b -> a"])
        keys = fds.minimal_keys("a, b")
        assert sorted(keys, key=sorted) == [frozenset({"a"}), frozenset({"b"})]

    def test_satisfied_by_and_violations(self):
        fds = FDSet(["a -> b"])
        good = [t(a=1, b=1), t(a=2, b=1)]
        bad = good + [t(a=1, b=2)]
        assert fds.satisfied_by(good)
        assert not fds.satisfied_by(bad)
        assert fds.violations(bad) == [FunctionalDependency("a", "b")]

    def test_restrict_projects_entailed_fds(self):
        fds = FDSet(["a -> b", "b -> c"])
        projected = fds.restrict("a, c")
        assert projected.entails("a", "c")
        assert not projected.entails("c", "a")

    def test_equivalent_to(self):
        assert FDSet(["a -> b", "b -> c"]).equivalent_to(FDSet(["a -> b, c", "b -> c"]))
        assert not FDSet(["a -> b"]).equivalent_to(FDSet(["b -> a"]))

    def test_parse_semicolon_separated(self):
        fds = FDSet.parse("a -> b; b -> c")
        assert len(fds) == 2

    def test_deduplication_and_equality(self):
        assert FDSet(["a -> b", "a -> b"]) == FDSet(["a -> b"])
        assert len(FDSet(["a -> b", "a -> b"])) == 1
