"""Shared fixtures: the paper's process-scheduler specification."""

import pytest

from repro.core import RelationSpec


@pytest.fixture
def scheduler_spec() -> RelationSpec:
    """The running example of the paper: processes keyed by (ns, pid)."""
    return RelationSpec(
        "ns, pid, state, cpu",
        fds=["ns, pid -> state, cpu"],
        name="process",
    )
