"""Ordered range scans: ``items_range`` on ``avl`` and ``query_range`` tiers.

ROADMAP named ``avl`` range iteration as never exercised; these tests pin it
at every layer:

* the container itself — :meth:`AVLTreeMap.items_range` agrees with a
  filtered sorted scan, yields in key order, and touches O(log n + k)
  counted accesses (a bounded descent, not a full in-order walk);
* the generic fallback — every container answers ``items_range`` through
  the base class's filtered sort;
* the relation operation — ``query_range`` returns the identical ordered
  list on all three tiers (reference, interpreted, compiled), under a
  seeded differential interleaving range scans with mutations, on ordered
  and unordered layouts alike;
* the asymptotics — an ordered root index serves a narrow window cheaply
  where a hash-rooted layout pays a full scan, in the interpreted and the
  compiled tier both.
"""

import random

import pytest

from repro.codegen import compile_relation
from repro.core import ReferenceRelation, RelationSpec, Tuple
from repro.core.errors import FunctionalDependencyError
from repro.decomposition import DecomposedRelation
from repro.structures import COUNTER
from repro.structures.avltree import AVLTreeMap
from repro.structures.htable import HashTableMap

SPEC = RelationSpec("ts, sensor, reading", fds=["ts -> sensor, reading"], name="event")

LAYOUTS = {
    "avl-root": "ts -> btree {sensor, reading}",
    "avl-deep": "ts -> btree sensor -> htable {reading}",
    "hash-root": "ts -> htable {sensor, reading}",
    "two-branch": (
        "[ts -> btree {sensor, reading} ; sensor -> htable (ts -> dlist {reading})]"
    ),
}

SENSORS = ["temp", "flow", "volt"]


def fill(container, n, rng):
    expected = {}
    for value in rng.sample(range(n * 3), n):
        key = Tuple(ts=value)
        container.insert(key, value * 10)
        expected[value] = value * 10
    return expected


class TestItemsRange:
    def test_agrees_with_filtered_sorted_scan(self):
        rng = random.Random(7)
        tree = AVLTreeMap()
        expected = fill(tree, 120, rng)
        lo, hi = Tuple(ts=50), Tuple(ts=200)
        got = list(tree.items_range(lo, hi))
        want = [
            (Tuple(ts=v), expected[v]) for v in sorted(expected) if 50 <= v <= 200
        ]
        assert got == want

    def test_open_bounds(self):
        rng = random.Random(8)
        tree = AVLTreeMap()
        expected = fill(tree, 60, rng)
        inorder = [(Tuple(ts=v), expected[v]) for v in sorted(expected)]
        assert list(tree.items_range()) == inorder
        assert list(tree.items_range(lo=Tuple(ts=90))) == [
            e for e in inorder if e[0]["ts"] >= 90
        ]
        assert list(tree.items_range(hi=Tuple(ts=90))) == [
            e for e in inorder if e[0]["ts"] <= 90
        ]

    def test_empty_window_and_empty_tree(self):
        tree = AVLTreeMap()
        assert list(tree.items_range(Tuple(ts=1), Tuple(ts=2))) == []
        fill(tree, 30, random.Random(9))
        assert list(tree.items_range(Tuple(ts=-5), Tuple(ts=-1))) == []

    def test_bounded_descent_accesses(self):
        """A narrow window touches O(log n + k) nodes, not all n."""
        tree = AVLTreeMap()
        fill(tree, 512, random.Random(10))
        with COUNTER:
            hits = list(tree.items_range(Tuple(ts=100), Tuple(ts=110)))
            accesses = COUNTER.accesses
        assert hits  # The window is non-trivial.
        # Bounded descent: two boundary paths (≤ tree height each, ~1.44 log2 n)
        # plus the in-range nodes — far below the 512 an in-order walk visits.
        assert accesses <= 2 * 15 + len(hits) + 5
        with COUNTER:
            list(tree.items())
            full_walk = COUNTER.accesses
        assert accesses < full_walk / 4

    def test_generic_fallback_on_unordered_container(self):
        rng = random.Random(11)
        table = HashTableMap()
        expected = fill(table, 80, rng)
        got = list(table.items_range(Tuple(ts=40), Tuple(ts=160)))
        want = [
            (Tuple(ts=v), expected[v]) for v in sorted(expected) if 40 <= v <= 160
        ]
        assert got == want


def build_tiers(layout, enforce_fds=True):
    return {
        "reference": ReferenceRelation(SPEC, enforce_fds=enforce_fds),
        "interpreted": DecomposedRelation(SPEC, layout, enforce_fds=enforce_fds),
        "compiled": compile_relation(SPEC, layout)(enforce_fds=enforce_fds),
    }


def apply_all(op, tiers):
    """Apply *op* to every tier; FD rejections must agree across tiers."""
    outcomes = {}
    for name, tier in tiers.items():
        try:
            op(tier)
            outcomes[name] = None
        except FunctionalDependencyError as error:
            outcomes[name] = error
    rejected = {name for name, error in outcomes.items() if error is not None}
    assert rejected in (set(), set(tiers)), (
        f"tiers disagree on FD enforcement: rejected by {sorted(rejected)} only"
    )


def random_event(rng):
    return Tuple(
        ts=rng.randrange(300), sensor=rng.choice(SENSORS), reading=rng.randrange(50)
    )


class TestQueryRangeDifferential:
    @pytest.mark.parametrize("enforce_fds", [True, False], ids=["fd-on", "fd-off"])
    @pytest.mark.parametrize("layout", sorted(LAYOUTS))
    def test_seeded_differential(self, layout, enforce_fds):
        """Range scans interleaved with mutations agree across all tiers.

        The reference tier's generic filtered scan is the oracle; the
        interpreted and compiled tiers must return the **identical ordered
        list** — not merely the same set — whether they serve the scan
        from an ordered root index or from the fallback.  FD-violating
        inserts must be rejected (or evicted) identically everywhere.
        """
        rng = random.Random(20110604)
        tiers = build_tiers(LAYOUTS[layout], enforce_fds=enforce_fds)
        for step in range(400):
            roll = rng.random()
            if roll < 0.45:
                event = random_event(rng)
                apply_all(lambda tier: tier.insert(event), tiers)
            elif roll < 0.6:
                pattern = Tuple(ts=rng.randrange(300))
                for tier in tiers.values():
                    tier.remove(pattern)
            elif roll < 0.75:
                pattern = Tuple(ts=rng.randrange(300))
                changes = Tuple(reading=rng.randrange(50))
                for tier in tiers.values():
                    tier.update(pattern, changes)
            else:
                lo = rng.randrange(300)
                hi = lo + rng.randrange(1, 60)
                expected = tiers["reference"].query_range("ts", lo, hi)
                for name, tier in tiers.items():
                    assert tier.query_range("ts", lo, hi) == expected, (
                        f"tier {name} diverged on range [{lo}, {hi}] at step {step}"
                    )
        # Final full-order agreement, both unbounded and one-sided.
        for bounds in [(), (150, None), (None, 150)]:
            lo, hi = bounds if bounds else (None, None)
            expected = tiers["reference"].query_range("ts", lo, hi)
            assert expected  # The run must have left data behind.
            for name, tier in tiers.items():
                assert tier.query_range("ts", lo, hi) == expected, name

    def test_secondary_column_falls_back_everywhere(self):
        tiers = build_tiers(LAYOUTS["avl-root"])
        rng = random.Random(5)
        for ts in rng.sample(range(200), 50):
            event = Tuple(
                ts=ts, sensor=rng.choice(SENSORS), reading=rng.randrange(50)
            )
            for tier in tiers.values():
                tier.insert(event)
        expected = tiers["reference"].query_range("reading", 10, 30)
        assert expected
        for name, tier in tiers.items():
            assert tier.query_range("reading", 10, 30) == expected, name

    def test_unknown_column_rejected_everywhere(self):
        from repro.core.errors import SpecificationError

        for tier in build_tiers(LAYOUTS["avl-root"]).values():
            with pytest.raises(SpecificationError):
                tier.query_range("nope", 0, 1)


class TestOrderedIndexAsymptotics:
    def populate(self, layout, n=256):
        relation = (
            DecomposedRelation(SPEC, layout)
            if isinstance(layout, str)
            else layout
        )
        rng = random.Random(13)
        stamps = list(range(n))
        rng.shuffle(stamps)
        for ts in stamps:
            relation.insert(
                Tuple(ts=ts, sensor=rng.choice(SENSORS), reading=rng.randrange(50))
            )
        return relation

    def measure(self, relation, lo, hi):
        with COUNTER:
            hits = relation.query_range("ts", lo, hi)
            return len(hits), COUNTER.accesses

    def test_interpreted_ordered_root_beats_hash_root(self):
        ordered = self.populate(LAYOUTS["avl-root"])
        hashed = self.populate(LAYOUTS["hash-root"])
        hits, ordered_accesses = self.measure(ordered, 100, 107)
        hash_hits, hash_accesses = self.measure(hashed, 100, 107)
        assert hits == hash_hits > 0
        # The ordered root serves the window by bounded descent; the hash
        # root filters a full scan of all 256 rows.
        assert hash_accesses >= 256
        assert ordered_accesses < hash_accesses / 4

    def test_compiled_ordered_root_beats_fallback(self):
        ordered = self.populate(compile_relation(SPEC, LAYOUTS["avl-root"])())
        hashed = self.populate(compile_relation(SPEC, LAYOUTS["hash-root"])())
        hits, ordered_accesses = self.measure(ordered, 100, 107)
        hash_hits, hash_accesses = self.measure(hashed, 100, 107)
        assert hits == hash_hits > 0
        assert ordered_accesses < hash_accesses / 4


class TestOrderedScanWorkload:
    def test_workload_replays_identically_across_tiers(self):
        """The benchmark's ordered_scan trace (range ops included) agrees."""
        import os
        import sys

        sys.path.insert(0, os.path.join(os.path.dirname(__file__), ".."))
        from benchmarks.workloads import ordered_scan

        from repro.autotuner import replay_operations

        workload = ordered_scan(12)
        assert any(op[0] == "range" for op in workload.trace)
        tiers = {
            "reference": ReferenceRelation(workload.spec),
            "interpreted": DecomposedRelation(workload.spec, workload.layout),
            "compiled": compile_relation(workload.spec, workload.layout)(),
        }
        final = None
        for name, tier in tiers.items():
            replay_operations(tier, workload.trace)
            outcome = tier.to_relation()
            if final is None:
                final = outcome
            else:
                assert outcome == final, f"tier {name} diverged on ordered_scan"
        # And the ordered window agrees after the replay, too.
        expected = tiers["reference"].query_range("ts", 20, 80)
        for name, tier in tiers.items():
            assert tier.query_range("ts", 20, 80) == expected, name
