"""OperationCounter-based asymptotic guarantees across the tiers.

These tests pin down the *reason* the representations are fast, not just
that they are: hash-indexed patterns must touch O(1) container entries in
both the compiled and the (live-cost-planned) interpreted tier, list
layouts must genuinely scan, plan choice must flip when the live data
distribution flips, and the maintained counts must make ``len``/``is_empty``
access-free.
"""

import pytest

from repro.codegen import compile_relation
from repro.core import RelationSpec, t
from repro.decomposition import DecomposedRelation
from repro.structures import COUNTER

KV_SPEC = RelationSpec("k, v", fds=["k -> v"], name="kv")


def fill_kv(relation, n):
    for i in range(n):
        relation.insert(t(k=i, v=i % 7))


def counted_query(relation, pattern):
    with COUNTER as counter:
        relation.query(pattern)
        return counter.accesses


class TestCompiledAsymptotics:
    @pytest.mark.parametrize("n_small, n_large", [(64, 512)])
    def test_hash_lookup_is_constant(self, n_small, n_large):
        cls = compile_relation(KV_SPEC, "k -> htable {v}", class_name="KvHash")
        small, large = cls(), cls()
        fill_kv(small, n_small)
        fill_kv(large, n_large)
        a_small = counted_query(small, {"k": n_small - 1})
        a_large = counted_query(large, {"k": n_large - 1})
        assert a_small <= 2
        assert a_large <= a_small  # O(1): independent of container size.

    @pytest.mark.parametrize("n_small, n_large", [(64, 512)])
    def test_list_lookup_scans(self, n_small, n_large):
        cls = compile_relation(KV_SPEC, "k -> dlist {v}", class_name="KvList")
        small, large = cls(), cls()
        fill_kv(small, n_small)
        fill_kv(large, n_large)
        # The most recently appended key sits at the end of the entry list.
        a_small = counted_query(small, {"k": n_small - 1})
        a_large = counted_query(large, {"k": n_large - 1})
        assert a_small >= n_small
        assert a_large >= 4 * a_small  # Genuinely linear, not hash-backed.

    def test_counting_is_off_by_default(self):
        cls = compile_relation(KV_SPEC, "k -> htable {v}", class_name="KvOff")
        relation = cls()
        fill_kv(relation, 16)
        COUNTER.reset()
        relation.query({"k": 3})
        assert COUNTER.accesses == 0  # Counter disabled outside the context.


class TestInterpretedAsymptotics:
    @pytest.mark.parametrize("n_small, n_large", [(64, 512)])
    def test_live_planner_uses_hash_index(self, n_small, n_large):
        small = DecomposedRelation(KV_SPEC, "k -> htable {v}")
        large = DecomposedRelation(KV_SPEC, "k -> htable {v}")
        fill_kv(small, n_small)
        fill_kv(large, n_large)
        a_small = counted_query(small, {"k": n_small - 1})
        a_large = counted_query(large, {"k": n_large - 1})
        assert a_small <= 4  # Hash probe: bounded chain, no scan.
        assert a_large <= a_small + 2

    @pytest.mark.parametrize("n_small, n_large", [(64, 512)])
    def test_list_layout_scans(self, n_small, n_large):
        small = DecomposedRelation(KV_SPEC, "k -> dlist {v}")
        large = DecomposedRelation(KV_SPEC, "k -> dlist {v}")
        fill_kv(small, n_small)
        fill_kv(large, n_large)
        a_small = counted_query(small, {"k": n_small - 1})
        a_large = counted_query(large, {"k": n_large - 1})
        assert a_small >= n_small
        assert a_large >= 4 * a_small


class TestLiveCostPlanning:
    SPEC = RelationSpec("a, b, c", fds=["a, b -> c"], name="skewed")
    LAYOUT = "[a -> htable (b -> dlist {c}) ; b -> htable (a -> dlist {c})]"

    def chosen_first_key(self, relation):
        return set(relation.plan_for("a, b").steps[0].edge.key)

    def test_plan_flips_with_the_data_distribution(self):
        relation = DecomposedRelation(self.SPEC, self.LAYOUT)
        # Skew 1: many distinct a, two distinct b — the per-a dlists are
        # tiny, the per-b dlists are huge; the a-branch must win.
        for i in range(64):
            relation.insert(t(a=i, b=i % 2, c=0))
        assert self.chosen_first_key(relation) == {"a"}

        # Skew 2 (reversed): the same relation, re-populated with two
        # distinct a and many distinct b; size classes change, the plan
        # cache is invalidated, and the b-branch must now win.
        relation.remove(None)
        for i in range(64):
            relation.insert(t(a=i % 2, b=i, c=0))
        assert self.chosen_first_key(relation) == {"b"}

    def test_plan_cache_reused_within_a_size_class(self):
        relation = DecomposedRelation(self.SPEC, self.LAYOUT)
        for i in range(64):
            relation.insert(t(a=i, b=i % 2, c=0))
        first = relation.plan_for("a, b")
        assert relation.plan_for("a, b") is first  # No mutation: cached.
        relation.insert(t(a=100, b=0, c=0))  # Same size class: still cached.
        assert relation.plan_for("a, b") is first

    def test_lookup_beats_scan_only_on_real_sizes(self):
        """The scheduler regression behind DEFAULT_COST_SIZE: with live
        sizes the planner charges the actual (small) containers."""
        relation = DecomposedRelation(self.SPEC, self.LAYOUT)
        for i in range(8):
            relation.insert(t(a=i, b=i % 2, c=0))
        plan = relation.plan_for("a, b")
        sizes = relation.instance.edge_sizes()
        assert plan.estimated_cost(sizes=sizes) <= plan.estimated_cost()


class TestMaintainedCounts:
    def test_len_and_is_empty_are_access_free(self):
        relation = DecomposedRelation(KV_SPEC, "k -> htable {v}")
        fill_kv(relation, 128)
        with COUNTER as counter:
            assert len(relation) == 128
            assert len(relation.instance) == 128
            assert not relation.is_empty()
            assert not relation.instance.is_empty()
            assert counter.accesses == 0

    def test_compiled_len_is_access_free(self):
        cls = compile_relation(KV_SPEC, "k -> htable {v}", class_name="KvLen")
        relation = cls()
        fill_kv(relation, 128)
        with COUNTER as counter:
            assert len(relation) == 128
            assert counter.accesses == 0

    def test_count_tracks_removals_and_conflicts(self):
        relation = DecomposedRelation(KV_SPEC, "k -> htable {v}", enforce_fds=False)
        fill_kv(relation, 10)
        relation.insert(t(k=3, v=99))  # Conflict eviction: net count unchanged.
        assert len(relation) == 10
        relation.remove(t(k=3))
        assert len(relation) == 9
        relation.instance.clear()
        assert len(relation) == 0 and relation.is_empty()


class TestUpdateLocality:
    def test_keyed_update_does_not_rescan_the_relation(self, scheduler_spec):
        """The FD check in update must only touch the groups reachable from
        the merged tuples (satellite fix), so a primary-key update costs
        O(1) accesses regardless of the relation size."""

        def accesses_at(n):
            relation = DecomposedRelation(
                scheduler_spec, "ns, pid -> htable {state, cpu}"
            )
            for pid in range(n):
                relation.insert(t(ns=1, pid=pid, state="R", cpu=0))
            with COUNTER as counter:
                relation.update({"ns": 1, "pid": n - 1}, {"cpu": 1})
                return counter.accesses

        small, large = accesses_at(32), accesses_at(256)
        # O(1)-ish (was O(n) ≈ hundreds before the fix).  An absolute slack
        # rather than a ratio: the counts are single digits, and hash-table
        # chain layouts add a few probes of jitter under unlucky
        # PYTHONHASHSEEDs, which a 2x ratio on ~4 accesses cannot absorb.
        assert large <= small + 8
