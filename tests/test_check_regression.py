"""Tests for the benchmark regression gate (``benchmarks/check_regression.py``).

Access-count regressions are always fatal; the timing check (compiled must
beat interpreted) is advisory in quick mode, where wall-clock on shared CI
runners is unreliable by the module's own account.
"""

import copy

from benchmarks.check_regression import MAX_ACCESS_REGRESSION, compare


def report(mode="quick", accesses=1000, speedup=10.0, autotuned=400):
    return {
        "meta": {"mode": mode},
        "workloads": {
            "scheduler": {
                "tiers": {
                    "interpreted": {"accesses": accesses},
                    "compiled": {"accesses": accesses // 2},
                },
                "speedup_compiled_vs_interpreted": speedup,
                "autotuned": {"accesses": autotuned},
            }
        },
    }


def test_healthy_report_passes():
    baseline = report()
    failures, warnings = compare(copy.deepcopy(baseline), baseline)
    assert failures == [] and warnings == []


def test_access_regression_is_fatal_in_quick_mode():
    baseline = report()
    current = report(accesses=int(1000 * MAX_ACCESS_REGRESSION) + 100)
    failures, warnings = compare(current, baseline)
    assert any("regression" in f for f in failures)
    assert warnings == []


def test_autotuned_access_regression_is_fatal():
    baseline = report()
    current = report(autotuned=int(400 * MAX_ACCESS_REGRESSION) + 50)
    failures, warnings = compare(current, baseline)
    assert any("autotuned" in f and "regression" in f for f in failures)
    assert warnings == []


def test_missing_autotuned_section_fails_when_baseline_has_it():
    # A --skip-autotune run must not silently disable the autotuned gate.
    baseline = report()
    current = report()
    del current["workloads"]["scheduler"]["autotuned"]
    failures, warnings = compare(current, baseline)
    assert any("autotuned" in f and "missing" in f for f in failures)
    assert warnings == []


def test_autotuned_section_optional_when_baseline_lacks_it():
    # Older baselines without the column impose no autotuned gate.
    baseline = report()
    del baseline["workloads"]["scheduler"]["autotuned"]
    current = report()
    del current["workloads"]["scheduler"]["autotuned"]
    failures, warnings = compare(current, baseline)
    assert failures == [] and warnings == []


def test_timing_inversion_is_advisory_in_quick_mode():
    baseline = report()
    current = report(speedup=0.7)
    failures, warnings = compare(current, baseline)
    assert failures == []
    assert len(warnings) == 1 and "advisory" in warnings[0]


def test_timing_inversion_is_fatal_in_default_mode():
    baseline = report(mode="default")
    current = report(mode="default", speedup=0.7)
    failures, warnings = compare(current, baseline)
    assert any("slower than the interpreted tier" in f for f in failures)
    assert warnings == []


def test_strict_accesses_fails_on_any_increase():
    # The chaos job's zero-overhead gate: disabled fault hooks and undo-log
    # bookkeeping must not add a single counted access, even well inside
    # the 2x headroom of the default gate.
    baseline = report()
    current = report(accesses=1002)
    failures, warnings = compare(current, baseline)
    assert failures == []  # within 2x: the default gate passes...
    failures, warnings = compare(current, baseline, strict_accesses=True)
    assert any("strict gate" in f and "+2" in f for f in failures)
    assert warnings == []


def test_strict_accesses_covers_the_autotuned_section():
    baseline = report()
    current = report(autotuned=401)
    failures, _ = compare(current, baseline, strict_accesses=True)
    assert any("autotuned" in f and "strict gate" in f for f in failures)


def test_strict_accesses_passes_on_identical_and_improved_counts():
    baseline = report()
    failures, warnings = compare(copy.deepcopy(baseline), baseline, strict_accesses=True)
    assert failures == [] and warnings == []
    improved = report(accesses=900, autotuned=300)
    failures, warnings = compare(improved, baseline, strict_accesses=True)
    assert failures == [] and warnings == []


def test_missing_workload_and_tier_are_fatal():
    baseline = report()
    current = copy.deepcopy(baseline)
    del current["workloads"]["scheduler"]["tiers"]["compiled"]
    failures, _ = compare(current, baseline)
    assert any("tier missing" in f for f in failures)
    current = {"meta": {"mode": "quick"}, "workloads": {}}
    failures, _ = compare(current, baseline)
    assert any("workload missing" in f for f in failures)
