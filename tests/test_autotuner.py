"""Tests for the §5 autotuner: enumeration, traces, scoring, synthesis.

The property tests pin the acceptance criteria of the autotuner:

* every enumerated candidate passes the adequacy judgement;
* the enumerated set is deduplicated by canonical shape;
* on a benchmark workload trace, the chosen layout's exactly-replayed
  access count is no worse than *every* hand-written layout's — without
  the hand layouts being force-included, i.e. the enumerator genuinely
  covers (or beats) the shapes a developer would write.
"""

import pytest

from benchmarks.workloads import WORKLOADS
from repro.autotuner import (
    Trace,
    TraceRecorder,
    autotune,
    canonical_shape,
    enumerate_decompositions,
    exact_accesses,
    memory_proxy,
    pareto_front,
    representative_structures,
    static_cost,
    synthesize,
)
from repro.autotuner.scorer import ScoredCandidate
from repro.core import ReferenceRelation, RelationSpec, Tuple, t
from repro.core.errors import AutotunerError, FunctionalDependencyError
from repro.core.interface import RelationInterface
from repro.decomposition import DecomposedRelation, is_adequate, parse_decomposition

SCHEDULER_PATTERNS = [frozenset({"ns", "pid"}), frozenset({"state"})]


@pytest.fixture(scope="module")
def small_scheduler():
    return WORKLOADS["scheduler"](20)


@pytest.fixture(scope="module")
def scheduler_tuning(small_scheduler):
    return autotune(small_scheduler.spec, Trace.from_workload(small_scheduler))


class TestEnumerator:
    def test_every_candidate_is_adequate(self, scheduler_spec):
        candidates = enumerate_decompositions(scheduler_spec, SCHEDULER_PATTERNS)
        assert len(candidates) > 100
        for decomposition in candidates:
            assert is_adequate(decomposition, scheduler_spec)

    def test_candidates_deduplicated_by_canonical_shape(self, scheduler_spec):
        candidates = enumerate_decompositions(scheduler_spec, SCHEDULER_PATTERNS)
        shapes = [canonical_shape(d) for d in candidates]
        assert len(shapes) == len(set(shapes))

    def test_includes_paper_layout_shapes(self, scheduler_spec):
        """The running example's hand layouts are inside the search space."""
        candidates = enumerate_decompositions(scheduler_spec, SCHEDULER_PATTERNS)
        shapes = {canonical_shape(d) for d in candidates}
        for hand in (
            "ns, pid -> htable {state, cpu}",
            "[ns -> htable pid -> btree {state, cpu}"
            " ; state -> htable (ns, pid -> dlist {cpu})]",
        ):
            assert canonical_shape(parse_decomposition(hand)) in shapes

    def test_bounded_depth(self, scheduler_spec):
        for decomposition in enumerate_decompositions(
            scheduler_spec, SCHEDULER_PATTERNS, max_depth=2
        ):
            assert decomposition.depth() <= 2

    def test_depth_zero_rejected(self, scheduler_spec):
        with pytest.raises(AutotunerError, match="max_depth"):
            enumerate_decompositions(scheduler_spec, max_depth=0)

    def test_max_candidates_truncates(self, scheduler_spec):
        candidates = enumerate_decompositions(
            scheduler_spec, SCHEDULER_PATTERNS, max_candidates=7
        )
        assert len(candidates) == 7

    def test_no_fds_yields_fully_bound_layouts(self):
        spec = RelationSpec("a, b", name="pairs")  # no FDs: only C is a key
        candidates = enumerate_decompositions(spec, [frozenset({"a"})])
        assert candidates
        for decomposition in candidates:
            for path in decomposition.paths():
                assert path.bound == spec.columns

    def test_representative_structures_collapse_cost_classes(self):
        reps = representative_structures(["dlist", "ilist", "htable", "avl"])
        # dlist and ilist share the linear cost model; one representative.
        assert reps == ["dlist", "htable", "avl"]
        # Aliases resolve before grouping.
        assert representative_structures(["btree"]) == ["avl"]


class TestTrace:
    def test_recorder_records_successful_operations(self, scheduler_spec):
        recorder = TraceRecorder(ReferenceRelation(scheduler_spec))
        recorder.insert(t(ns=0, pid=1, state="R", cpu=0))
        recorder.update(t(ns=0, pid=1), t(state="S"))
        assert recorder.query(t(state="S"), "pid") == [Tuple(pid=1)]
        recorder.remove(t(ns=0))
        assert [op[0] for op in recorder.trace] == ["insert", "update", "query", "remove"]

    def test_recorder_skips_failed_operations(self, scheduler_spec):
        recorder = TraceRecorder(ReferenceRelation(scheduler_spec, enforce_fds=True))
        recorder.insert(t(ns=0, pid=1, state="R", cpu=0))
        with pytest.raises(FunctionalDependencyError):
            recorder.insert(t(ns=0, pid=1, state="S", cpu=0))
        assert len(recorder.trace) == 1  # The rejected insert never happened.

    def test_recorder_normalises_one_shot_output_iterables(self, scheduler_spec):
        recorder = TraceRecorder(ReferenceRelation(scheduler_spec))
        recorder.insert(t(ns=0, pid=1, state="R", cpu=0))
        live = recorder.query(t(ns=0), iter(["state"]))  # generator: consumed once
        assert live == [Tuple(state="R")]
        replayed = recorder.trace.replay(ReferenceRelation(scheduler_spec))
        assert replayed.query(t(ns=0), "state") == [Tuple(state="R")]
        # The recorded operation carries concrete columns, not a spent iterator.
        assert recorder.trace.operations[-1][2] == ("state",)

    def test_recorder_propagates_fd_mode_into_synthesis(self, scheduler_spec):
        """A trace recorded with enforcement off contains FD-conflicting
        inserts; autotune/synthesize must replay it in the same mode
        instead of raising mid-scoring."""
        recorder = TraceRecorder(ReferenceRelation(scheduler_spec, enforce_fds=False))
        for pid in range(6):
            recorder.insert(t(ns=0, pid=pid, state="R", cpu=0))
            recorder.insert(t(ns=0, pid=pid, state="S", cpu=0))  # FD conflict: evicts
        for pid in range(6):
            recorder.query(t(ns=0, pid=pid), "state")
        assert recorder.trace.enforce_fds is False
        assert recorder.enforce_fds is False  # The wrapper stays transparent.
        cls = synthesize(scheduler_spec, recorder.trace)
        # The synthesized class defaults to the mode it was tuned under.
        tuned = recorder.trace.replay(cls())
        assert tuned.enforce_fds is False
        assert tuned.to_relation() == recorder.to_relation()
        # A recorder wrapping a recorder still sees the FD mode.
        assert TraceRecorder(recorder).trace.enforce_fds is False

    def test_recorder_requires_a_spec(self):
        with pytest.raises(AutotunerError, match="must expose its RelationSpec"):
            TraceRecorder(object())

    def test_replay_reproduces_the_recorded_state(self, scheduler_spec):
        recorder = TraceRecorder(ReferenceRelation(scheduler_spec))
        recorder.insert(t(ns=0, pid=1, state="R", cpu=0))
        recorder.insert(t(ns=1, pid=2, state="S", cpu=1))
        recorder.update(t(state="R"), t(cpu=3))
        recorder.remove(t(pid=2))
        replayed = recorder.trace.replay(
            DecomposedRelation(scheduler_spec, "ns, pid -> htable {state, cpu}")
        )
        assert replayed.to_relation() == recorder.to_relation()

    def test_from_workload_and_profile(self, small_scheduler):
        trace = Trace.from_workload(small_scheduler)
        assert len(trace) == len(small_scheduler.trace)
        profile = trace.profile()
        assert profile.inserts > 0
        assert frozenset({"state"}) in profile.queries
        assert frozenset({"ns", "pid"}) in profile.queries
        assert profile.operation_count() == len(trace)
        assert profile.approx_max_size > 0

    def test_rejects_malformed_operations(self, scheduler_spec):
        with pytest.raises(AutotunerError, match="trace operations"):
            Trace(scheduler_spec, [("upsert", t(ns=0))])
        # Wrong arity fails at construction, not as an IndexError mid-replay.
        with pytest.raises(AutotunerError, match="argument"):
            Trace(scheduler_spec, [("update", t(ns=0))])
        with pytest.raises(AutotunerError, match="argument"):
            Trace(scheduler_spec, [("query", t(ns=0))])
        with pytest.raises(AutotunerError, match="argument"):
            Trace(scheduler_spec, [("insert", t(ns=0), None)])


class TestScorer:
    def test_static_cost_prefers_indexes_for_query_heavy_traces(self, scheduler_spec):
        ops = [("insert", t(ns=0, pid=i, state="R", cpu=0)) for i in range(10)]
        ops += [("query", t(ns=0, pid=3), None)] * 100
        profile = Trace(scheduler_spec, ops).profile()
        indexed = parse_decomposition("ns, pid -> htable {state, cpu}")
        chained = parse_decomposition("ns, pid -> dlist {state, cpu}")
        assert static_cost(indexed, profile) < static_cost(chained, profile)

    def test_memory_proxy_counts_edges_and_residuals(self):
        single = parse_decomposition("ns, pid -> htable {state, cpu}")
        branched = parse_decomposition(
            "[ns -> htable pid -> btree {state, cpu}"
            " ; state -> htable (ns, pid -> dlist {cpu})]"
        )
        # Distinct edges + residual columns per distinct leaf.
        assert memory_proxy(single) == 1 + 2
        assert memory_proxy(branched) == 4 + (2 + 1)

    def test_memory_proxy_rewards_node_sharing(self):
        """A record shared by two branches pays its residual once; the
        per-branch-copy twin pays one residual per branch."""
        shared = parse_decomposition(
            "[ns, pid -> htable (state -> htable @rec)"
            " ; state -> htable (ns, pid -> ilist @rec)] where @rec = {cpu}"
        )
        copied = parse_decomposition(
            "[ns, pid -> htable {state, cpu}"
            " ; state -> htable (ns, pid -> dlist {cpu})]"
        )
        assert memory_proxy(shared) == 4 + 1
        assert memory_proxy(copied) == 3 + (2 + 1)
        assert memory_proxy(shared) < memory_proxy(copied)

    def test_exact_accesses_is_deterministic(self, scheduler_spec):
        trace = Trace(
            scheduler_spec,
            [("insert", t(ns=0, pid=i, state="R", cpu=0)) for i in range(8)]
            + [("query", t(state="R"), "pid")] * 4,
        )
        layout = parse_decomposition("ns, pid -> htable {state, cpu}")
        assert exact_accesses(trace, layout) == exact_accesses(trace, layout)

    def test_pareto_front_drops_dominated_candidates(self, scheduler_spec):
        layout = parse_decomposition("ns, pid -> htable {state, cpu}")

        def scored(accesses, memory):
            candidate = ScoredCandidate(layout, 0.0, memory)
            candidate.accesses = accesses
            return candidate

        cheap_big = scored(100, 4)
        mid = scored(200, 2)
        dominated = scored(300, 2)  # Same memory as `mid`, more accesses.
        small = scored(400, 1)
        front = pareto_front([dominated, small, cheap_big, mid])
        assert [(c.accesses, c.memory) for c in front] == [(100, 4), (200, 2), (400, 1)]


class TestAutotune:
    def test_winner_beats_every_hand_layout(self, small_scheduler, scheduler_tuning):
        """Acceptance: the chosen layout's replayed access count is ≤ every
        hand-written layout's on the same trace (no force-include)."""
        trace = scheduler_tuning.trace
        for name, layout in small_scheduler.hand_layouts().items():
            hand = exact_accesses(trace, parse_decomposition(layout, name=name))
            assert scheduler_tuning.winner.accesses <= hand, (
                f"winner {scheduler_tuning.winner_layout!r} "
                f"({scheduler_tuning.winner.accesses} accesses) loses to hand "
                f"layout {name!r} ({hand})"
            )

    @pytest.mark.parametrize("workload_name", ["graph", "spanning"])
    def test_winner_beats_hand_layouts_other_workloads(self, workload_name):
        workload = WORKLOADS[workload_name](12)
        trace = Trace.from_workload(workload)
        result = autotune(workload.spec, trace)
        for name, layout in workload.hand_layouts().items():
            hand = exact_accesses(trace, parse_decomposition(layout, name=name))
            assert result.winner.accesses <= hand

    def test_winner_is_adequate_and_replayed(self, small_scheduler, scheduler_tuning):
        assert is_adequate(scheduler_tuning.winner_decomposition, small_scheduler.spec)
        assert scheduler_tuning.winner.accesses is not None
        assert scheduler_tuning.winner in scheduler_tuning.pareto
        assert scheduler_tuning.replayed[0] is scheduler_tuning.winner

    def test_replayed_are_sorted_and_static_ranking_kept(self, scheduler_tuning):
        accesses = [c.accesses for c in scheduler_tuning.replayed]
        assert accesses == sorted(accesses)
        statics = [c.static for c in scheduler_tuning.candidates]
        assert statics == sorted(statics)

    def test_include_forces_exact_replay(self, small_scheduler):
        trace = Trace.from_workload(small_scheduler)
        worst_hand = "ns, pid -> dlist {state, cpu}"
        result = autotune(
            small_scheduler.spec, trace, exact_top=2, include=[worst_hand]
        )
        shapes = {canonical_shape(c.decomposition) for c in result.replayed}
        assert canonical_shape(parse_decomposition(worst_hand)) in shapes
        assert len(result.replayed) == 3

    def test_candidates_scored_under_the_tuning_spec(self, scheduler_spec):
        """A trace recorded against a same-column spec with different FDs is
        scored under the spec being tuned — candidates adequate for the
        tuning spec must not be rejected against the trace's weaker spec."""
        fd_free = RelationSpec("ns, pid, state, cpu", name="process-raw")
        trace = Trace(
            fd_free,
            [("insert", t(ns=0, pid=i, state="R", cpu=0)) for i in range(6)]
            + [("query", t(ns=0, pid=3), None)] * 6,
        )
        result = autotune(scheduler_spec, trace)
        assert is_adequate(result.winner_decomposition, scheduler_spec)
        assert result.winner.accesses is not None

    def test_spec_mismatch_rejected(self, scheduler_spec):
        other = RelationSpec("a, b", name="other")
        with pytest.raises(AutotunerError, match="trace is over columns"):
            autotune(scheduler_spec, Trace(other))

    def test_describe_mentions_the_winner(self, scheduler_tuning):
        text = scheduler_tuning.describe()
        assert "winner:" in text
        assert scheduler_tuning.winner_layout in text


class TestSynthesize:
    def test_synthesize_returns_equivalent_compiled_class(self, small_scheduler):
        trace = Trace.from_workload(small_scheduler)
        cls = synthesize(small_scheduler.spec, trace)
        assert isinstance(cls, type) and issubclass(cls, RelationInterface)
        assert cls.TUNING.winner_layout == cls.DECOMPOSITION.describe()
        # The synthesized class replays the originating trace to the same
        # final relation as the reference oracle.
        tuned = trace.replay(cls())
        oracle = trace.replay(ReferenceRelation(small_scheduler.spec))
        assert tuned.to_relation() == oracle.to_relation()
