"""Tests for ``repro.live``: the LiveRelation facade, the sampler, the
re-tune loop, α-migration (synchronous and dual-write), and the unified
``repro.open`` factory.

The headline property is the ISSUE-6 acceptance differential: a seeded
1000-operation drifting workload driven through ``repro.open(spec,
live=True)`` triggers an automatic re-tune, hot-swaps the compiled backing
class, and the facade's contents match a ``ReferenceRelation`` mirror after
every single operation — FD-on and FD-off.
"""

import math
import random
import threading

import pytest

import repro
from repro import (
    LiveRelation,
    ReferenceRelation,
    RelationInterface,
    RelationSpec,
    RetunePolicy,
    SamplingTraceRecorder,
    Trace,
    TraceRecorder,
    compile_relation,
    open_relation,
    parse_decomposition,
    t,
)
from repro.codegen import clear_codegen_cache, codegen_cache_stats
from repro.core.errors import FunctionalDependencyError, LiveRelationError
from repro.core.tuples import Tuple
from repro.decomposition import DecomposedRelation
from repro.live import default_layout

EDGE_SPEC = RelationSpec("src, dst, weight", fds=["src, dst -> weight"], name="edge")
FORWARD_LAYOUT = "src -> htable (dst -> htable {weight})"


def drifting_workload(n_ops=1000, seed=7, fd_off=False):
    """A seeded workload whose query mix flips from {src} to {dst} mid-run.

    With ``fd_off``, re-inserts of an existing (src, dst) pair carry a fresh
    weight, exercising last-writer-wins eviction across the hot-swap.
    """
    rng = random.Random(seed)
    ops = []
    for i in range(n_ops):
        phase_forward = i < n_ops // 2
        roll = rng.random()
        if roll < 0.3:
            s, d = rng.randrange(12), rng.randrange(12)
            weight = rng.randrange(1000) if fd_off else s * 100 + d
            ops.append(("insert", t(src=s, dst=d, weight=weight)))
        elif roll < 0.35:
            ops.append(("remove", t(src=rng.randrange(12), dst=rng.randrange(12))))
        elif roll < 0.4:
            ops.append(
                ("update", t(src=rng.randrange(12), dst=rng.randrange(12)),
                 t(weight=rng.randrange(1000)))
            )
        elif phase_forward:
            ops.append(("query", t(src=rng.randrange(12)), None))
        else:
            ops.append(("query", t(dst=rng.randrange(12)), None))
    return ops


def apply_op(relation, op):
    kind = op[0]
    if kind == "insert":
        relation.insert(op[1])
    elif kind == "remove":
        relation.remove(op[1])
    elif kind == "update":
        relation.update(op[1], op[2])
    else:
        return relation.query(op[1], op[2])


# -- the sampler -----------------------------------------------------------------


class TestSamplingTraceRecorder:
    def test_bounded_and_ordered(self):
        sampler = SamplingTraceRecorder(capacity=8, horizon=64, window=16, seed=1)
        for i in range(500):
            sampler.observe(("insert", t(src=i, dst=i, weight=i)))
        sampled = sampler.sampled_operations()
        assert len(sampled) == 8  # never exceeds capacity
        indices = [op[1]["src"] for op in sampled]
        assert indices == sorted(indices)  # arrival order restored

    def test_decay_keeps_recent_operations_reachable(self):
        # With the horizon floor, late operations keep a capacity/horizon
        # inclusion chance; over a long tail some must displace early ones.
        sampler = SamplingTraceRecorder(capacity=16, horizon=64, window=16, seed=3)
        for i in range(5000):
            sampler.observe(("insert", t(src=i, dst=0, weight=0)))
        newest = max(op[1]["src"] for op in sampler.sampled_operations())
        assert newest > 1000  # plain reservoir over 5000 ops would rarely keep these

    def test_drift_is_total_variation(self):
        sampler = SamplingTraceRecorder(capacity=8, horizon=64, window=100, seed=0)
        assert math.isinf(sampler.drift())  # no baseline yet
        for _ in range(100):
            sampler.observe(("query", t(src=1), None))
        sampler.rebase()
        assert sampler.drift() == 0.0
        for _ in range(50):
            sampler.observe(("query", t(dst=1), None))
        # Window now 50/50 {src}/{dst} vs baseline 100% {src}: TV = 0.5.
        assert sampler.drift() == pytest.approx(0.5)

    def test_determinism(self):
        ops = drifting_workload(200)
        a = SamplingTraceRecorder(seed=5)
        b = SamplingTraceRecorder(seed=5)
        for op in ops:
            a.observe(op)
            b.observe(op)
        assert a.sampled_operations() == b.sampled_operations()
        assert a.recent_mix() == b.recent_mix()

    def test_rejects_bad_parameters(self):
        with pytest.raises(LiveRelationError):
            SamplingTraceRecorder(capacity=0)
        with pytest.raises(LiveRelationError):
            SamplingTraceRecorder(capacity=16, horizon=8)


# -- the acceptance differential --------------------------------------------------


@pytest.mark.parametrize("enforce_fds", [True, False], ids=["fd-on", "fd-off"])
def test_drift_differential_across_hot_swap(enforce_fds):
    """Contents match the oracle after every op of a seeded 1000-op
    drifting run, across automatic re-tune + hot-swap (ISSUE 6 acceptance)."""
    live = open_relation(
        EDGE_SPEC,
        FORWARD_LAYOUT,
        live=True,
        enforce_fds=enforce_fds,
        policy={"min_ops": 150, "drift_threshold": 0.25},
        sampler=SamplingTraceRecorder(seed=11),
    )
    mirror = ReferenceRelation(EDGE_SPEC, enforce_fds=enforce_fds)
    initial_backing = type(live.backing)
    for op in drifting_workload(1000, fd_off=not enforce_fds):
        try:
            expected = apply_op(mirror, op)
        except Exception as exc:  # FD violation: both tiers must refuse alike
            with pytest.raises(type(exc)):
                apply_op(live, op)
            continue
        got = apply_op(live, op)
        if op[0] == "query":
            assert sorted(got, key=Tuple.sort_key) == sorted(expected, key=Tuple.sort_key)
        assert live.to_relation() == mirror.to_relation()
    # The drift must actually have re-tuned and swapped the compiled class.
    assert live.generation >= 1
    assert any(r.swapped for r in live.retunes)
    assert type(live.backing) is not initial_backing
    assert type(live.backing).__mro__  # a compiled class, still a real type
    assert isinstance(live.backing, RelationInterface)
    live.check_well_formed()


def test_automatic_retune_flips_to_reverse_layout():
    """The drifted tail ({dst} queries) must pull in a dst-keyed layout."""
    live = open_relation(
        EDGE_SPEC,
        FORWARD_LAYOUT,
        live=True,
        policy={"min_ops": 150, "drift_threshold": 0.25},
        sampler=SamplingTraceRecorder(seed=11),
    )
    for op in drifting_workload(1000):
        try:
            apply_op(live, op)
        except FunctionalDependencyError:
            pass  # updates make some later re-inserts conflict; not under test
    assert live.generation >= 1
    layout = live.backing_layout()
    assert "dst -> htable" in layout


# -- explicit retune + migration --------------------------------------------------


class TestRetune:
    def make_live(self, **policy):
        policy.setdefault("auto", False)
        live = open_relation(EDGE_SPEC, FORWARD_LAYOUT, live=True, policy=policy)
        for i in range(40):
            s, d = divmod(i, 8)
            live.insert(t(src=s, dst=d, weight=i))
        return live

    def test_noop_when_layout_already_optimal(self):
        live = self.make_live()
        for _ in range(200):
            live.query(t(src=3), None)
        report = live.retune()
        assert not report.swapped
        assert live.generation == 0
        assert report.new_layout == report.old_layout
        assert report.tuning is not None  # the autotuner did run

    def test_swap_preserves_contents_and_counts_migrated_rows(self):
        live = self.make_live()
        for _ in range(200):
            live.query(t(dst=3), None)
        before = live.to_relation()
        report = live.retune()
        assert report.swapped
        assert report.migrated == len(before.tuples)
        assert live.to_relation() == before
        assert live.generation == 1
        assert report.generation == 1

    def test_retune_resets_drift_baseline(self):
        live = self.make_live()
        for _ in range(100):
            live.query(t(dst=3), None)
        live.retune()
        assert live.sampler.drift() == 0.0
        assert live.live_stats()["ops_since_tune"] == 0

    def test_dual_write_window_with_concurrent_mutations(self):
        live = self.make_live(migrate_batch=3)
        for _ in range(100):
            live.query(t(dst=3), None)
        report = live.retune(dual_write=True)
        assert not report.swapped  # window still open
        assert live.live_stats()["migration_open"]
        mirror = ReferenceRelation(EDGE_SPEC)
        for tup in live.to_relation().tuples:
            mirror.insert(tup)
        # Mutations land while rows are still being copied: each observed
        # operation pumps migrate_batch more rows across.
        mutations = [
            ("insert", t(src=9, dst=9, weight=999)),
            ("remove", t(src=0, dst=0)),
            ("update", t(src=0, dst=1), t(weight=-5)),
            ("insert", t(src=9, dst=8, weight=998)),
            ("remove", t(src=1)),
        ]
        for op in mutations:
            apply_op(live, op)
            apply_op(mirror, op)
            assert live.to_relation() == mirror.to_relation()
        live.finish_migration()
        assert report.swapped
        assert report.dual_write
        assert live.generation == 1
        assert live.to_relation() == mirror.to_relation()
        live.check_well_formed()

    def test_retune_refused_while_window_open(self):
        live = self.make_live(migrate_batch=1)
        for _ in range(60):
            live.query(t(dst=3), None)
        live.retune(dual_write=True)
        with pytest.raises(LiveRelationError):
            live.retune()
        live.finish_migration()
        live.retune()  # fine again once drained

    def test_dual_write_threshold_routes_large_instances(self):
        live = self.make_live(dual_write_threshold=10)  # 40 rows >= 10
        for _ in range(100):
            live.query(t(dst=3), None)
        report = live.retune()  # dual_write not forced: policy decides
        live.finish_migration()
        assert report.dual_write
        assert report.swapped


# -- the facade contract -----------------------------------------------------------


class TestFacadeContract:
    def test_inspection_is_not_sampled(self):
        live = open_relation(EDGE_SPEC, FORWARD_LAYOUT, live=True, policy={"auto": False})
        live.insert(t(src=1, dst=2, weight=3))
        seen = live.sampler.seen
        len(live), list(live), (t(src=1, dst=2, weight=3) in live)
        live.to_relation()
        assert live.sampler.seen == seen

    def test_wraps_any_tier(self):
        for backing in (
            ReferenceRelation(EDGE_SPEC),
            DecomposedRelation(EDGE_SPEC, FORWARD_LAYOUT),
            compile_relation(EDGE_SPEC, parse_decomposition(FORWARD_LAYOUT))(),
        ):
            live = LiveRelation(backing, policy={"auto": False})
            live.insert(t(src=1, dst=2, weight=3))
            assert len(live) == 1
            # Compiled classes reconstruct their spec literally in the
            # generated module, so compare by value, not identity.
            assert live.spec == EDGE_SPEC

    def test_rejects_backing_without_spec(self):
        with pytest.raises(LiveRelationError):
            LiveRelation(object())

    def test_policy_coercion(self):
        assert RetunePolicy.coerce(None).auto
        policy = RetunePolicy(auto=False)
        assert RetunePolicy.coerce(policy) is policy
        assert RetunePolicy.coerce({"min_ops": 7}).min_ops == 7
        with pytest.raises(LiveRelationError):
            RetunePolicy.coerce("eager")
        with pytest.raises(LiveRelationError):
            RetunePolicy(min_ops=0)
        with pytest.raises(LiveRelationError):
            RetunePolicy(drift_threshold=0.0)


# -- the unified factory -----------------------------------------------------------


class TestOpenFactory:
    def test_tiers(self):
        layout = FORWARD_LAYOUT
        ref = repro.open(EDGE_SPEC, layout, tier="reference")
        interp = repro.open(EDGE_SPEC, layout, tier="interpreted")
        compiled = repro.open(EDGE_SPEC, layout, tier="compiled")
        auto = repro.open(EDGE_SPEC, layout)
        assert isinstance(ref, ReferenceRelation)
        assert isinstance(interp, DecomposedRelation)
        assert type(compiled).__name__.startswith("Compiled")
        assert type(auto) is type(compiled)  # auto == compiled, same cache entry
        for r in (ref, interp, compiled):
            assert isinstance(r, RelationInterface)

    def test_default_layout_is_adequate_everywhere(self):
        for spec in (
            EDGE_SPEC,
            RelationSpec("ns, pid, state, cpu", fds=["ns, pid -> state, cpu"]),
            RelationSpec("a, b"),  # no FDs: the key is the full column set
        ):
            layout = default_layout(spec)
            r = repro.open(spec, tier="interpreted")
            assert parse_decomposition(layout) is not None
            row = {c: 1 for c in spec.columns}
            r.insert(t(**row))
            assert len(r) == 1

    def test_tune_runs_the_autotuner(self):
        trace = Trace(EDGE_SPEC, name="tuned")
        for i in range(30):
            s, d = divmod(i, 6)
            trace.record("insert", t(src=s, dst=d, weight=i))
        for _ in range(120):
            trace.record("query", t(dst=3), None)
        r = repro.open(EDGE_SPEC, tune=trace)
        assert "dst -> htable" in type(r).DECOMPOSITION.describe()

    def test_tune_with_layout_includes_it_as_baseline(self):
        trace = Trace(EDGE_SPEC, name="tuned")
        for i in range(10):
            trace.record("insert", t(src=i, dst=i, weight=i))
        r = repro.open(EDGE_SPEC, FORWARD_LAYOUT, tune=trace, tier="interpreted")
        assert isinstance(r, DecomposedRelation)

    def test_enforce_fds_propagates(self):
        for tier in ("reference", "interpreted", "compiled"):
            r = repro.open(EDGE_SPEC, FORWARD_LAYOUT, tier=tier, enforce_fds=False)
            r.insert(t(src=1, dst=2, weight=3))
            r.insert(t(src=1, dst=2, weight=4))  # evicts, does not raise
            assert r.count(t(src=1, dst=2)) == 1

    def test_rejects_bad_arguments(self):
        with pytest.raises(LiveRelationError):
            repro.open(EDGE_SPEC, tier="warp")
        with pytest.raises(LiveRelationError):
            repro.open(EDGE_SPEC, tune=Trace(EDGE_SPEC), sizes={})

    def test_open_is_open_relation(self):
        assert repro.open is open_relation


# -- cross-tier interface conformance (ISSUE 6 satellite) --------------------------


class TestInterfaceConformance:
    def all_tiers(self):
        compiled_cls = compile_relation(EDGE_SPEC, parse_decomposition(FORWARD_LAYOUT))
        tiers = [
            ReferenceRelation(EDGE_SPEC),
            DecomposedRelation(EDGE_SPEC, FORWARD_LAYOUT),
            compiled_cls(),
        ]
        tiers.append(TraceRecorder(compiled_cls()))
        tiers.append(LiveRelation(compiled_cls(), policy={"auto": False}))
        return tiers

    def test_compiled_is_a_real_subclass(self):
        cls = compile_relation(EDGE_SPEC, parse_decomposition(FORWARD_LAYOUT))
        assert issubclass(cls, RelationInterface)

    def test_dunders_agree_across_tiers(self):
        rows = [t(src=s, dst=d, weight=s * 10 + d) for s in range(3) for d in range(3)]
        present, absent = rows[0], t(src=9, dst=9, weight=0)
        for tier in self.all_tiers():
            for row in rows:
                tier.insert(row)
            assert len(tier) == len(rows)
            assert sorted(iter(tier), key=Tuple.sort_key) == sorted(rows, key=Tuple.sort_key)
            assert present in tier
            assert absent not in tier
            assert t(src=1) in tier  # partial patterns work in all tiers
            assert "not-a-pattern" not in tier
            assert isinstance(tier, RelationInterface)

    def test_len_is_constant_time_on_reference(self):
        # The base class counts via a full query; the override must not.
        ref = ReferenceRelation(EDGE_SPEC)
        ref.insert(t(src=1, dst=2, weight=3))
        ref._tuples = frozenset(ref._tuples)  # query() would need .extends scans
        assert len(ref) == 1


# -- codegen cache thread-safety (ISSUE 6 satellite) -------------------------------


class TestCacheThreadSafety:
    def test_clear_while_swap_in_flight(self):
        """clear/stats racing compile_relation (as a LiveRelation swap does)
        must neither corrupt the cache nor lose the same-class guarantee."""
        clear_codegen_cache()
        spec = RelationSpec("a, b, c", fds=["a -> b, c"], name="racy")
        layouts = [
            "a -> htable {b, c}",
            "b -> htable (a -> htable {c})",
            "c -> htable (a -> htable {b})",
        ]
        errors = []
        stop = threading.Event()

        def compiler(layout):
            try:
                for _ in range(30):
                    # A clear may land between any two statements here; the
                    # class returned must always be complete and functional.
                    cls = compile_relation(spec, parse_decomposition(layout))
                    r = cls()
                    r.insert(t(a=1, b=2, c=3))
                    assert len(r) == 1
                    assert r.to_relation().tuples == {t(a=1, b=2, c=3)}
            except Exception as exc:  # pragma: no cover - only on failure
                errors.append(exc)

        def clearer():
            while not stop.is_set():
                clear_codegen_cache()
                stats = codegen_cache_stats()
                assert set(stats) == {"hits", "misses", "size"}

        threads = [threading.Thread(target=compiler, args=(lay,)) for lay in layouts]
        churn = threading.Thread(target=clearer)
        churn.start()
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join()
        stop.set()
        churn.join()
        assert not errors
        clear_codegen_cache()

    def test_concurrent_same_key_compiles_share_one_class(self):
        """Racing compiles of one key resolve to a single class object
        (the insert re-checks under the lock and adopts the winner)."""
        clear_codegen_cache()
        spec = RelationSpec("a, b, c", fds=["a -> b, c"], name="samekey")
        layout = "a -> htable {b, c}"
        barrier = threading.Barrier(4)
        results = []

        def compiler():
            barrier.wait()
            results.append(compile_relation(spec, parse_decomposition(layout)))

        threads = [threading.Thread(target=compiler) for _ in range(4)]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join()
        assert len(results) == 4
        assert all(cls is results[0] for cls in results)
        assert codegen_cache_stats()["size"] == 1
        clear_codegen_cache()

    def test_live_swap_during_cache_churn(self):
        clear_codegen_cache()
        live = open_relation(EDGE_SPEC, FORWARD_LAYOUT, live=True, policy={"auto": False})
        for i in range(30):
            s, d = divmod(i, 6)
            live.insert(t(src=s, dst=d, weight=i))
        for _ in range(120):
            live.query(t(dst=2), None)
        before = live.to_relation()
        stop = threading.Event()

        def churn():
            while not stop.is_set():
                clear_codegen_cache()

        thread = threading.Thread(target=churn)
        thread.start()
        try:
            report = live.retune()
        finally:
            stop.set()
            thread.join()
        assert report.swapped
        assert live.to_relation() == before
        clear_codegen_cache()
