"""Shared sub-nodes across branches (Section 3) — end-to-end coverage.

The tentpole guarantees, each pinned here:

* the parser/formatter round-trips node sharing by **object identity**
  (``@name`` references + ``where`` clause);
* adequacy types shared decompositions once per ``(node, bound)`` pair and
  rejects shared nodes reached with inconsistent bound sets;
* instances materialise **one** record object per binding, reachable from
  every parent edge, with intrusive O(1) unlink on removal (the
  ``OperationCounter`` asymptotics tests);
* the planner knows converging branches land on the same record;
* the compiled tier lowers sharing to genuinely shared cells with unrolled
  constant-time unlink, and a 1000-op seeded differential run keeps all
  three tiers in lockstep (FDs enforced and FD-off);
* the autotuner enumerates shared candidates and proposes ``ilist`` only
  where a parent holds the record by reference.
"""

import random

import pytest

from repro.autotuner import Trace, enumerate_decompositions, exact_accesses
from repro.codegen import compile_relation
from repro.core import ReferenceRelation, Tuple, t
from repro.core.errors import (
    FunctionalDependencyError,
    ParseError,
    WellFormednessError,
)
from repro.decomposition import (
    DecomposedRelation,
    DecompNode,
    MapEdge,
    adequacy_problems,
    converging_plans,
    enforced_fds,
    is_adequate,
    parse_decomposition,
    plan_query,
)
from repro.structures import COUNTER

#: The paper's shared scheduler: one process record reached from both the
#: primary-key index and the per-state lists, unlinked in O(1) via ilist.
SHARED = (
    "[ns, pid -> htable (state -> htable @rec)"
    " ; state -> htable (ns, pid -> ilist @rec)] where @rec = {cpu}"
)
#: The per-branch-copy twin: same indexes, one record copy per branch.
COPIED = "[ns, pid -> htable {state, cpu} ; state -> htable (ns, pid -> dlist {cpu})]"

NS_DOMAIN = [0, 1, 2]
PID_DOMAIN = [0, 1, 2, 3]
STATE_DOMAIN = ["R", "S", "W"]
CPU_DOMAIN = [0, 1]
COLUMNS = ("ns", "pid", "state", "cpu")
DOMAINS = {"ns": NS_DOMAIN, "pid": PID_DOMAIN, "state": STATE_DOMAIN, "cpu": CPU_DOMAIN}


def random_full_tuple(rng: random.Random) -> Tuple:
    return Tuple({c: rng.choice(DOMAINS[c]) for c in COLUMNS})


def random_pattern(rng: random.Random, max_columns: int = 3) -> Tuple:
    chosen = rng.sample(COLUMNS, k=rng.randint(0, max_columns))
    return Tuple({c: rng.choice(DOMAINS[c]) for c in chosen})


def shared_record_instance(relation, ns, pid, state):
    """Navigate both branches of a SHARED-layout instance to the record."""
    inst = relation.instance
    via_pk = inst.root.containers[0].lookup(Tuple(ns=ns, pid=pid)).containers[0].lookup(
        Tuple(state=state)
    )
    via_state = inst.root.containers[1].lookup(Tuple(state=state)).containers[0].lookup(
        Tuple(ns=ns, pid=pid)
    )
    return via_pk, via_state


class TestParserSharing:
    def test_references_resolve_to_one_object(self):
        d = parse_decomposition(SHARED)
        rec_a = d.root.edges[0].child.edges[0].child
        rec_b = d.root.edges[1].child.edges[0].child
        assert rec_a is rec_b
        assert d.shared_nodes() == [rec_a]

    def test_format_emits_each_shared_node_once(self):
        d = parse_decomposition(SHARED)
        text = d.describe()
        assert text.count("{cpu}") == 1  # The record body appears once.
        assert "where" in text and "@s0" in text

    def test_round_trip_preserves_identity(self):
        """parse(format(d)) must preserve sharing by object identity — the
        pre-fix formatter duplicated shared subtrees, so the reparse held
        two separate record nodes."""
        shared = DecompNode(unit_columns="cpu")
        root = DecompNode(
            edges=(
                MapEdge("ns, pid", "htable", DecompNode(edges=(MapEdge("state", "htable", shared),))),
                MapEdge("state", "htable", DecompNode(edges=(MapEdge("ns, pid", "ilist", shared),))),
            )
        )
        from repro.decomposition import Decomposition

        d = Decomposition(root, name="shared")
        again = parse_decomposition(d.describe())
        assert len(again.nodes()) == len(d.nodes())
        rec_a = again.root.edges[0].child.edges[0].child
        rec_b = again.root.edges[1].child.edges[0].child
        assert rec_a is rec_b

    def test_plain_layouts_have_no_where_clause(self):
        d = parse_decomposition(COPIED)
        assert "where" not in d.describe()
        assert parse_decomposition(d.describe()).describe() == d.describe()

    def test_undefined_reference_rejected(self):
        with pytest.raises(ParseError, match="undefined shared node"):
            parse_decomposition("ns, pid -> htable @rec")

    def test_duplicate_definition_rejected(self):
        with pytest.raises(ParseError, match="defined twice"):
            parse_decomposition(
                "ns, pid -> htable @a where @a = {state, cpu} ; @a = {cpu, state}"
            )

    def test_empty_where_clause_rejected(self):
        with pytest.raises(ParseError, match="at least one"):
            parse_decomposition("ns, pid -> htable {state, cpu} where")

    def test_forward_reference_rejected(self):
        with pytest.raises(ParseError, match="defined before"):
            parse_decomposition(
                "a -> htable @x where @x = b -> htable @y ; @y = {c}"
            )

    def test_definitions_may_reference_earlier_names(self):
        d = parse_decomposition(
            "[a -> htable @x ; b -> htable @x] where @y = {c} ; @x = b2 -> htable @y"
        )
        # @x is shared; @y has one parent inside the @x definition.
        assert len(d.shared_nodes()) == 1


class TestAdequacySharing:
    def test_shared_scheduler_is_adequate(self, scheduler_spec):
        assert is_adequate(parse_decomposition(SHARED), scheduler_spec)

    def test_inconsistent_bound_sets_rejected(self, scheduler_spec):
        # The record is reached with {ns, pid, state} on one branch and
        # {ns, pid} on the other: no single type B ▷ C.
        d = parse_decomposition(
            "[ns, pid, state -> htable @rec ; ns, pid -> htable @rec]"
            " where @rec = {cpu}"
        )
        problems = adequacy_problems(d, scheduler_spec)
        assert any("single type" in p for p in problems)

    def test_shared_leaf_contributes_one_enforced_fd(self, scheduler_spec):
        fds = list(enforced_fds(parse_decomposition(SHARED)))
        assert len(fds) == 1
        (fd,) = fds
        assert fd.lhs == frozenset({"ns", "pid", "state"})
        assert fd.rhs == frozenset({"cpu"})

    def test_node_bounds_visits_shared_nodes_once(self):
        d = parse_decomposition(SHARED)
        (rec,) = d.shared_nodes()
        assert d.node_bounds()[id(rec)] == [frozenset({"ns", "pid", "state"})]
        assert d.shared_bound(rec) == frozenset({"ns", "pid", "state"})


class TestInstanceSharing:
    def test_one_record_object_reachable_from_both_branches(self, scheduler_spec):
        relation = DecomposedRelation(scheduler_spec, SHARED)
        relation.insert(t(ns=1, pid=2, state="R", cpu=0))
        via_pk, via_state = shared_record_instance(relation, 1, 2, "R")
        assert via_pk is via_state
        assert via_pk.unit_value == Tuple(cpu=0)

    def test_registry_empties_with_the_relation(self, scheduler_spec):
        relation = DecomposedRelation(scheduler_spec, SHARED)
        for pid in range(8):
            relation.insert(t(ns=0, pid=pid, state="R", cpu=0))
        relation.remove(None)
        assert relation.is_empty()
        (registry,) = relation.instance._shared.values()
        assert registry == {}
        relation.check_well_formed()

    def test_well_formedness_detects_broken_sharing(self, scheduler_spec):
        from repro.decomposition import NodeInstance

        relation = DecomposedRelation(scheduler_spec, SHARED)
        relation.insert(t(ns=1, pid=2, state="R", cpu=0))
        # Replace the state-branch entry with a same-valued copy: α still
        # agrees, but the sharing invariant is gone.
        state_node = relation.instance.root.containers[1].lookup(Tuple(state="R"))
        (rec_node,) = relation.decomposition.shared_nodes()
        clone = NodeInstance(rec_node)
        clone.unit_value = Tuple(cpu=0)
        state_node.containers[0].insert(Tuple(ns=1, pid=2), clone)
        with pytest.raises(WellFormednessError, match="sharing invariant"):
            relation.check_well_formed()

    def test_interpreted_unlink_is_constant_time(self, scheduler_spec):
        def remove_cost(layout, n):
            relation = DecomposedRelation(scheduler_spec, layout)
            for pid in range(n):
                relation.insert(t(ns=0, pid=pid, state="R", cpu=0))
            with COUNTER as counter:
                relation.remove(Tuple(ns=0, pid=n - 1))
                return counter.accesses

        shared_small, shared_large = remove_cost(SHARED, 32), remove_cost(SHARED, 256)
        copied_small, copied_large = remove_cost(COPIED, 32), remove_cost(COPIED, 256)
        # Shared: O(1) — independent of the state list length (small slack
        # for hash-chain jitter).
        assert shared_large <= shared_small + 4
        # Copied: genuinely linear in the per-state list.
        assert copied_large >= 4 * copied_small
        assert shared_large < copied_large

    def test_update_through_shared_records(self, scheduler_spec):
        relation = DecomposedRelation(scheduler_spec, SHARED)
        reference = ReferenceRelation(scheduler_spec)
        for r in (relation, reference):
            r.insert(t(ns=0, pid=1, state="R", cpu=0))
            r.insert(t(ns=0, pid=2, state="R", cpu=1))
            r.update(Tuple(state="R"), Tuple(state="S"))
        assert relation.to_relation() == reference.to_relation()
        relation.check_well_formed()


class TestPlannerSharing:
    def test_plans_know_the_leaf_is_shared(self, scheduler_spec):
        d = parse_decomposition(SHARED)
        assert plan_query(d, "ns, pid").leaf_shared
        assert not plan_query(parse_decomposition(COPIED), "ns, pid").leaf_shared

    def test_converging_plans_are_lookup_only_and_land_on_one_leaf(self):
        d = parse_decomposition(SHARED)
        plans = converging_plans(d, "ns, pid, state")
        assert len(plans) == 2
        (rec,) = d.shared_nodes()
        for plan in plans:
            assert plan.scan_count == 0
            assert plan.leaf_shared
            assert plan.path.leaf is rec  # The identity the join degenerates to.

    def test_converging_plans_require_the_full_bound_set(self):
        d = parse_decomposition(SHARED)
        assert converging_plans(d, "ns, pid") == []

    def test_converging_plans_yield_identical_results(self, scheduler_spec):
        from repro.decomposition import execute_plan

        relation = DecomposedRelation(scheduler_spec, SHARED)
        relation.insert(t(ns=1, pid=2, state="R", cpu=0))
        pattern = Tuple(ns=1, pid=2, state="R")
        results = [
            list(execute_plan(plan, relation.instance, pattern))
            for plan in converging_plans(relation.decomposition, pattern.columns)
        ]
        assert results[0] == results[1] == [t(ns=1, pid=2, state="R", cpu=0)]


class TestCompiledSharing:
    def test_compiled_unlink_is_constant_time(self, scheduler_spec):
        def remove_cost(layout, name, n):
            cls = compile_relation(scheduler_spec, layout, class_name=name)
            relation = cls()
            for pid in range(n):
                relation.insert(t(ns=0, pid=pid, state="R", cpu=0))
            with COUNTER as counter:
                relation.remove(Tuple(ns=0, pid=n - 1))
                return counter.accesses

        shared_small = remove_cost(SHARED, "CSharedS", 32)
        shared_large = remove_cost(SHARED, "CSharedL", 256)
        copied_small = remove_cost(COPIED, "CCopiedS", 32)
        copied_large = remove_cost(COPIED, "CCopiedL", 256)
        assert shared_large <= shared_small + 4
        assert copied_large >= 4 * copied_small
        assert shared_large < copied_large

    def test_compiled_well_formedness_checks_the_registry(self, scheduler_spec):
        cls = compile_relation(scheduler_spec, SHARED, class_name="CShWf")
        relation = cls()
        relation.insert(t(ns=1, pid=2, state="R", cpu=0))
        relation.check_well_formed()
        # Replace the state-branch entry with an equal-valued copy.
        relation._root[1]["R"][(1, 2)] = [0]
        with pytest.raises(WellFormednessError, match="sharing invariant"):
            relation.check_well_formed()

    def test_compiled_registry_tracks_rows(self, scheduler_spec):
        cls = compile_relation(scheduler_spec, SHARED, class_name="CShReg")
        relation = cls()
        relation.insert(t(ns=1, pid=2, state="R", cpu=0))
        relation._s0.clear()  # Simulate a stale registry.
        with pytest.raises(WellFormednessError, match="registry"):
            relation.check_well_formed()


class TestSharedDifferential:
    def test_differential_1000_ops_three_tiers(self, scheduler_spec):
        """FD-respecting sequences: reference vs interpreted vs compiled in
        lockstep on the shared scheduler layout, α checked after every op."""
        rng = random.Random(20110604)  # PLDI 2011 started June 4th.
        reference = ReferenceRelation(scheduler_spec)
        decomposed = DecomposedRelation(scheduler_spec, SHARED)
        compiled = compile_relation(scheduler_spec, SHARED, class_name="CShDiff")()
        tiers = (reference, decomposed, compiled)

        def apply_all(op):
            outcomes = []
            for relation in tiers:
                try:
                    op(relation)
                    outcomes.append(None)
                except FunctionalDependencyError as error:
                    outcomes.append(error)
            assert len({o is None for o in outcomes}) == 1, (
                f"tiers disagree on FD enforcement: {outcomes!r}"
            )

        for step in range(1000):
            roll = rng.random()
            if roll < 0.45:
                tup = random_full_tuple(rng)
                apply_all(lambda r: r.insert(tup))
            elif roll < 0.65:
                pattern = random_pattern(rng)
                apply_all(lambda r: r.remove(pattern))
            elif roll < 0.85:
                pattern = random_pattern(rng, max_columns=2)
                changes = random_pattern(rng, max_columns=2)
                apply_all(lambda r: r.update(pattern, changes))
            else:
                pattern = random_pattern(rng)
                output = rng.sample(COLUMNS, k=rng.randint(1, 4))
                expected = set(reference.query(pattern, output))
                assert set(decomposed.query(pattern, output)) == expected
                assert set(compiled.query(pattern, output)) == expected

            oracle = reference.to_relation()
            assert decomposed.to_relation() == oracle, f"interpreted diverged at {step}"
            assert compiled.to_relation() == oracle, f"compiled diverged at {step}"
            if step % 100 == 0 or step == 999:
                decomposed.check_well_formed()
                compiled.check_well_formed()
                assert oracle.satisfies(scheduler_spec.fds)

    def test_differential_1000_ops_fd_off_three_tiers(self, scheduler_spec):
        """FD-*violating* sequences with enforcement off: last-writer-wins
        eviction must flow through the shared records identically in every
        tier (the FD-off eviction path unlinks through shared nodes)."""
        rng = random.Random(20110608)  # PLDI 2011 ended June 8th.
        reference = ReferenceRelation(scheduler_spec, enforce_fds=False)
        decomposed = DecomposedRelation(scheduler_spec, SHARED, enforce_fds=False)
        compiled = compile_relation(scheduler_spec, SHARED, class_name="CShOff")(
            enforce_fds=False
        )
        tiers = (reference, decomposed, compiled)

        for step in range(1000):
            roll = rng.random()
            if roll < 0.5:
                tup = random_full_tuple(rng)
                for relation in tiers:
                    relation.insert(tup)
            elif roll < 0.65:
                pattern = random_pattern(rng)
                for relation in tiers:
                    relation.remove(pattern)
            elif roll < 0.85:
                pattern = random_pattern(rng, max_columns=2)
                changes = random_pattern(rng, max_columns=2)
                for relation in tiers:
                    relation.update(pattern, changes)
            else:
                pattern = random_pattern(rng)
                output = rng.sample(COLUMNS, k=rng.randint(1, 4))
                expected = set(reference.query(pattern, output))
                assert set(decomposed.query(pattern, output)) == expected
                assert set(compiled.query(pattern, output)) == expected

            oracle = reference.to_relation()
            assert decomposed.to_relation() == oracle, f"interpreted diverged at {step}"
            assert compiled.to_relation() == oracle, f"compiled diverged at {step}"
            if step % 100 == 0 or step == 999:
                decomposed.check_well_formed()
                compiled.check_well_formed()
                assert oracle.satisfies(scheduler_spec.fds)


class TestAutotunerSharing:
    def test_enumerator_emits_shared_candidates(self, scheduler_spec):
        candidates = enumerate_decompositions(
            scheduler_spec, [frozenset({"ns", "pid"}), frozenset({"state"})]
        )
        shared = [d for d in candidates if d.shared_nodes()]
        assert shared, "no shared-node candidates enumerated"
        with_ilist = [
            d
            for d in shared
            if any(e.structure == "ilist" for node in d.nodes() for e in node.edges)
        ]
        assert with_ilist, "no shared candidate proposes ilist"

    def test_ilist_only_proposed_into_shared_nodes(self, scheduler_spec):
        candidates = enumerate_decompositions(
            scheduler_spec, [frozenset({"ns", "pid"}), frozenset({"state"})]
        )
        for d in candidates:
            shared_ids = {id(node) for node in d.shared_nodes()}
            for node in d.nodes():
                for e in node.edges:
                    if e.structure == "ilist":
                        assert id(e.child) in shared_ids, d.describe()

    def test_shared_extras_respect_the_caller_structure_list(self, scheduler_spec):
        """A caller-supplied structure list is a hard allowlist: the
        shared-edge extras must not smuggle ilist past it."""
        candidates = enumerate_decompositions(
            scheduler_spec, [frozenset({"state"})], structures=["htable"]
        )
        used = {
            e.structure for d in candidates for node in d.nodes() for e in node.edges
        }
        assert used == {"htable"}
        # The default list allows ilist, so shared candidates do offer it.
        assert any(d.shared_nodes() for d in candidates)

    def test_ilist_matches_dlist_on_ordinary_edges(self, scheduler_spec):
        """The enumerator collapses ilist into dlist's cost class for
        non-shared edges; that is only sound if their replayed access
        counts actually coincide there — the O(1) unlink advantage must
        flow exclusively through the shared record-by-reference path."""
        ops = [("insert", t(ns=0, pid=pid, state="R", cpu=0)) for pid in range(20)]
        ops += [("remove", Tuple(ns=0, pid=pid)) for pid in reversed(range(20))]
        trace = Trace(scheduler_spec, ops)
        costs = {
            name: exact_accesses(
                trace, parse_decomposition(f"ns, pid -> {name} {{state, cpu}}")
            )
            for name in ("dlist", "ilist")
        }
        assert costs["dlist"] == costs["ilist"]

    def test_shared_layout_beats_copy_on_remove_heavy_trace(self, scheduler_spec):
        rng = random.Random(3)
        ops = [
            ("insert", t(ns=0, pid=pid, state="R", cpu=0)) for pid in range(40)
        ]
        for _ in range(200):
            pid = rng.randrange(40)
            ops.append(("remove", Tuple(ns=0, pid=pid)))
            ops.append(("insert", t(ns=0, pid=pid, state="R", cpu=0)))
        trace = Trace(scheduler_spec, ops)
        shared_cost = exact_accesses(trace, parse_decomposition(SHARED))
        copied_cost = exact_accesses(trace, parse_decomposition(COPIED))
        assert shared_cost < copied_cost
