"""Batch mutation paths: streaming fully-indexed removes and in-place
residual-only updates (PR 8).

The execution-core refactor added three fused fast paths that skip the
generic materialise/remove/re-insert machinery:

* interpreted ``update`` with residual-only changes rewrites victims in
  place through :meth:`DecomposedInstance.update_residuals`
  (site ``instance.update.residual``);
* compiled ``update`` with ``_RS``-covered changes dispatches to the
  emitted ``_update_in_place`` (site ``codegen.update.in_place``);
* compiled ``remove`` with a fully-indexed pattern takes the fused
  single-victim ``_rm_<mask>`` chain (site ``codegen.remove.batch``);
* interpreted ``remove`` with a pure-lookup plan streams the single
  victim straight off the plan generator, with no victim list.

Each path must be *provably taken* (the registered fault site fires when
armed — a negative probe shows the slow path does not reach it), must be
**strongly exception safe** (a fault mid-batch rolls every victim back),
must pay the cheaper asymptotics the scorer now prices, and must stay
α-equivalent with the reference oracle under a seeded 1000-op
differential weighted toward the batch operations, FD-on and FD-off,
with fault probes interleaved every 50 steps so the sweep exercises the
sites *in the middle of* a long mutation history, not just on a fresh
relation.

``REPRO_CHAOS_OPS`` shortens the differentials exactly as in
``test_faults`` (CI quick mode uses 250).
"""

import os
import random

import pytest

from repro import RelationSpec, Tuple, t
from repro.codegen import compile_relation
from repro.core import ReferenceRelation
from repro.core.errors import FaultInjected, FunctionalDependencyError
from repro.decomposition import DecomposedRelation
from repro.faults import FAULTS, fault_sites, inject
from repro.structures import COUNTER

BATCH_OPS = int(os.environ.get("REPRO_CHAOS_OPS", "1000"))

#: The shared-subnode scheduler layout: ``cpu`` is residual-only (lives in
#: the shared ``@rec`` leaf, outside every edge key) and the pattern
#: ``{ns, pid, state}`` plans as a pure lookup chain — so both batch paths
#: exist and both have a non-batch sibling to contrast against.
LAYOUT = (
    "[ns, pid -> htable (state -> htable @rec)"
    " ; state -> htable (ns, pid -> ilist @rec)] where @rec = {cpu}"
)

COLUMNS = ("ns", "pid", "state", "cpu")
DOMAINS = {"ns": [0, 1, 2], "pid": [0, 1, 2, 3], "state": ["R", "S", "W"], "cpu": [0, 1]}

BATCH_SITES = (
    "codegen.remove.batch",
    "codegen.update.in_place",
    "instance.update.residual",
)


def scheduler_spec():
    return RelationSpec("ns, pid, state, cpu", fds=["ns, pid -> state, cpu"], name="process")


def make_tier(tier, enforce_fds=True):
    spec = scheduler_spec()
    if tier == "interpreted":
        return DecomposedRelation(spec, LAYOUT, enforce_fds=enforce_fds)
    return compile_relation(spec, LAYOUT)(enforce_fds=enforce_fds)


@pytest.fixture(autouse=True)
def _clean_injector():
    FAULTS.disarm()
    FAULTS.reset_stats()
    yield
    FAULTS.disarm()


def test_batch_sites_are_registered_for_the_chaos_sweep():
    """The three batch-path sites are in the global registry, so the
    ``test_faults`` chaos differential arms them automatically — the new
    fast paths joined the sweep surface the moment they were written."""
    sites = fault_sites()
    for site in BATCH_SITES:
        assert site in sites, f"{site} missing from the sweep surface"


# -- the paths are provably taken (and the slow siblings provably are not) --------


class TestPathDispatch:
    """Positive probe: arming the site and performing the batch operation
    fires the fault.  Negative probe: the same operation shaped so it must
    take the generic path never reaches the site."""

    def seeded(self, tier):
        rel = make_tier(tier)
        rel.insert(t(ns=0, pid=1, state="R", cpu=0))
        rel.insert(t(ns=1, pid=2, state="S", cpu=1))
        return rel

    def test_compiled_fully_indexed_remove_takes_the_fused_chain(self):
        rel = self.seeded("compiled")
        before = rel.to_relation()
        with inject("codegen.remove.batch"):
            with pytest.raises(FaultInjected):
                rel.remove(t(ns=0, pid=1, state="R"))
        assert rel.to_relation() == before, "faulted batch remove left effects"
        rel.remove(t(ns=0, pid=1, state="R"))  # disarmed retry lands
        assert len(rel) == 1

    def test_compiled_partial_pattern_remove_avoids_the_fused_chain(self):
        rel = self.seeded("compiled")
        # {ns, pid} + the leaf residual {cpu} does not pin `state`: the
        # plan is not a full-coverage lookup chain, so the generic
        # victim-materialising remove runs and the site stays silent.
        with inject("codegen.remove.batch"):
            rel.remove(t(ns=0, pid=1))
        assert len(rel) == 1
        assert FAULTS.fired_sites() == []

    def test_compiled_residual_update_takes_the_in_place_path(self):
        rel = self.seeded("compiled")
        before = rel.to_relation()
        with inject("codegen.update.in_place"):
            with pytest.raises(FaultInjected):
                rel.update(t(ns=0, pid=1), t(cpu=1))
        assert rel.to_relation() == before, "faulted in-place update left effects"
        rel.update(t(ns=0, pid=1), t(cpu=1))
        assert rel.query(t(ns=0, pid=1))[0]["cpu"] == 1

    def test_compiled_key_moving_update_avoids_the_in_place_path(self):
        rel = self.seeded("compiled")
        # `state` keys a container edge: the change must go through the
        # remove/re-insert pipeline, never the residual rewrite.
        with inject("codegen.update.in_place"):
            rel.update(t(ns=0, pid=1), t(state="W"))
        assert rel.query(t(ns=0, pid=1))[0]["state"] == "W"
        assert FAULTS.fired_sites() == []

    def test_interpreted_residual_update_takes_the_residual_path(self):
        rel = self.seeded("interpreted")
        before = rel.to_relation()
        with inject("instance.update.residual"):
            with pytest.raises(FaultInjected):
                rel.update(t(ns=0, pid=1), t(cpu=1))
        assert rel.to_relation() == before
        rel.check_well_formed()
        rel.update(t(ns=0, pid=1), t(cpu=1))
        assert rel.query(t(ns=0, pid=1))[0]["cpu"] == 1

    def test_interpreted_key_moving_update_avoids_the_residual_path(self):
        rel = self.seeded("interpreted")
        with inject("instance.update.residual"):
            rel.update(t(ns=0, pid=1), t(state="W"))
        assert rel.query(t(ns=0, pid=1))[0]["state"] == "W"
        assert FAULTS.fired_sites() == []


# -- mid-batch rollback -------------------------------------------------------------


@pytest.mark.parametrize("tier, site", [
    ("interpreted", "instance.update.residual"),
    ("compiled", "codegen.update.in_place"),
])
def test_multi_victim_residual_update_rolls_back_completely(tier, site):
    """A fault on the *third* victim of a batch residual update must undo
    the two victims already rewritten — the batch is atomic, not per-row."""
    rel = make_tier(tier)
    for pid in range(6):
        rel.insert(t(ns=0, pid=pid, state="R", cpu=0))
    before = rel.to_relation()
    FAULTS.arm(site, on_hit=3)
    try:
        with pytest.raises(FaultInjected):
            rel.update(t(state="R"), t(cpu=1))
    finally:
        FAULTS.disarm()
    assert rel.to_relation() == before, (
        "a fault mid-batch left earlier victims rewritten"
    )
    check = getattr(rel, "check_well_formed", None)
    if check is not None:
        check()
    rel.update(t(state="R"), t(cpu=1))  # the disarmed retry rewrites all six
    assert all(row["cpu"] == 1 for row in rel.query(t(state="R")))


# -- the cheaper asymptotics the scorer prices --------------------------------------


class TestBatchAsymptotics:
    def populate(self, tier, n=200):
        rel = make_tier(tier)
        rng = random.Random(3)
        for i in range(n):
            rel.insert(t(ns=i % 8, pid=i, state=rng.choice("RSW"), cpu=i % 4))
        return rel

    @pytest.mark.parametrize("tier", ["interpreted", "compiled"])
    def test_residual_update_is_cheaper_than_a_key_move(self, tier):
        rel = self.populate(tier)
        with COUNTER:
            rel.update(t(ns=3, pid=3), t(cpu=1))
            residual = COUNTER.accesses
        with COUNTER:
            rel.update(t(ns=3, pid=3), t(state="W"))
            key_move = COUNTER.accesses
        # Same victim, same probes to find it: the in-place rewrite skips
        # the whole unlink/re-link churn across both branches.
        assert residual < key_move / 2, (residual, key_move)

    @pytest.mark.parametrize("tier", ["interpreted", "compiled"])
    def test_fully_indexed_remove_is_a_lookup_not_a_scan(self, tier):
        rel = self.populate(tier)
        row = rel.query(t(pid=10))[0]
        with COUNTER:
            rel.remove(t(ns=row["ns"], pid=row["pid"], state=row["state"]))
            indexed = COUNTER.accesses
        with COUNTER:
            rel.remove(t(cpu=3))  # unindexed: filters a full branch scan
            scanned = COUNTER.accesses
        assert indexed <= 10, indexed
        assert scanned >= 200, scanned


# -- the seeded differential --------------------------------------------------------


def random_full_tuple(rng):
    return Tuple({c: rng.choice(DOMAINS[c]) for c in COLUMNS})


def random_pattern(rng, max_columns=3):
    chosen = rng.sample(COLUMNS, k=rng.randint(0, max_columns))
    return Tuple({c: rng.choice(DOMAINS[c]) for c in chosen})


def _agree(op, relation, mirror, context):
    """Apply *op* to both sides; FD verdicts and α must agree."""
    tier_error = mirror_error = None
    try:
        op(relation)
    except FunctionalDependencyError as error:
        tier_error = error
    try:
        op(mirror)
    except FunctionalDependencyError as error:
        mirror_error = error
    assert (tier_error is None) == (mirror_error is None), (
        f"FD enforcement diverged {context}: tier={tier_error!r}, "
        f"mirror={mirror_error!r}"
    )
    assert relation.to_relation() == mirror.to_relation(), f"α diverged {context}"


def _fault_probe(relation, mirror, site, victim_row, context):
    """Arm *site* and run the batch op it guards against a row known to be
    stored: the fault MUST fire (the path is taken mid-history), the
    faulted op must roll back, and the disarmed retry must land."""
    before = mirror.to_relation()
    if site == "codegen.remove.batch":
        pattern = Tuple({c: victim_row[c] for c in ("ns", "pid", "state")})
        op = lambda r: r.remove(pattern)  # noqa: E731
    else:
        pattern = Tuple({c: victim_row[c] for c in ("ns", "pid")})
        changes = Tuple(cpu=1 - victim_row["cpu"])
        op = lambda r: r.update(pattern, changes)  # noqa: E731
    FAULTS.arm(site)
    try:
        with pytest.raises(FaultInjected):
            op(relation)
    finally:
        FAULTS.disarm()
    assert relation.to_relation() == before, (
        f"faulted batch op left partial effects {context}"
    )
    _agree(op, relation, mirror, context)


@pytest.mark.parametrize("enforce_fds", [True, False], ids=["fd-on", "fd-off"])
@pytest.mark.parametrize("tier", ["interpreted", "compiled"])
def test_batch_differential(tier, enforce_fds):
    """The seeded 1000-op differential, weighted toward the batch paths.

    Roughly half the mutations are residual-only updates or fully-indexed
    removes — the operations the new fast paths serve — interleaved with
    ordinary inserts, key-moving updates and scan removes so the batch
    paths run against a relation the generic paths keep churning.  Every
    50 steps a fault probe arms the tier's batch site against a stored row
    and asserts it fires: proof the fast path is the one serving these
    shapes throughout the run, not just on a fresh relation.
    """
    rng = random.Random(0xBA7C4 + (1 if enforce_fds else 0))
    relation = make_tier(tier, enforce_fds)
    mirror = ReferenceRelation(scheduler_spec(), enforce_fds=enforce_fds)
    probe_sites = (
        ("instance.update.residual",)
        if tier == "interpreted"
        else ("codegen.update.in_place", "codegen.remove.batch")
    )
    probes = 0

    for step in range(BATCH_OPS):
        context = f"[{tier}] at step {step}"
        if step % 50 == 25:
            stored = sorted(mirror.to_relation().tuples, key=Tuple.sort_key)
            if stored:
                site = probe_sites[probes % len(probe_sites)]
                _fault_probe(
                    relation, mirror, site, stored[probes % len(stored)], context
                )
                probes += 1
                continue
        roll = rng.random()
        if roll < 0.30:
            tup = random_full_tuple(rng)
            op = lambda r: r.insert(tup)  # noqa: E731
        elif roll < 0.50:
            # Residual-only update: the batch in-place path, through
            # patterns of every selectivity (empty pattern = all rows).
            pattern = random_pattern(rng)
            changes = Tuple(cpu=rng.choice(DOMAINS["cpu"]))
            op = lambda r: r.update(pattern, changes)  # noqa: E731
        elif roll < 0.65:
            # Fully-indexed remove: the fused single-victim path (against
            # a stored row half the time so it actually removes).
            stored = sorted(mirror.to_relation().tuples, key=Tuple.sort_key)
            if stored and rng.random() < 0.5:
                row = stored[rng.randrange(len(stored))]
                pattern = Tuple({c: row[c] for c in ("ns", "pid", "state")})
            else:
                pattern = Tuple(
                    {c: rng.choice(DOMAINS[c]) for c in ("ns", "pid", "state")}
                )
            op = lambda r: r.remove(pattern)  # noqa: E731
        elif roll < 0.75:
            # Key-moving update: the generic remove/re-insert pipeline.
            pattern = random_pattern(rng, max_columns=2)
            changes = Tuple(state=rng.choice(DOMAINS["state"]))
            op = lambda r: r.update(pattern, changes)  # noqa: E731
        elif roll < 0.85:
            pattern = random_pattern(rng)
            op = lambda r: r.remove(pattern)  # noqa: E731
        else:
            pattern = random_pattern(rng)
            output = rng.sample(COLUMNS, k=rng.randint(1, 4))
            assert set(relation.query(pattern, output)) == set(
                mirror.query(pattern, output)
            ), context
            continue
        _agree(op, relation, mirror, context)
        if step % 100 == 0 or step == BATCH_OPS - 1:
            check = getattr(relation, "check_well_formed", None)
            if check is not None:
                check()

    assert probes >= 10 or BATCH_OPS < 250, "too few fault probes ran"
    fired = set(FAULTS.fired_sites())
    assert fired >= set(probe_sites), (
        f"[{tier}] batch sites never all fired: {sorted(fired)}"
    )
