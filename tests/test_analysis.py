"""Static-analysis tests (PR 9): diagnostics, the decomposition linter, and
the emitted-code verifier demonstrated on seeded source corruption.

The negative-path tests are the heart: each takes the real emitted source of
the scheduler layout, performs one surgical corruption (drop a journal
append, orphan a fault site, dead dispatch entry, ...), and asserts the
verifier fires the matching ``EA0xx`` code — proving every check catches the
class of bug it exists for, not just that clean code passes.
"""

import json

import pytest

from repro import RelationSpec
from repro.analysis import (
    ERROR,
    WARNING,
    Diagnostic,
    Loc,
    has_errors,
    lint,
    render_json,
    render_text,
    summarize,
    verify_class,
    verify_source,
)
from repro.codegen import compile_relation, generate_source_and_meta
from repro.decomposition.parser import parse_decomposition

SCHED_LAYOUT = "ns -> htable pid -> htable {state, cpu}"


@pytest.fixture(scope="module")
def sched():
    """Spec, parsed layout, emitted source and meta for the running example."""
    spec = RelationSpec(
        "ns, pid, state, cpu", fds=["ns, pid -> state, cpu"], name="process"
    )
    source, meta = generate_source_and_meta(spec, SCHED_LAYOUT)
    return spec, parse_decomposition(SCHED_LAYOUT), source, meta


def _codes(diags):
    return {d.code for d in diags}


def _verify(sched, source):
    spec, decomposition, _, meta = sched
    return verify_source(
        source, name="Corrupted", meta=meta, spec=spec, decomposition=decomposition
    )


def _drop_line(source, needle, after=""):
    """Delete the first line containing *needle* (after the *after* marker)."""
    lines = source.splitlines(True)
    start = 0
    if after:
        start = next(i for i, ln in enumerate(lines) if after in ln)
    idx = next(i for i in range(start, len(lines)) if needle in lines[i])
    del lines[idx]
    return "".join(lines)


def _insert_before(source, needle, new_line, after=""):
    lines = source.splitlines(True)
    start = 0
    if after:
        start = next(i for i, ln in enumerate(lines) if after in ln)
    idx = next(i for i in range(start, len(lines)) if needle in lines[i])
    lines.insert(idx, new_line)
    return "".join(lines)


# -- diagnostic model -----------------------------------------------------------


class TestDiagnosticModel:
    def test_loc_str(self):
        assert str(Loc("Cls")) == "Cls"
        assert str(Loc("Cls", "_insert_row")) == "Cls._insert_row"
        assert str(Loc("Cls", "_insert_row", 42)) == "Cls._insert_row:42"

    def test_loc_equality(self):
        assert Loc("a", "b", 1) == Loc("a", "b", 1)
        assert Loc("a", "b", 1) != Loc("a", "b", 2)
        assert len({Loc("a", "b", 1), Loc("a", "b", 1)}) == 1

    def test_diagnostic_str_and_severity_validation(self):
        d = Diagnostic("EA011", ERROR, "unjournalled", Loc("Cls", "m", 7))
        assert str(d) == "Cls.m:7: error EA011: unjournalled"
        with pytest.raises(ValueError):
            Diagnostic("EA011", "fatal", "boom", Loc("Cls"))

    def test_sort_errors_before_warnings_within_unit(self):
        warn = Diagnostic("DL004", WARNING, "w", Loc("u"))
        err = Diagnostic("EA050", ERROR, "e", Loc("u"))
        assert sorted([warn, err], key=Diagnostic.sort_key) == [err, warn]

    def test_summarize_and_has_errors(self):
        diags = [
            Diagnostic("EA011", ERROR, "e", Loc("a")),
            Diagnostic("DL002", WARNING, "w", Loc("b")),
        ]
        assert summarize(diags) == "1 error(s), 1 warning(s) in 2 unit(s)"
        assert has_errors(diags)
        assert not has_errors([diags[1]])

    def test_render_text_groups_by_unit(self):
        diags = [
            Diagnostic("DL002", WARNING, "w", Loc("b", "edge")),
            Diagnostic("EA011", ERROR, "e", Loc("a", "m", 3)),
        ]
        text = render_text(diags)
        lines = text.splitlines()
        assert lines[0] == "== a"
        assert "error   EA011  m:3  e" in lines[1]
        assert lines[2] == "== b"
        assert render_text([]) == "no findings\n"

    def test_render_json_payload(self):
        diags = [Diagnostic("EA020", ERROR, "uncharged", Loc("Cls", "q", 9))]
        payload = json.loads(render_json(diags, units=5))
        assert payload["errors"] == 1
        assert payload["warnings"] == 0
        assert payload["units"] == 5
        assert payload["findings"][0]["code"] == "EA020"
        assert payload["findings"][0]["line"] == 9


# -- decomposition linter -------------------------------------------------------


class _FakeProfile:
    def __init__(self, patterns):
        self._patterns = [frozenset(p) for p in patterns]

    def pattern_columns(self):
        return list(self._patterns)


class _FakeTrace:
    """Just enough Trace surface for the trace-informed lints."""

    def __init__(self, operations=(), patterns=()):
        self.operations = list(operations)
        self._profile = _FakeProfile(patterns)

    def profile(self):
        return self._profile


class TestDecompositionLint:
    def test_clean_layout_has_no_findings(self, scheduler_spec):
        assert lint(scheduler_spec, SCHED_LAYOUT) == []

    def test_dl001_unused_where_definition_is_error(self, scheduler_spec):
        diags = lint(
            scheduler_spec,
            "ns, pid -> htable {state, cpu} where @dead = {cpu}",
        )
        assert _codes(diags) == {"DL001"}
        assert has_errors(diags)
        assert "@dead" in diags[0].message

    def test_dl003_single_parent_sharing(self, scheduler_spec):
        diags = lint(
            scheduler_spec,
            "ns, pid -> htable @rec where @rec = {state, cpu}",
        )
        assert _codes(diags) == {"DL003"}
        assert not has_errors(diags)

    def test_dl002_fd_redundant_edge(self, scheduler_spec):
        # state is FD-determined once ns and pid are bound, so the inner
        # state-keyed containers each hold exactly one entry.
        diags = lint(
            scheduler_spec, "ns -> htable pid -> htable state -> htable {cpu}"
        )
        assert _codes(diags) == {"DL002"}
        assert "state" in diags[0].message

    def test_dl004_ordered_structure_never_range_queried(self, scheduler_spec):
        trace = _FakeTrace(operations=[("query", frozenset({"ns"}))])
        diags = lint(
            scheduler_spec, "ns -> htable pid -> btree {state, cpu}", trace=trace
        )
        assert "DL004" in _codes(diags)

    def test_dl004_silent_when_trace_ranges_the_key(self, scheduler_spec):
        trace = _FakeTrace(operations=[("range", "pid", 0, 10)])
        diags = lint(
            scheduler_spec, "pid -> btree ns -> htable {state, cpu}", trace=trace
        )
        assert "DL004" not in _codes(diags)

    def test_dl005_range_column_unserved(self, scheduler_spec):
        trace = _FakeTrace(operations=[("range", "cpu", 0, 10)])
        diags = lint(scheduler_spec, SCHED_LAYOUT, trace=trace)
        assert "DL005" in _codes(diags)

    def test_dl006_unjoined_projection_branch(self):
        # The reverse-neighbour split layout: forward branch plus a
        # key-projection secondary keyed by dst.  A trace that never binds
        # dst leaves the secondary costing every mutation for nothing.
        spec = RelationSpec("src, dst, weight", fds=["src, dst -> weight"])
        layout = (
            "[src -> htable (dst -> htable {weight})"
            " ; dst -> htable (src -> htable {})]"
        )
        trace = _FakeTrace(patterns=[{"src"}])
        diags = lint(spec, layout, trace=trace)
        assert "DL006" in _codes(diags)

    def test_dl006_silent_when_join_plans_walk_the_branch(self):
        # The real graph_reverse workload reaches the secondary as a join
        # side once live size estimates are in play: not dead weight.
        from benchmarks.workloads import build_workloads
        from repro.autotuner.trace import Trace

        workload = build_workloads(quick=True, names=["graph_reverse"])[0]
        trace = Trace.from_workload(workload)
        diags = lint(workload.spec, workload.layout, trace=trace)
        assert "DL006" not in _codes(diags)


# -- emitted-code verifier: positive paths --------------------------------------


class TestVerifierPositive:
    def test_clean_source_verifies_clean(self, sched):
        spec, decomposition, source, meta = sched
        assert (
            verify_source(
                source, meta=meta, spec=spec, decomposition=decomposition
            )
            == []
        )

    def test_verify_class_on_compiled_output(self, scheduler_spec):
        cls = compile_relation(scheduler_spec, SCHED_LAYOUT)
        assert verify_class(cls) == []

    def test_verify_class_without_source_is_ea001(self):
        class NotEmitted:
            pass

        diags = verify_class(NotEmitted)
        assert _codes(diags) == {"EA001"}

    def test_unparsable_source_is_ea001(self):
        assert _codes(verify_source("def broken(:")) == {"EA001"}

    def test_source_without_class_is_ea001(self):
        assert _codes(verify_source("x = 1\n")) == {"EA001"}


# -- emitted-code verifier: seeded corruption -----------------------------------


class TestVerifierNegative:
    def test_ea011_dropped_journal_append(self, sched):
        source = sched[2]
        bad = _drop_line(source, "_j.append((0, c5", after="def _insert_row")
        diags = _verify(sched, bad)
        assert "EA011" in _codes(diags)
        assert has_errors(diags)

    def test_ea010_mutation_outside_rollback_scope(self, sched):
        source = sched[2]
        bad = _insert_before(
            source,
            "self._count += 1",
            "        self._root[v1] = {}\n",
            after="def _insert_row",
        )
        assert "EA010" in _codes(_verify(sched, bad))

    def test_ea012_handler_without_undo(self, sched):
        source = sched[2]
        bad = source.replace("_undo(_j)", "pass")
        assert "EA012" in _codes(_verify(sched, bad))

    def test_ea020_uncharged_probe(self, sched):
        source = sched[2]
        bad = _drop_line(
            source, "if en: _C.accesses += 1", after="def _insert_row"
        )
        diags = _verify(sched, bad)
        assert "EA020" in _codes(diags)
        # The finding names the probing method.
        assert any(
            d.code == "EA020" and d.loc.scope == "_insert_row" for d in diags
        )

    def test_ea030_unregistered_fault_site(self, sched):
        source = sched[2]
        bad = source.replace(
            "'codegen.insert.store'", "'codegen.insert.never_registered'"
        )
        assert "EA030" in _codes(_verify(sched, bad))

    def test_ea031_fault_check_outside_guard(self, sched):
        source = sched[2]
        guarded = (
            "            if _fa:\n"
            "                _F.check('codegen.insert.store')\n"
        )
        assert guarded in source
        bad = source.replace(
            guarded, "            _F.check('codegen.insert.store')\n"
        )
        assert "EA031" in _codes(_verify(sched, bad))

    def test_ea040_missing_dispatch_entry(self, sched):
        source = sched[2]
        bad = _drop_line(source, "3: Compiled_", after="_VPLANS = {")
        codes = _codes(_verify(sched, bad))
        assert "EA040" in codes
        # The dropped entry also strands its method as dead code.
        assert "EA044" in codes

    def test_ea041_dead_dispatch_entry(self, sched):
        source = sched[2]
        bad = _insert_before(
            source,
            "0: Compiled_",
            "    999: Compiled_decomposition._qv_0,\n",
            after="_VPLANS = {",
        )
        assert "EA041" in _codes(_verify(sched, bad))

    def test_ea042_prepopulated_memo_cache(self, sched):
        source = sched[2]
        bad = source.replace("_VCOLS = {}", "_VCOLS = {('ns',): None}")
        assert "EA042" in _codes(_verify(sched, bad))

    def test_ea050_undeclared_attribute_write(self, sched):
        source = sched[2]
        bad = source.replace(
            "            c5[v2] = (v0, v3)",
            "            c5[v2] = (v0, v3)\n            self._evil = row",
        )
        diags = _verify(sched, bad)
        assert any(
            d.code == "EA050" and "_evil" in d.message for d in diags
        )


# -- CLI gate -------------------------------------------------------------------


class TestCLI:
    def test_cli_strict_passes_on_benchmark_layouts(self, tmp_path, capsys):
        from repro.analysis.__main__ import main

        artifact = tmp_path / "analysis.json"
        rc = main(
            [
                "--workloads",
                "scheduler",
                "--all-layouts",
                "--strict",
                "--json",
                str(artifact),
            ]
        )
        assert rc == 0
        out = capsys.readouterr().out
        assert "analysed" in out
        payload = json.loads(artifact.read_text())
        assert payload["errors"] == 0
        assert "findings" in payload and "units" in payload


# -- emitted metadata (the verifier's input surface) ----------------------------


class TestEmittedMetadata:
    def test_compiled_class_carries_source_meta_and_linecache(self, scheduler_spec):
        import linecache

        cls = compile_relation(scheduler_spec, SCHED_LAYOUT)
        assert cls.__repro_source__ == cls.__source__
        meta = cls.__repro_meta__
        assert meta["class_name"] == cls.__name__
        assert set(meta["columns"]) == set(scheduler_spec.columns)
        assert meta["fault_sites"]  # the verifier's round-trip ground truth
        assert sorted(meta["queries"]) == meta["masks"]
        # linecache serves the emitted pseudo-file, so tracebacks out of
        # generated mutators show the real source line.
        first = linecache.getline(meta["filename"], 1)
        assert first == cls.__repro_source__.splitlines(True)[0]

    def test_generated_traceback_points_at_real_source(self, scheduler_spec):
        import traceback

        cls = compile_relation(scheduler_spec, SCHED_LAYOUT)
        rel = cls()
        try:
            rel.insert(("a", 1, "run"))  # arity error inside the mutator
            raised = False
        except Exception:
            raised = True
            tb = traceback.format_exc()
            assert cls.__repro_meta__["module"] in tb
            # The frame shows actual emitted code, not just a filename.
            assert "insert" in tb
        assert raised
