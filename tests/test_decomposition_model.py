"""Decomposition model construction, structural validation, and the parser."""

import pytest

from repro.core.errors import DecompositionError, ParseError
from repro.decomposition import (
    Decomposition,
    DecompNode,
    MapEdge,
    edge,
    parse_decomposition,
    unit,
)


class TestModel:
    def test_unit_and_edge_helpers(self):
        d = Decomposition(edge("ns, pid", "htable", unit("state, cpu")), name="flat")
        assert d.depth() == 1
        assert d.structures() == ["htable"]
        assert d.key_columns() == frozenset({"ns", "pid"})
        assert d.covered_columns() == frozenset({"ns", "pid", "state", "cpu"})

    def test_edge_child_shorthand(self):
        d = Decomposition(edge("ns, pid", "htable", "state, cpu"))
        assert d.paths()[0].leaf.unit_columns == frozenset({"state", "cpu"})

    def test_node_cannot_be_unit_and_map(self):
        with pytest.raises(DecompositionError, match="not both"):
            DecompNode(edges=(MapEdge("a", "htable", unit("b")),), unit_columns="c")

    def test_edge_requires_key_columns(self):
        with pytest.raises(DecompositionError, match="key column"):
            MapEdge([], "htable", unit("a"))

    def test_unknown_structure_fails_fast(self):
        with pytest.raises(DecompositionError, match="unknown data structure"):
            MapEdge("a", "skiplist", unit("b"))

    def test_rebinding_a_column_is_rejected(self):
        with pytest.raises(DecompositionError, match="re-binds"):
            Decomposition(edge("a", "htable", edge("a, b", "htable", unit("c"))))

    def test_unit_cannot_store_bound_columns(self):
        with pytest.raises(DecompositionError, match="already bound"):
            Decomposition(edge("a", "htable", unit("a, b")))

    def test_cycles_are_rejected(self):
        inner = DecompNode(edges=(MapEdge("a", "htable", unit("b")),))
        # Force a cycle by mutating the edge tuple (bypassing constructors).
        inner.edges = (inner.edges[0], MapEdge("c", "htable", inner))
        with pytest.raises(DecompositionError, match="cycle"):
            Decomposition(inner)

    def test_paths_and_typing(self):
        d = parse_decomposition(
            "[ns -> htable pid -> btree {state, cpu} ; state -> htable (ns, pid -> dlist {cpu})]"
        )
        paths = d.paths()
        assert len(paths) == 2
        first, second = paths
        assert first.bound == frozenset({"ns", "pid"})
        assert first.bound_at(1) == frozenset({"ns"})
        assert second.bound == frozenset({"state", "ns", "pid"})
        assert second.covered == frozenset({"state", "ns", "pid", "cpu"})
        assert [e.structure for e in second.edges] == ["htable", "dlist"]

    def test_nodes_are_deduplicated_by_identity(self):
        shared = unit("c")
        root = DecompNode(
            edges=(MapEdge("a", "htable", shared), MapEdge("b", "htable", shared))
        )
        d = Decomposition(root)
        assert len(d.nodes()) == 2
        assert len(d.paths()) == 2

    def test_describe_round_trips(self):
        for text in [
            "ns, pid -> htable {state, cpu}",
            "ns -> htable pid -> btree {state, cpu}",
            "[ns, pid -> htable {state, cpu} ; state -> htable ns, pid -> dlist {cpu}]",
            "a -> vector {}",
        ]:
            d = parse_decomposition(text)
            again = parse_decomposition(d.describe())
            assert again.describe() == d.describe()


class TestParser:
    def test_simple_map_to_unit(self):
        d = parse_decomposition("ns, pid -> htable {state, cpu}")
        (path,) = d.paths()
        assert path.edges[0].key == frozenset({"ns", "pid"})
        assert path.edges[0].structure == "htable"
        assert path.leaf.unit_columns == frozenset({"state", "cpu"})

    def test_chained_maps_without_parens(self):
        d = parse_decomposition("ns -> htable pid -> btree {state, cpu}")
        (path,) = d.paths()
        assert [e.structure for e in path.edges] == ["htable", "btree"]

    def test_parenthesised_child(self):
        d = parse_decomposition("ns -> htable (pid -> btree {state, cpu})")
        assert d.describe() == parse_decomposition(
            "ns -> htable pid -> btree {state, cpu}"
        ).describe()

    def test_empty_unit(self):
        d = parse_decomposition("a, b -> htable {}")
        assert d.paths()[0].leaf.unit_columns == frozenset()

    def test_comments_and_whitespace(self):
        d = parse_decomposition(
            """
            # the paper's scheduler layout
            ns, pid -> htable  # primary key index
                {state, cpu}
            """
        )
        assert d.depth() == 1

    def test_branch_merges_edges(self):
        d = parse_decomposition("[a -> htable {b} ; b -> btree {a}]")
        assert len(d.root.edges) == 2

    def test_branch_of_unit_is_rejected(self):
        with pytest.raises(ParseError, match="unit leaf cannot be a branch"):
            parse_decomposition("[{a} ; b -> htable {a}]")

    @pytest.mark.parametrize(
        "bad",
        [
            "",
            "ns, pid",
            "ns -> {a}",
            "ns -> htable",
            "ns -> htable {a} trailing",
            "ns ->> htable {a}",
            "{a",
            "[a -> htable {b}",
            "(a -> htable {b}",
            "a, -> htable {b}",
        ],
    )
    def test_malformed_text_raises_parse_error(self, bad):
        with pytest.raises(ParseError):
            parse_decomposition(bad)

    def test_parse_error_carries_location(self):
        with pytest.raises(ParseError) as excinfo:
            parse_decomposition("ns -> htable\n{a} %")
        assert excinfo.value.line == 2
        assert "line 2" in str(excinfo.value)
