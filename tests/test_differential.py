"""Randomized differential testing: DecomposedRelation vs ReferenceRelation.

The paper's soundness theorem (Theorem 5) says that running any sequence of
relational operations against an instance of an adequate, well-formed
decomposition yields — through the abstraction function α — exactly the
relation the specification-level reference implementation holds.  These
tests check the dynamic counterpart: ~1000 seeded random operations are
applied to both implementations in lockstep, asserting after **every**
operation that

* ``α(instance)`` equals the reference relation,
* query results agree (as sets) for random patterns and outputs,
* FD-violating operations raise :class:`FunctionalDependencyError` on both
  sides and leave both states untouched,

and, periodically, that the instance stays well-formed (Figure 5) and that
α always satisfies the specification's FDs.
"""

import random

import pytest

from repro.codegen import compile_relation
from repro.core import ReferenceRelation, RelationSpec, Tuple
from repro.core.errors import FunctionalDependencyError
from repro.decomposition import DecomposedRelation, parse_decomposition

#: Two structurally distinct adequate decompositions of the scheduler spec
#: (acceptance criterion: both must survive the 1000-op differential run).
DECOMPOSITIONS = {
    "flat-htable": "ns, pid -> htable {state, cpu}",
    "scheduler-indexes": (
        "[ns -> htable pid -> btree {state, cpu}"
        " ; state -> htable (ns, pid -> dlist {cpu})]"
    ),
    "all-bound": "ns, pid -> btree (state, cpu -> dlist {})",
}

NS_DOMAIN = [0, 1, 2]
PID_DOMAIN = [0, 1, 2, 3]
STATE_DOMAIN = ["R", "S", "W"]
CPU_DOMAIN = [0, 1]
COLUMNS = ("ns", "pid", "state", "cpu")
DOMAINS = {"ns": NS_DOMAIN, "pid": PID_DOMAIN, "state": STATE_DOMAIN, "cpu": CPU_DOMAIN}


def random_full_tuple(rng: random.Random) -> Tuple:
    return Tuple({c: rng.choice(DOMAINS[c]) for c in COLUMNS})


def random_pattern(rng: random.Random, max_columns: int = 3) -> Tuple:
    chosen = rng.sample(COLUMNS, k=rng.randint(0, max_columns))
    return Tuple({c: rng.choice(DOMAINS[c]) for c in chosen})


def apply_both(op, reference, decomposed):
    """Apply *op* to both implementations; FD rejections must agree."""
    ref_error = dec_error = None
    try:
        op(reference)
    except FunctionalDependencyError as error:
        ref_error = error
    try:
        op(decomposed)
    except FunctionalDependencyError as error:
        dec_error = error
    assert (ref_error is None) == (dec_error is None), (
        f"implementations disagree on FD enforcement: "
        f"reference={ref_error!r}, decomposed={dec_error!r}"
    )


@pytest.mark.parametrize("layout", sorted(DECOMPOSITIONS))
def test_differential_1000_ops(layout, scheduler_spec):
    rng = random.Random(20110604)  # PLDI 2011 started June 4th.
    decomposition = parse_decomposition(DECOMPOSITIONS[layout], name=layout)
    reference = ReferenceRelation(scheduler_spec)
    decomposed = DecomposedRelation(scheduler_spec, decomposition)

    operations = 0
    for step in range(1000):
        roll = rng.random()
        if roll < 0.45:
            tup = random_full_tuple(rng)
            apply_both(lambda r: r.insert(tup), reference, decomposed)
        elif roll < 0.65:
            pattern = random_pattern(rng)
            apply_both(lambda r: r.remove(pattern), reference, decomposed)
        elif roll < 0.85:
            pattern = random_pattern(rng, max_columns=2)
            changes = random_pattern(rng, max_columns=2)
            apply_both(lambda r: r.update(pattern, changes), reference, decomposed)
        else:
            pattern = random_pattern(rng)
            output = rng.sample(COLUMNS, k=rng.randint(1, 4))
            assert set(decomposed.query(pattern, output)) == set(
                reference.query(pattern, output)
            )
        operations += 1

        # The soundness property, after every single operation.
        alpha = decomposed.to_relation()
        assert alpha == reference.to_relation(), (
            f"[{layout}] α diverged from the reference after step {step}"
        )
        if step % 100 == 0 or step == 999:
            decomposed.check_well_formed()
            assert alpha.satisfies(scheduler_spec.fds)

    assert operations == 1000


@pytest.mark.parametrize("layout", sorted(DECOMPOSITIONS))
def test_differential_1000_ops_fd_off_three_tiers(layout, scheduler_spec):
    """FD-*violating* op sequences agree across all three tiers.

    With ``enforce_fds=False`` every tier resolves FD conflicts
    last-writer-wins (see RelationInterface): the reference evicts
    conflicting tuples before adding, matching the structural behaviour of
    the decomposed and compiled tiers — including on layouts with no unit
    residual (``all-bound``), where the eviction cannot come from unit
    bindings.  This test fails on the pre-fix code, where the reference
    kept both conflicting tuples.
    """
    rng = random.Random(20110608)  # PLDI 2011 ended June 8th.
    decomposition = parse_decomposition(DECOMPOSITIONS[layout], name=layout)
    reference = ReferenceRelation(scheduler_spec, enforce_fds=False)
    decomposed = DecomposedRelation(scheduler_spec, decomposition, enforce_fds=False)
    compiled = compile_relation(scheduler_spec, decomposition)(enforce_fds=False)
    tiers = (reference, decomposed, compiled)

    for step in range(1000):
        roll = rng.random()
        if roll < 0.5:
            # Unrestricted inserts: FD conflicts are frequent on these
            # tiny domains and must resolve identically everywhere.
            tup = random_full_tuple(rng)
            for relation in tiers:
                relation.insert(tup)
        elif roll < 0.65:
            pattern = random_pattern(rng)
            for relation in tiers:
                relation.remove(pattern)
        elif roll < 0.85:
            # Unrestricted bulk updates: merged tuples may collide with
            # each other and with untouched tuples.
            pattern = random_pattern(rng, max_columns=2)
            changes = random_pattern(rng, max_columns=2)
            for relation in tiers:
                relation.update(pattern, changes)
        else:
            pattern = random_pattern(rng)
            output = rng.sample(COLUMNS, k=rng.randint(1, 4))
            expected = set(reference.query(pattern, output))
            assert set(decomposed.query(pattern, output)) == expected
            assert set(compiled.query(pattern, output)) == expected

        oracle = reference.to_relation()
        assert decomposed.to_relation() == oracle, (
            f"[{layout}] interpreted tier diverged from the reference at step {step}"
        )
        assert compiled.to_relation() == oracle, (
            f"[{layout}] compiled tier diverged from the reference at step {step}"
        )
        if step % 100 == 0 or step == 999:
            decomposed.check_well_formed()
            compiled.check_well_formed()
            # Lemma 4: a representation only holds FD-satisfying relations,
            # and with the eviction semantics so does the oracle.
            assert oracle.satisfies(scheduler_spec.fds)


#: Split-across-branch layouts (the §4 join-plan PR): the primary branch
#: covers every column; the secondaries are key projections, so queries
#: binding their key columns are answered by cross-branch join plans.
GRAPH_SPEC = RelationSpec("src, dst, weight", fds=["src, dst -> weight"], name="edge")
SPLIT_DECOMPOSITIONS = {
    "split-secondary": (
        "[src -> htable (dst -> htable {weight}) ; dst -> htable (src -> htable {})]"
    ),
    "split-two-partials": (
        "[src, dst -> htable {weight}"
        " ; dst -> htable (src -> dlist {})"
        " ; src -> htable (dst -> dlist {})]"
    ),
}
GRAPH_DOMAINS = {"src": [0, 1, 2, 3, 4], "dst": [0, 1, 2, 3, 4], "weight": [0, 1, 2]}
GRAPH_COLUMNS = ("src", "dst", "weight")


def random_graph_tuple(rng: random.Random) -> Tuple:
    return Tuple({c: rng.choice(GRAPH_DOMAINS[c]) for c in GRAPH_COLUMNS})


def random_graph_pattern(rng: random.Random, max_columns: int = 2) -> Tuple:
    # Heavily weight the split patterns ({src} / {dst}) that force
    # cross-branch planning on the layouts above.
    roll = rng.random()
    if roll < 0.35:
        chosen = [rng.choice(["src", "dst"])]
    elif roll < 0.5:
        chosen = ["src", "dst"]
    else:
        chosen = rng.sample(GRAPH_COLUMNS, k=rng.randint(0, max_columns))
    return Tuple({c: rng.choice(GRAPH_DOMAINS[c]) for c in chosen})


def _join_capable_compiled(layout: str, enforce_fds: bool):
    """Compile *layout* with size estimates that put cross-branch join
    plans into the compile-time dispatch table (wide roots, thin second
    levels), so the differential exercises the compiled join lowering."""
    from repro.decomposition import parse_decomposition

    decomposition = parse_decomposition(SPLIT_DECOMPOSITIONS[layout], name=layout)
    root_edges = set(map(id, decomposition.root.edges))
    sizes = {
        e: 64.0 if id(e) in root_edges else 2.0
        for node in decomposition.nodes()
        for e in node.edges
    }
    cls = compile_relation(GRAPH_SPEC, decomposition, sizes=sizes)
    assert "join[" in cls.__source__  # The differential must cover join code.
    return cls(enforce_fds=enforce_fds)


@pytest.mark.parametrize("layout", sorted(SPLIT_DECOMPOSITIONS))
@pytest.mark.parametrize("enforce_fds", [True, False], ids=["fd-on", "fd-off"])
def test_differential_1000_ops_split_patterns_three_tiers(layout, enforce_fds):
    """Split-across-branch queries agree across all three tiers.

    The op mix leans on patterns ({src} / {dst}) that only a key-projection
    branch indexes, so the interpreted tier plans cross-branch joins with
    live sizes and the compiled tier runs its join-bearing dispatch table —
    both FD-on (rejections must agree) and FD-off (evictions must agree).
    """
    rng = random.Random(20110606)
    decomposition = SPLIT_DECOMPOSITIONS[layout]
    reference = ReferenceRelation(GRAPH_SPEC, enforce_fds=enforce_fds)
    decomposed = DecomposedRelation(GRAPH_SPEC, decomposition, enforce_fds=enforce_fds)
    compiled = _join_capable_compiled(layout, enforce_fds)
    tiers = (reference, decomposed, compiled)

    for step in range(1000):
        roll = rng.random()
        if roll < 0.4:
            tup = random_graph_tuple(rng)
            if enforce_fds:
                errors = []
                for relation in tiers:
                    try:
                        relation.insert(tup)
                        errors.append(None)
                    except FunctionalDependencyError as error:
                        errors.append(error)
                assert len({e is None for e in errors}) == 1, (
                    f"[{layout}] tiers disagree on FD enforcement at step {step}: {errors}"
                )
            else:
                for relation in tiers:
                    relation.insert(tup)
        elif roll < 0.55:
            pattern = random_graph_pattern(rng)
            for relation in tiers:
                relation.remove(pattern)
        elif roll < 0.7:
            pattern = random_graph_pattern(rng)
            changes = Tuple(weight=rng.choice(GRAPH_DOMAINS["weight"]))
            for relation in tiers:
                relation.update(pattern, changes)
        else:
            pattern = random_graph_pattern(rng)
            output = rng.sample(GRAPH_COLUMNS, k=rng.randint(1, 3))
            expected = set(reference.query(pattern, output))
            assert set(decomposed.query(pattern, output)) == expected, (
                f"[{layout}] interpreted query diverged at step {step}"
            )
            assert set(compiled.query(pattern, output)) == expected, (
                f"[{layout}] compiled query diverged at step {step}"
            )

        oracle = reference.to_relation()
        assert decomposed.to_relation() == oracle, (
            f"[{layout}] interpreted tier diverged at step {step}"
        )
        assert compiled.to_relation() == oracle, (
            f"[{layout}] compiled tier diverged at step {step}"
        )
        if step % 100 == 0 or step == 999:
            decomposed.check_well_formed()
            compiled.check_well_formed()
            assert oracle.satisfies(GRAPH_SPEC.fds)


@pytest.mark.parametrize("layout", sorted(DECOMPOSITIONS))
def test_differential_without_fd_enforcement(layout, scheduler_spec):
    """FD-respecting op sequences agree even with enforcement turned off."""
    rng = random.Random(7)
    decomposed = DecomposedRelation(
        scheduler_spec, DECOMPOSITIONS[layout], enforce_fds=False
    )
    reference = ReferenceRelation(scheduler_spec, enforce_fds=False)
    live = {}
    for _ in range(300):
        if live and rng.random() < 0.3:
            key = rng.choice(sorted(live))
            del live[key]
            pattern = Tuple({"ns": key[0], "pid": key[1]})
            reference.remove(pattern)
            decomposed.remove(pattern)
        else:
            ns, pid = rng.choice(NS_DOMAIN), rng.choice(PID_DOMAIN)
            residual = (rng.choice(STATE_DOMAIN), rng.choice(CPU_DOMAIN))
            if (ns, pid) in live:
                # Replace via remove+insert so the sequence stays FD-respecting.
                reference.remove(Tuple({"ns": ns, "pid": pid}))
                decomposed.remove(Tuple({"ns": ns, "pid": pid}))
            live[(ns, pid)] = residual
            tup = Tuple({"ns": ns, "pid": pid, "state": residual[0], "cpu": residual[1]})
            reference.insert(tup)
            decomposed.insert(tup)
        assert decomposed.to_relation() == reference.to_relation()
    decomposed.check_well_formed()
    assert len(reference) == len(live)
