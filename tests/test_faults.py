"""Chaos differentials: seeded fault sweeps against every tier (PR 7).

Exception safety is a property of *interleaving points*: a bug only shows
when a failure lands at exactly the wrong instruction inside a mutator.
These tests make that happen on purpose — the seeded 1000-op differentials
re-run with a one-shot fault armed at a different registered site on every
step, asserting after each **survived** fault that

* the faulted operation rolled back completely (α unchanged),
* the disarmed retry succeeds and agrees with the reference mirror,
* the instance stays well-formed (Figure 5),

and that the :class:`~repro.live.LiveRelation` self-healing loop survives
an injected failure at every re-tune / migration stage: the old backing
keeps serving, the failed layout is quarantined, the circuit breaker opens
after ``max_failures`` consecutive failures, and a dual-write window
interrupted mid-flight aborts with every write in exactly one consistent
backing.

``REPRO_CHAOS_OPS`` shortens the differentials (CI quick mode uses 250).
"""

import os
import random
import time

import pytest

import repro
from repro import RelationSpec, Tuple, t
from repro.codegen import compile_relation
from repro.core import ReferenceRelation
from repro.core.errors import (
    FaultInjected,
    FunctionalDependencyError,
    LiveRelationError,
    MigrationError,
    ReproError,
    RetuneFailed,
)
from repro.decomposition import DecomposedRelation
from repro.faults import FAULTS, fault_sites, inject

CHAOS_OPS = int(os.environ.get("REPRO_CHAOS_OPS", "1000"))

#: The shared-subnode scheduler layout: two branches, an intrusive list and
#: a shared residual node — the layout with the most distinct interleaving
#: points (registry entries, intrusive links, shared cells) per operation.
SHARED_LAYOUT = (
    "[ns, pid -> htable (state -> htable @rec)"
    " ; state -> htable (ns, pid -> ilist @rec)] where @rec = {cpu}"
)

COLUMNS = ("ns", "pid", "state", "cpu")
DOMAINS = {"ns": [0, 1, 2], "pid": [0, 1, 2, 3], "state": ["R", "S", "W"], "cpu": [0, 1]}

#: Site prefixes that can actually fire per tier (the sweep arms *every*
#: registered site; these are the ones whose firing we assert coverage of).
TIER_PREFIXES = {
    "reference": ("reference.",),
    "interpreted": ("instance.", "structures."),
    "compiled": ("codegen.",),
}


def scheduler_spec():
    return RelationSpec("ns, pid, state, cpu", fds=["ns, pid -> state, cpu"], name="process")


def make_tier(tier, enforce_fds):
    spec = scheduler_spec()
    if tier == "reference":
        return ReferenceRelation(spec, enforce_fds=enforce_fds)
    if tier == "interpreted":
        return DecomposedRelation(spec, SHARED_LAYOUT, enforce_fds=enforce_fds)
    return compile_relation(spec, SHARED_LAYOUT)(enforce_fds=enforce_fds)


def random_full_tuple(rng):
    return Tuple({c: rng.choice(DOMAINS[c]) for c in COLUMNS})


def random_pattern(rng, max_columns=3):
    chosen = rng.sample(COLUMNS, k=rng.randint(0, max_columns))
    return Tuple({c: rng.choice(DOMAINS[c]) for c in chosen})


@pytest.fixture(autouse=True)
def _clean_injector():
    """Every test starts disarmed with fresh firing stats and ends disarmed."""
    FAULTS.disarm()
    FAULTS.reset_stats()
    yield
    FAULTS.disarm()


def test_sweep_surface_has_at_least_25_sites():
    """The acceptance floor: ≥ 25 registered sites across all layers."""
    sites = fault_sites()
    assert len(sites) >= 25, sites
    for prefix in ("structures.", "instance.", "codegen.", "reference.", "live."):
        assert any(s.startswith(prefix) for s in sites), f"no {prefix}* sites"


def test_inject_context_manager_arms_and_always_disarms():
    with inject("reference.insert") as injector:
        assert injector.armed == ("reference.insert", 1)
    assert FAULTS.armed is None
    with pytest.raises(ReproError, match="unknown fault site"):
        FAULTS.arm("no.such.site")


def _faulted(mutate, relation, alpha_before):
    """Apply *mutate* to *relation* under the currently armed fault.

    If the fault fires, assert the operation rolled back completely (α is
    byte-identical to *alpha_before*), then retry disarmed.  Returns the
    FD error the (possibly retried) operation raised, or ``None``.
    """
    try:
        mutate(relation)
        return None
    except FunctionalDependencyError as error:
        return error
    except FaultInjected:
        assert relation.to_relation() == alpha_before, (
            "a faulted operation left partial effects behind"
        )
        try:
            mutate(relation)  # the one-shot plan disarmed itself: must succeed
            return None
        except FunctionalDependencyError as error:
            return error


@pytest.mark.parametrize("enforce_fds", [True, False], ids=["fd-on", "fd-off"])
@pytest.mark.parametrize("tier", ["reference", "interpreted", "compiled"])
def test_chaos_differential(tier, enforce_fds):
    """The seeded differential with a fault armed at a new site every step.

    Sites cycle through the *entire* registry (so every site is swept) with
    the target hit index deepening on every full cycle — later hits land at
    interleaving points deeper inside multi-branch walks.
    """
    rng = random.Random(0xFA117 + (1 if enforce_fds else 0))
    relation = make_tier(tier, enforce_fds)
    mirror = ReferenceRelation(scheduler_spec(), enforce_fds=enforce_fds)
    sites = fault_sites()

    for step in range(CHAOS_OPS):
        site = sites[step % len(sites)]
        on_hit = (step // len(sites)) % 3 + 1
        roll = rng.random()
        alpha_before = mirror.to_relation()

        FAULTS.arm(site, on_hit)
        try:
            if roll < 0.45:
                tup = random_full_tuple(rng)
                op = lambda r: r.insert(tup)  # noqa: E731
            elif roll < 0.65:
                pattern = random_pattern(rng)
                op = lambda r: r.remove(pattern)  # noqa: E731
            elif roll < 0.85:
                pattern = random_pattern(rng, max_columns=2)
                changes = random_pattern(rng, max_columns=2)
                op = lambda r: r.update(pattern, changes)  # noqa: E731
            else:
                pattern = random_pattern(rng)
                output = rng.sample(COLUMNS, k=rng.randint(1, 4))
                try:
                    got = relation.query(pattern, output)
                except FaultInjected:
                    got = relation.query(pattern, output)  # reads mutate nothing
                FAULTS.disarm()
                assert set(got) == set(mirror.query(pattern, output))
                continue
            tier_error = _faulted(op, relation, alpha_before)
        finally:
            FAULTS.disarm()

        mirror_error = None
        try:
            op(mirror)
        except FunctionalDependencyError as error:
            mirror_error = error
        assert (tier_error is None) == (mirror_error is None), (
            f"[{tier}] FD enforcement diverged at step {step} (site {site!r}): "
            f"tier={tier_error!r}, mirror={mirror_error!r}"
        )

        assert relation.to_relation() == mirror.to_relation(), (
            f"[{tier}] α diverged from the mirror at step {step} (site {site!r})"
        )
        if step % 100 == 0 or step == CHAOS_OPS - 1:
            check = getattr(relation, "check_well_formed", None)
            if check is not None:
                check()

    # The sweep must have actually exercised this tier's own sites, not
    # just armed them: the seeded mix fires many distinct ones.
    fired = set(FAULTS.fired_sites())
    relevant = {
        s for s in fired if s.startswith(TIER_PREFIXES[tier])
    }
    # The reference tier owns only 3 sites (one per mutator, each guarded
    # by duplicate/FD early-outs), so its quick-mode floor is lower; the
    # deterministic test below covers each of its sites individually.
    floor = (1 if tier == "reference" else 3) if CHAOS_OPS >= 250 else 1
    assert len(relevant) >= floor, (
        f"[{tier}] sweep fired only {sorted(relevant)} of its own sites "
        f"(all fired: {sorted(fired)})"
    )


@pytest.mark.parametrize("enforce_fds", [True, False], ids=["fd-on", "fd-off"])
def test_reference_atomic_commit_per_site(enforce_fds):
    """Each reference.* site, deterministically: the oracle's compute-then-
    swap commit means a fault leaves the stored set byte-identical."""
    relation = ReferenceRelation(scheduler_spec(), enforce_fds=enforce_fds)
    relation.insert(t(ns=0, pid=0, state="R", cpu=0))
    relation.insert(t(ns=0, pid=1, state="S", cpu=1))
    before = relation.to_relation()

    with inject("reference.insert"):
        with pytest.raises(FaultInjected):
            relation.insert(t(ns=1, pid=0, state="W", cpu=0))
    assert relation.to_relation() == before
    with inject("reference.remove"):
        with pytest.raises(FaultInjected):
            relation.remove(t(ns=0))
    assert relation.to_relation() == before
    with inject("reference.update"):
        with pytest.raises(FaultInjected):
            relation.update(t(pid=1), t(cpu=0))
    assert relation.to_relation() == before

    # Disarmed retries all land.
    relation.insert(t(ns=1, pid=0, state="W", cpu=0))
    relation.update(t(pid=1), t(cpu=0))
    relation.remove(t(ns=0))
    assert len(relation) == 1


# -- the self-healing live relation ------------------------------------------------


def live_relation(**policy_overrides):
    """A live interpreted relation on a deliberately poor layout, warmed up
    with a lookup-heavy workload so an unfaulted re-tune *will* swap."""
    policy = {"auto": False, "min_ops": 1, "max_failures": 3, "migrate_batch": 4}
    policy.update(policy_overrides)
    spec = scheduler_spec()
    rel = repro.open(
        spec,
        "ns, pid -> dlist {state, cpu}",
        tier="interpreted",
        live=True,
        policy=policy,
    )
    for i in range(48):
        rel.insert(t(ns=i % 3, pid=i % 4, state="R", cpu=i % 2))
    for i in range(48):
        rel.query(t(ns=i % 3, pid=i % 4))
    return rel


@pytest.mark.parametrize(
    "site, error_type, stage",
    [
        ("live.retune.tune", RetuneFailed, "tune"),
        ("live.retune.compile", RetuneFailed, "compile"),
        ("live.retune.verify", MigrationError, "verify"),
        ("live.migrate.copy", MigrationError, "copy"),
        ("live.swap", MigrationError, "swap"),
    ],
)
def test_retune_stage_failure_never_corrupts(site, error_type, stage):
    """A fault at each re-tune/migration stage aborts cleanly: the old
    backing keeps serving, α is untouched, the failure is recorded."""
    rel = live_relation()
    before = rel.to_relation()
    with inject(site):
        with pytest.raises(error_type) as excinfo:
            rel.retune()
    assert excinfo.value.stage == stage
    assert isinstance(excinfo.value.__cause__, FaultInjected)
    assert rel.generation == 0
    assert rel.to_relation() == before
    rel.check_well_formed()
    stats = rel.live_stats()
    assert stats["failures"] == 1
    assert stats["consecutive_failures"] == 1
    assert stats["backoff_ops"] > 0
    assert stats["last_error"] and stage in stats["last_error"]
    if stage in ("compile", "verify", "copy", "swap"):
        assert stats["quarantined"], "failed layout was not quarantined"
    # Still fully serviceable after the failure (the warm-up saturated the
    # key domain, so replace a row rather than growing the relation).
    rel.remove(t(ns=2, pid=3))
    rel.insert(t(ns=2, pid=3, state="W", cpu=1))
    assert len(rel) == len(before.tuples)
    assert rel.query(t(ns=2, pid=3))[0]["state"] == "W"


def test_quarantined_layout_is_never_retried():
    rel = live_relation()
    with inject("live.retune.verify"):
        with pytest.raises(MigrationError):
            rel.retune()
    quarantined = rel.live_stats()["quarantined"]
    assert quarantined
    # The next re-tune avoids the quarantined winner: it either swaps to a
    # different layout or keeps the current one — never the failed one.
    report = rel.retune()
    assert report.error is None
    if report.swapped:
        assert report.new_layout not in quarantined
    rel.check_well_formed()


def test_circuit_breaker_opens_and_resets():
    rel = live_relation(max_failures=2)
    for _ in range(2):
        with inject("live.retune.tune"):
            with pytest.raises(RetuneFailed):
                rel.retune()
    stats = rel.live_stats()
    assert stats["circuit_open"]
    assert stats["consecutive_failures"] == 2
    # Explicit re-tunes are refused while open; automatic ones are skipped.
    with pytest.raises(RetuneFailed, match="circuit breaker open") as excinfo:
        rel.retune()
    assert excinfo.value.stage == "circuit"
    assert rel.maybe_retune() is None
    # The relation itself never stops serving.
    rel.update(t(ns=0, pid=0), t(state="S"))
    assert rel.query(t(ns=0, pid=0))[0]["state"] == "S"
    rel.reset_circuit()
    assert not rel.live_stats()["circuit_open"]
    report = rel.retune()
    assert report.error is None


def test_exponential_backoff_defers_automatic_retunes():
    rel = live_relation(min_ops=4, backoff_factor=4.0, max_failures=10)
    with inject("live.retune.tune"):
        with pytest.raises(RetuneFailed):
            rel.retune()
    backoff = rel.live_stats()["backoff_ops"]
    assert backoff == 16  # min_ops * backoff_factor ** 1
    # Fewer than `backoff` ops since the failure: the drift check is deferred.
    for i in range(backoff - 1):
        rel.query(t(ns=i % 3))
    assert rel.maybe_retune() is None
    rel.query(t(ns=0))
    report = rel.maybe_retune()
    assert report is not None and report.error is None


def test_dual_write_interrupted_mid_window_lands_in_one_backing():
    """Satellite: a dual-write migration interrupted mid-window aborts with
    every write applied to exactly one consistent backing (the old one)."""
    rng = random.Random(20110607)
    # migrate_batch=1 keeps the window open across all the steps below.
    rel = live_relation(migrate_batch=1)
    mirror = ReferenceRelation(scheduler_spec())
    for tup in rel.to_relation().tuples:
        mirror.insert(tup)

    report = rel.retune(dual_write=True)
    assert rel.live_stats()["migration_open"]
    assert report.dual_write

    # Interleave user writes with the copy pump; one of them faults on the
    # dual-write mirror into the target.
    fault_at = 2
    for step in range(12):
        ns, pid = rng.choice(DOMAINS["ns"]), rng.choice(DOMAINS["pid"])
        state, cpu = rng.choice(DOMAINS["state"]), rng.choice(DOMAINS["cpu"])
        op_roll = rng.random()
        if step == fault_at:
            FAULTS.arm("live.migrate.dual_write")
        try:
            if op_roll < 0.6:
                tup = t(ns=ns, pid=pid, state=state, cpu=cpu)
                rel.remove(t(ns=ns, pid=pid))
                mirror.remove(t(ns=ns, pid=pid))
                rel.insert(tup)
                mirror.insert(tup)
            else:
                rel.remove(t(ns=ns, pid=pid))
                mirror.remove(t(ns=ns, pid=pid))
        finally:
            FAULTS.disarm()
        # After every step — faulted or not — the facade agrees with the
        # mirror: writes never land in a half-migrated limbo.
        assert rel.to_relation() == mirror.to_relation(), f"diverged at step {step}"

    stats = rel.live_stats()
    assert not stats["migration_open"], "window should have aborted"
    assert rel.generation == 0, "aborted migration must not swap"
    assert stats["failures"] == 1
    assert stats["quarantined"]
    assert "dual-write" in stats["last_error"]
    rel.check_well_formed()

    # After reset, a clean re-tune still works and preserves the contents.
    rel.reset_circuit(clear_quarantine=True)
    final = rel.to_relation()
    report = rel.retune(dual_write=True)
    rel.finish_migration()
    assert rel.generation == 1
    assert rel.to_relation() == final


def test_dual_write_copy_pump_fault_aborts_without_failing_the_user_op():
    rel = live_relation()
    rel.retune(dual_write=True)
    before = rel.to_relation()
    with inject("live.migrate.copy"):
        rel.query(t(ns=0))  # pumps the window; the user's query must not raise
    stats = rel.live_stats()
    assert not stats["migration_open"]
    assert rel.generation == 0
    assert rel.to_relation() == before
    assert "copy" in stats["last_error"]


def test_background_retune_happy_path():
    rel = live_relation(background=True)
    before = rel.to_relation()
    report = rel.retune()
    assert report.pending
    assert rel.live_stats()["retune_pending"]
    finished = rel.finish_retune()
    assert finished is report and not report.pending
    assert report.error is None and report.swapped
    assert rel.generation == 1
    assert rel.to_relation() == before
    rel.check_well_formed()


def test_background_retune_watchdog_abandons_stragglers(monkeypatch):
    import repro.live as live_module

    real_autotune = live_module.autotune

    def slow_autotune(*args, **kwargs):
        time.sleep(0.2)
        return real_autotune(*args, **kwargs)

    monkeypatch.setattr(live_module, "autotune", slow_autotune)
    rel = live_relation(background=True, retune_timeout=0.01)
    before = rel.to_relation()
    report = rel.retune()
    time.sleep(0.05)
    finished = rel._poll_background_tune()
    assert finished is report
    assert report.error is not None and "watchdog" in report.error
    assert rel.generation == 0
    assert rel.to_relation() == before
    stats = rel.live_stats()
    assert stats["failures"] == 1 and not stats["retune_pending"]


def test_background_tune_fault_is_collected_on_the_caller_thread():
    rel = live_relation(background=True)
    before = rel.to_relation()
    with inject("live.retune.tune"):
        report = rel.retune()
        finished = rel.finish_retune()
    assert finished is report
    assert report.error is not None and "tune" in report.error
    assert rel.generation == 0
    assert rel.to_relation() == before


def test_open_relation_structured_errors_name_valid_choices():
    spec = scheduler_spec()
    with pytest.raises(LiveRelationError, match="valid tiers: auto, reference"):
        repro.open(spec, tier="compliled")
    with pytest.raises(LiveRelationError, match="valid structures: "):
        repro.open(spec, "ns, pid -> zipmap {state, cpu}")
    with pytest.raises(LiveRelationError, match="Decomposition or a layout string"):
        repro.open(spec, layout=42)


def test_faults_are_exported_at_the_top_level():
    assert repro.FAULTS is FAULTS
    assert repro.fault_sites() == fault_sites()
    with repro.inject("reference.insert"):
        assert FAULTS.active


def test_register_site_enforces_the_dotted_namespace():
    from repro.faults import FaultInjector

    inj = FaultInjector()
    assert inj.register_site("custom.layer.op") == "custom.layer.op"
    assert inj.register_site("custom.layer.op") == "custom.layer.op"  # idempotent
    assert inj.sites() == ["custom.layer.op"]
    for bad in ("", "nodots", "Upper.case", "has space.op", "trailing.", ".leading"):
        with pytest.raises(ReproError, match="site name|non-empty"):
            inj.register_site(bad)
    assert inj.sites() == ["custom.layer.op"]


def test_assert_all_sites_known_accepts_registered_and_names_unknown():
    from repro.faults import assert_all_sites_known

    sites = fault_sites()
    assert_all_sites_known(sites)  # the full registry round-trips
    assert_all_sites_known([])
    assert_all_sites_known(iter(sites[:3]))  # any iterable
    with pytest.raises(ReproError, match="'codegen.insert.bogus'") as exc:
        assert_all_sites_known([sites[0], "codegen.insert.bogus", "zzz.unknown"])
    # Every unknown name is listed, known ones are not.
    assert "'zzz.unknown'" in str(exc.value)
    assert "unknown fault site(s): 'codegen.insert.bogus'" in str(exc.value)
