"""The Section 4 plan IR: cross-branch joins, Figure 8 validity, witnesses.

Covers the recursive plan IR introduced for split-pattern queries:

* key-projection branches are adequate and instances over them stay
  well-formed (projected branch agreement);
* the planner answers a split pattern with a :class:`JoinPlan` once live
  sizes show the join paying off, and the join is strictly cheaper than
  the best single-path plan on counted accesses;
* every plan the planner returns passes the Figure 8 FD-closure validity
  check, and hand-built invalid plans are rejected with diagnostics naming
  the underdetermined columns;
* the generated-class cache of :mod:`repro.codegen` (satellite of the same
  PR) reuses compiled classes keyed by canonical shape.
"""

import random

import pytest

from repro.codegen import (
    clear_codegen_cache,
    codegen_cache_stats,
    compile_relation,
)
from repro.core import ReferenceRelation, RelationSpec, Tuple
from repro.core.errors import QueryPlanError
from repro.decomposition import (
    DecomposedRelation,
    JoinPlan,
    LookupStep,
    QueryPlan,
    converging_plans,
    execute_plan,
    parse_decomposition,
    path_steps,
    plan_query,
    validate_plan,
)
from repro.decomposition.model import Path
from repro.structures import COUNTER

GRAPH_SPEC = RelationSpec("src, dst, weight", fds=["src, dst -> weight"], name="edge")

#: Primary full-coverage branch + dst-keyed key-projection branch.
SPLIT = "[src -> htable (dst -> htable {weight}) ; dst -> htable (src -> htable {})]"


def populated(n_edges=200, nodes=40, seed=3):
    rng = random.Random(seed)
    rel = DecomposedRelation(GRAPH_SPEC, SPLIT)
    ref = ReferenceRelation(GRAPH_SPEC)
    edges = {}
    while len(edges) < n_edges:
        edges.setdefault(
            (rng.randrange(nodes), rng.randrange(nodes)), rng.randrange(9)
        )
    for (s, d), w in edges.items():
        tup = Tuple(src=s, dst=d, weight=w)
        rel.insert(tup)
        ref.insert(tup)
    return rel, ref


def join_friendly_sizes(decomposition):
    """Per-edge size estimates with wide roots and thin second levels —
    the regime where probing the primary per secondary row beats scanning."""
    root_edges = set(map(id, decomposition.root.edges))
    return {
        e: 64.0 if id(e) in root_edges else 2.0
        for node in decomposition.nodes()
        for e in node.edges
    }


class TestKeyProjectionInstances:
    def test_split_layout_is_adequate_and_well_formed(self):
        rel, ref = populated()
        rel.check_well_formed()
        assert rel.to_relation() == ref.to_relation()

    def test_projected_branch_agreement_detects_corruption(self):
        from repro.core.errors import WellFormednessError

        rel, _ = populated(n_edges=20, nodes=6)
        secondary = rel.instance.root.containers[1]
        key = next(iter(secondary.keys()))
        secondary.remove(key)
        with pytest.raises(WellFormednessError, match="disagree"):
            rel.check_well_formed()

    def test_removal_through_the_key_projection_branch(self):
        rel, ref = populated(n_edges=40, nodes=8)
        victim = next(iter(ref.to_relation().tuples))
        rel.remove(victim.project(["src", "dst"]))
        ref.remove(victim.project(["src", "dst"]))
        rel.check_well_formed()
        assert rel.to_relation() == ref.to_relation()


class TestJoinPlanning:
    def test_live_sizes_flip_the_split_pattern_to_a_join(self):
        rel, _ = populated()
        plan = rel.plan_for(frozenset({"dst"}))
        assert isinstance(plan, JoinPlan)
        assert plan.style == "probe"
        # The probe side becomes pure lookups once the build side binds src.
        assert all(isinstance(s, LookupStep) for s in plan.probe.steps)

    def test_symbolic_ranking_keeps_the_single_path(self):
        # At the uniform symbolic size the join cannot win (in-degree looks
        # as large as the whole src level), so the structural choice is the
        # scanning chain — the flip is a live-size decision.
        d = parse_decomposition(SPLIT)
        plan = plan_query(d, {"dst"}, spec=GRAPH_SPEC)
        assert isinstance(plan, QueryPlan)

    def test_fully_bound_pattern_needs_no_join(self):
        rel, _ = populated()
        plan = rel.plan_for(frozenset({"src", "dst"}))
        assert isinstance(plan, QueryPlan)
        assert all(isinstance(s, LookupStep) for s in plan.steps)

    def test_join_results_match_the_reference(self):
        rel, ref = populated()
        for dst in range(8):
            assert set(rel.query(Tuple(dst=dst))) == set(ref.query(Tuple(dst=dst)))
            assert set(rel.query(Tuple(dst=dst), "src, weight")) == set(
                ref.query(Tuple(dst=dst), "src, weight")
            )

    def test_join_is_strictly_cheaper_than_the_best_single_path(self):
        rel, _ = populated()
        sizes = rel.instance.edge_sizes()
        join = plan_query(rel.decomposition, {"dst"}, sizes=sizes, spec=GRAPH_SPEC)
        single = plan_query(
            rel.decomposition, {"dst"}, sizes=sizes, spec=GRAPH_SPEC, allow_join=False
        )
        assert isinstance(join, JoinPlan) and isinstance(single, QueryPlan)
        pattern = Tuple(dst=1)
        with COUNTER:
            join_rows = set(execute_plan(join, rel.instance, pattern))
            join_accesses = COUNTER.accesses
        with COUNTER:
            single_rows = set(execute_plan(single, rel.instance, pattern))
            single_accesses = COUNTER.accesses
        assert join_rows == single_rows
        assert join_accesses < single_accesses

    def test_hash_style_join_executes_correctly(self):
        # Hand-build the hash flavour (both sides enumerated independently,
        # matched on the full common column set) and check it agrees with
        # the planner's probe flavour.
        rel, ref = populated()
        d = rel.decomposition
        paths = d.paths()
        pattern_cols = frozenset({"dst"})
        build = QueryPlan(paths[1], path_steps(paths[1], pattern_cols), pattern_cols)
        probe = QueryPlan(paths[0], path_steps(paths[0], pattern_cols), pattern_cols)
        plan = JoinPlan(
            build, probe, paths[0].covered & paths[1].covered, pattern_cols, "hash"
        )
        validate_plan(plan, GRAPH_SPEC)
        for dst in range(6):
            got = set(execute_plan(plan, rel.instance, Tuple(dst=dst)))
            assert got == set(ref.query(Tuple(dst=dst)))

    def test_shared_leaf_convergence_stays_a_degenerate_join(self, scheduler_spec):
        shared = parse_decomposition(
            "[ns, pid -> htable (state -> htable @rec)"
            " ; state -> htable (ns, pid -> ilist @rec)] where @rec = {cpu}"
        )
        plan = plan_query(shared, "ns, pid, state", spec=scheduler_spec)
        assert isinstance(plan, QueryPlan) and plan.leaf_shared
        assert converging_plans(shared, "ns, pid, state")


class TestFigure8Validity:
    def test_every_planner_plan_is_valid(self):
        rel, _ = populated()
        cols = sorted(GRAPH_SPEC.columns)
        sizes = rel.instance.edge_sizes()
        for mask in range(2 ** len(cols)):
            subset = frozenset(c for i, c in enumerate(cols) if mask >> i & 1)
            plan = plan_query(rel.decomposition, subset, sizes=sizes, spec=GRAPH_SPEC)
            witness = validate_plan(plan, GRAPH_SPEC)
            assert witness.valid and not witness.missing

    def test_truncated_chain_rejected_naming_missing_columns(self):
        d = parse_decomposition(SPLIT)
        primary = d.paths()[0]
        # A chain stopping after the src level binds {src} only.
        truncated = Path(
            primary.edges[:1], primary.edges[0].child, primary.edge_indices[:1]
        )
        plan = QueryPlan(
            truncated, path_steps(truncated, frozenset({"src"})), frozenset({"src"})
        )
        with pytest.raises(QueryPlanError) as excinfo:
            validate_plan(plan, GRAPH_SPEC)
        message = str(excinfo.value)
        assert "dst" in message and "weight" in message

    def test_plan_ignoring_its_own_pattern_column_rejected(self):
        # A chain over the key-projection path never reads weight; a plan
        # claiming to answer a {weight} pattern with it would silently
        # ignore the constraint, so validation must refuse it.
        d = parse_decomposition(SPLIT)
        secondary = d.paths()[1]
        plan = QueryPlan(
            secondary,
            path_steps(secondary, frozenset({"weight"})),
            frozenset({"weight"}),
        )
        with pytest.raises(QueryPlanError, match="weight"):
            validate_plan(plan, GRAPH_SPEC)

    def test_non_lossless_join_rejected(self):
        d = parse_decomposition(SPLIT)
        paths = d.paths()
        pattern_cols = frozenset()
        build = QueryPlan(paths[1], path_steps(paths[1], pattern_cols), pattern_cols)
        probe = QueryPlan(paths[0], path_steps(paths[0], pattern_cols), pattern_cols)
        # Matching only on dst under-determines both sides: {dst} closes
        # to nothing further, so gluing rows could fabricate tuples.
        bogus = JoinPlan(build, probe, frozenset({"dst"}), pattern_cols, "hash")
        with pytest.raises(QueryPlanError, match="lossless"):
            validate_plan(bogus, GRAPH_SPEC)

    def test_witness_is_printed_by_describe(self):
        rel, _ = populated()
        plan = rel.plan_for(frozenset({"dst"}))
        text = plan.describe()
        assert "binds" in text and "checks" in text and "closes" in text

    def test_explicit_residual_filter_is_printed(self):
        rel, _ = populated()
        plan = plan_query(
            rel.decomposition,
            {"src", "weight"},
            sizes=rel.instance.edge_sizes(),
            spec=GRAPH_SPEC,
        )
        assert "filter[weight]" in plan.describe()


class TestCompiledJoinTier:
    def test_compiled_plan_table_contains_the_join(self):
        d = parse_decomposition(SPLIT)
        cls = compile_relation(GRAPH_SPEC, d, sizes=join_friendly_sizes(d))
        assert "join[" in cls.__source__

    def test_compiled_join_agrees_with_reference_and_counts_less(self):
        d = parse_decomposition(SPLIT)
        join_cls = compile_relation(GRAPH_SPEC, d, sizes=join_friendly_sizes(d))
        scan_cls = compile_relation(GRAPH_SPEC, parse_decomposition(SPLIT))
        joined, scanned = join_cls(), scan_cls()
        _, ref = populated()
        for tup in sorted(ref.to_relation().tuples, key=Tuple.sort_key):
            joined.insert(tup)
            scanned.insert(tup)
        joined.check_well_formed()
        with COUNTER:
            join_rows = set(joined.query(Tuple(dst=1)))
            join_accesses = COUNTER.accesses
        with COUNTER:
            scan_rows = set(scanned.query(Tuple(dst=1)))
            scan_accesses = COUNTER.accesses
        assert join_rows == scan_rows == set(ref.query(Tuple(dst=1)))
        assert join_accesses < scan_accesses


class TestCompiledHashJoin:
    def test_generated_hash_join_code_agrees_with_reference(self, monkeypatch):
        """Force a hash-flavour join into the compiled dispatch table and
        execute the generated temporary-table code against the reference."""
        import repro.codegen.compiler as compiler_mod

        clear_codegen_cache()
        d = parse_decomposition(SPLIT)
        paths = d.paths()
        pattern_cols = frozenset({"dst"})
        build = QueryPlan(paths[1], path_steps(paths[1], pattern_cols), pattern_cols)
        probe = QueryPlan(paths[0], path_steps(paths[0], pattern_cols), pattern_cols)
        hash_plan = JoinPlan(
            build, probe, paths[0].covered & paths[1].covered, pattern_cols, "hash"
        )
        validate_plan(hash_plan, GRAPH_SPEC)

        real_plan_query = compiler_mod.plan_query

        def forced(decomposition, subset, *args, **kwargs):
            if decomposition is d and frozenset(subset) == pattern_cols:
                return hash_plan
            return real_plan_query(decomposition, subset, *args, **kwargs)

        monkeypatch.setattr(compiler_mod, "plan_query", forced)
        cls = compile_relation(GRAPH_SPEC, d, class_name="Compiled_hash_join_test")
        assert "_tbl" in cls.__source__  # The temporary-table emission ran.

        compiled = cls()
        _, ref = populated()
        for tup in sorted(ref.to_relation().tuples, key=Tuple.sort_key):
            compiled.insert(tup)
        compiled.check_well_formed()
        with COUNTER:
            for dst in range(10):
                assert set(compiled.query(Tuple(dst=dst))) == set(
                    ref.query(Tuple(dst=dst))
                )
            assert COUNTER.accesses  # The temp inserts/probes are charged.


class TestCodegenClassCache:
    def test_repeat_compilations_hit_the_cache(self):
        clear_codegen_cache()
        first = compile_relation(GRAPH_SPEC, SPLIT)
        assert codegen_cache_stats() == {"hits": 0, "misses": 1, "size": 1}
        second = compile_relation(GRAPH_SPEC, SPLIT)
        assert second is first
        assert codegen_cache_stats()["hits"] == 1

    def test_structure_aliases_share_one_entry(self, scheduler_spec):
        clear_codegen_cache()
        avl = compile_relation(scheduler_spec, "ns, pid -> avl {state, cpu}")
        btree = compile_relation(scheduler_spec, "ns, pid -> btree {state, cpu}")
        assert btree is avl
        assert codegen_cache_stats() == {"hits": 1, "misses": 1, "size": 1}

    def test_sizes_with_a_layout_string_are_rejected(self):
        from repro.core.errors import DecompositionError

        d = parse_decomposition(SPLIT)
        with pytest.raises(DecompositionError, match="MapEdge identity"):
            compile_relation(GRAPH_SPEC, SPLIT, sizes=join_friendly_sizes(d))

    def test_different_fds_or_sizes_miss(self, scheduler_spec):
        clear_codegen_cache()
        compile_relation(GRAPH_SPEC, SPLIT)
        no_fd_spec = RelationSpec(
            "src, dst, weight", fds=["src, dst -> weight", "weight -> weight"], name="edge"
        )
        compile_relation(no_fd_spec, SPLIT)
        d = parse_decomposition(SPLIT)
        compile_relation(GRAPH_SPEC, d, sizes=join_friendly_sizes(d))
        assert codegen_cache_stats()["misses"] == 3
