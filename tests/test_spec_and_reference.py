"""RelationSpec validation and the reference implementation's five operations."""

import pytest

from repro.core import ReferenceRelation, Relation, RelationSpec, t
from repro.core.errors import (
    FunctionalDependencyError,
    OperationError,
    SpecificationError,
    TupleError,
)


class TestRelationSpec:
    def test_requires_columns(self):
        with pytest.raises(SpecificationError):
            RelationSpec([])

    def test_fds_must_mention_spec_columns(self):
        with pytest.raises(SpecificationError):
            RelationSpec("a, b", fds=["a -> zz"])

    def test_is_key_and_minimal_keys(self, scheduler_spec):
        assert scheduler_spec.is_key("ns, pid")
        assert scheduler_spec.is_key("ns, pid, state")
        assert not scheduler_spec.is_key("ns")
        assert scheduler_spec.minimal_keys() == [frozenset({"ns", "pid"})]

    def test_check_full_tuple(self, scheduler_spec):
        with pytest.raises(TupleError):
            scheduler_spec.check_full_tuple(t(ns=1, pid=2))
        with pytest.raises(TupleError):
            scheduler_spec.check_full_tuple(t(ns=1, pid=2, state="R", cpu=0, extra=1))
        scheduler_spec.check_full_tuple(t(ns=1, pid=2, state="R", cpu=0))

    def test_check_partial_tuple(self, scheduler_spec):
        with pytest.raises(TupleError):
            scheduler_spec.check_partial_tuple(t(bogus=1))
        scheduler_spec.check_partial_tuple(t(ns=1))

    def test_check_relation_rejects_fd_violations(self, scheduler_spec):
        bad = Relation(
            scheduler_spec.columns,
            [t(ns=1, pid=1, state="R", cpu=0), t(ns=1, pid=1, state="S", cpu=0)],
        )
        with pytest.raises(FunctionalDependencyError):
            scheduler_spec.check_relation(bad)


class TestReferenceRelation:
    @pytest.fixture
    def ref(self, scheduler_spec) -> ReferenceRelation:
        ref = ReferenceRelation(scheduler_spec)
        ref.insert(t(ns=1, pid=1, state="R", cpu=0))
        ref.insert(t(ns=1, pid=2, state="S", cpu=1))
        ref.insert(t(ns=2, pid=1, state="R", cpu=1))
        return ref

    def test_insert_is_idempotent(self, ref):
        ref.insert(t(ns=1, pid=1, state="R", cpu=0))
        assert len(ref) == 3

    def test_insert_enforces_fds(self, ref):
        with pytest.raises(FunctionalDependencyError):
            ref.insert(t(ns=1, pid=1, state="X", cpu=9))

    def test_query_projects_and_deduplicates(self, ref):
        states = ref.query(None, "state")
        assert sorted(s["state"] for s in states) == ["R", "S"]

    def test_query_with_pattern(self, ref):
        assert ref.query({"state": "R"}, "ns, pid") == ref.query(t(state="R"), ["ns", "pid"])
        assert len(ref.query({"state": "R"})) == 2

    def test_remove_by_pattern(self, ref):
        ref.remove({"ns": 1})
        assert ref.to_relation() == Relation(
            ref.spec.columns, [t(ns=2, pid=1, state="R", cpu=1)]
        )

    def test_remove_all(self, ref):
        ref.remove()
        assert len(ref) == 0

    def test_update(self, ref):
        ref.update({"ns": 1, "pid": 2}, {"state": "R", "cpu": 0})
        assert ref.query({"ns": 1, "pid": 2}, "state")[0]["state"] == "R"

    def test_update_enforces_fds(self, ref):
        # Collapsing both ns=1 processes onto pid=1 would violate ns,pid -> state,cpu.
        with pytest.raises(FunctionalDependencyError):
            ref.update({"ns": 1}, {"pid": 1})

    def test_contains_and_iteration(self, ref):
        assert t(ns=1, pid=1) in ref
        assert t(ns=9, pid=9) not in ref
        assert len(list(iter(ref))) == 3

    def test_unique_match(self, ref):
        assert ref.unique_match({"ns": 1, "pid": 2})["cpu"] == 1
        assert ref.unique_match({"ns": 9}) is None
        with pytest.raises(OperationError):
            ref.unique_match({"state": "R"})

    def test_load_checks_spec(self, ref, scheduler_spec):
        with pytest.raises(FunctionalDependencyError):
            ref.load(
                Relation(
                    scheduler_spec.columns,
                    [t(ns=1, pid=1, state="R", cpu=0), t(ns=1, pid=1, state="S", cpu=1)],
                )
            )
