"""Relational algebra on the immutable Relation class."""

import pytest

from repro.core import Relation, t
from repro.core.errors import SpecificationError, TupleError


@pytest.fixture
def r() -> Relation:
    return Relation.from_dicts(
        "ns, pid",
        [{"ns": 1, "pid": 1}, {"ns": 1, "pid": 2}, {"ns": 2, "pid": 1}],
    )


class TestConstruction:
    def test_tuples_must_match_columns(self):
        with pytest.raises(TupleError):
            Relation("a, b", [t(a=1)])

    def test_empty(self):
        assert Relation.empty("a").is_empty()

    def test_equality_ignores_tuple_order(self):
        r1 = Relation("a", [t(a=1), t(a=2)])
        r2 = Relation("a", [t(a=2), t(a=1)])
        assert r1 == r2
        assert hash(r1) == hash(r2)


class TestSetOperations:
    def test_union_intersection_difference(self, r):
        other = Relation("ns, pid", [t(ns=1, pid=1), t(ns=9, pid=9)])
        assert len(r | other) == 4
        assert (r & other).tuples == frozenset({t(ns=1, pid=1)})
        assert len(r - other) == 2
        assert len(r ^ other) == 3

    def test_set_operations_require_same_columns(self, r):
        with pytest.raises(SpecificationError):
            r.union(Relation("a", [t(a=1)]))


class TestAlgebra:
    def test_project(self, r):
        assert r.project("ns") == Relation("ns", [t(ns=1), t(ns=2)])

    def test_project_unknown_column(self, r):
        with pytest.raises(SpecificationError):
            r.project("missing")

    def test_select(self, r):
        assert r.select(t(ns=1)) == Relation("ns, pid", [t(ns=1, pid=1), t(ns=1, pid=2)])

    def test_query_is_select_then_project(self, r):
        assert r.query(t(ns=1), "pid") == Relation("pid", [t(pid=1), t(pid=2)])

    def test_natural_join(self):
        left = Relation("a, b", [t(a=1, b=1), t(a=2, b=2)])
        right = Relation("b, c", [t(b=1, c=10), t(b=1, c=11), t(b=3, c=12)])
        joined = left @ right
        assert joined.columns == frozenset({"a", "b", "c"})
        assert joined.tuples == frozenset({t(a=1, b=1, c=10), t(a=1, b=1, c=11)})

    def test_join_with_no_common_columns_is_product(self):
        left = Relation("a", [t(a=1), t(a=2)])
        right = Relation("b", [t(b=3)])
        assert len(left @ right) == 2

    def test_rename(self, r):
        renamed = r.rename({"ns": "namespace"})
        assert renamed.columns == frozenset({"namespace", "pid"})
        with pytest.raises(SpecificationError):
            r.rename({"nope": "x"})
        with pytest.raises(SpecificationError):
            r.rename({"ns": "pid"})


class TestMutationHelpers:
    def test_insert_remove_update(self, r):
        grown = r.insert(t(ns=3, pid=3))
        assert len(grown) == 4 and len(r) == 3
        shrunk = grown.remove(t(ns=1))
        assert shrunk.tuples == frozenset({t(ns=2, pid=1), t(ns=3, pid=3)})
        bumped = r.update(t(ns=1), t(pid=9))
        assert bumped.tuples == frozenset({t(ns=1, pid=9), t(ns=2, pid=1)})

    def test_satisfies(self, r):
        from repro.core import FDSet

        assert r.satisfies(None)
        assert r.satisfies(FDSet(["ns, pid -> ns"]))
        assert not r.satisfies(FDSet(["ns -> pid"]))
