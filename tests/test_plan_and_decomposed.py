"""Query planning and the DecomposedRelation operations."""

import pytest

from repro.core import ReferenceRelation, t
from repro.core.errors import (
    FunctionalDependencyError,
    QueryPlanError,
    SpecificationError,
    TupleError,
)
from repro.decomposition import (
    DecomposedRelation,
    LookupStep,
    ScanStep,
    execute_plan,
    parse_decomposition,
    plan_query,
)

SCHEDULER = (
    "[ns -> htable pid -> btree {state, cpu} ; state -> htable (ns, pid -> dlist {cpu})]"
)


class TestPlanner:
    @pytest.fixture
    def decomposition(self):
        return parse_decomposition(SCHEDULER, name="scheduler")

    def test_primary_key_pattern_is_all_lookups(self, decomposition):
        plan = plan_query(decomposition, "ns, pid")
        assert plan.scan_count == 0
        assert plan.lookup_count == 2
        assert [type(s) for s in plan.steps] == [LookupStep, LookupStep]

    def test_state_pattern_uses_the_state_index(self, decomposition):
        plan = plan_query(decomposition, "state")
        assert isinstance(plan.steps[0], LookupStep)
        assert plan.steps[0].edge.key == frozenset({"state"})
        assert plan.scan_count == 1

    def test_full_scan_prefers_cheap_path(self, decomposition):
        plan = plan_query(decomposition, [])
        assert plan.scan_count == len(plan.steps)
        assert all(isinstance(step, ScanStep) for step in plan.steps)

    def test_residual_pattern_columns_are_filtered_not_planned(self, decomposition):
        plan = plan_query(decomposition, "ns, pid, cpu")
        assert plan.scan_count == 0  # cpu is filtered at the leaf

    def test_require_lookup(self, decomposition):
        plan_query(decomposition, "ns, pid", require_lookup=True)
        plan_query(decomposition, "state", require_lookup=False)
        with pytest.raises(QueryPlanError, match="no lookup-only plan"):
            plan_query(decomposition, "cpu", require_lookup=True)

    def test_cost_estimates_rank_plans(self, decomposition):
        keyed = plan_query(decomposition, "ns, pid")
        scan = plan_query(decomposition, [])
        assert keyed.estimated_cost(1000) < scan.estimated_cost(1000)

    def test_plan_describe(self, decomposition):
        assert "lookup" in plan_query(decomposition, "ns, pid").describe()
        assert "scan" in plan_query(decomposition, []).describe()

    def test_execute_rejects_pattern_missing_planned_columns(
        self, decomposition, scheduler_spec
    ):
        from repro.decomposition import DecompositionInstance

        instance = DecompositionInstance(decomposition, scheduler_spec)
        with pytest.raises(QueryPlanError, match="cannot execute"):
            list(execute_plan(plan_query(decomposition, "ns"), instance, t(state="R")))
        # A pattern binding fewer columns than the plan's lookups need must
        # be rejected up front, not crash inside a lookup step.
        with pytest.raises(QueryPlanError, match="cannot execute"):
            list(execute_plan(plan_query(decomposition, "ns, pid"), instance, t(ns=1)))

    def test_execute_accepts_pattern_binding_extra_columns(
        self, decomposition, scheduler_spec
    ):
        from repro.decomposition import DecompositionInstance

        instance = DecompositionInstance(decomposition, scheduler_spec)
        instance.insert_tuple(t(ns=1, pid=1, state="R", cpu=0))
        instance.insert_tuple(t(ns=1, pid=2, state="R", cpu=1))
        plan = plan_query(decomposition, "ns")
        results = list(execute_plan(plan, instance, t(ns=1, cpu=1)))
        assert results == [t(ns=1, pid=2, state="R", cpu=1)]


class TestDecomposedRelationOps:
    @pytest.fixture(params=["ns, pid -> htable {state, cpu}", SCHEDULER])
    def rel(self, request, scheduler_spec):
        rel = DecomposedRelation(scheduler_spec, request.param)
        rel.insert(t(ns=1, pid=1, state="R", cpu=0))
        rel.insert(t(ns=1, pid=2, state="S", cpu=1))
        rel.insert(t(ns=2, pid=1, state="R", cpu=1))
        return rel

    def test_accepts_textual_decomposition(self, scheduler_spec):
        rel = DecomposedRelation(scheduler_spec, "ns, pid -> htable {state, cpu}")
        assert rel.decomposition.structures() == ["htable"]

    def test_insert_query_roundtrip(self, rel):
        assert len(rel) == 3
        assert rel.query({"ns": 1, "pid": 1}, "state")[0]["state"] == "R"

    def test_insert_is_idempotent(self, rel):
        rel.insert(t(ns=1, pid=1, state="R", cpu=0))
        assert len(rel) == 3

    def test_insert_rejects_partial_tuple(self, rel):
        with pytest.raises(TupleError):
            rel.insert(t(ns=1, pid=9))

    def test_insert_enforces_fds(self, rel):
        with pytest.raises(FunctionalDependencyError):
            rel.insert(t(ns=1, pid=1, state="Z", cpu=5))
        assert len(rel) == 3  # nothing was clobbered

    def test_unenforced_insert_overwrites_unit(self, scheduler_spec):
        rel = DecomposedRelation(
            scheduler_spec, "ns, pid -> htable {state, cpu}", enforce_fds=False
        )
        rel.insert(t(ns=1, pid=1, state="R", cpu=0))
        rel.insert(t(ns=1, pid=1, state="Z", cpu=5))
        assert rel.query({"ns": 1, "pid": 1}, "state")[0]["state"] == "Z"
        assert len(rel) == 1

    def test_unenforced_insert_evicts_conflicts_from_all_branches(self):
        # Regression: on a branching decomposition an unenforced conflicting
        # insert must remove the displaced tuple from sibling branches too,
        # not leave a stale entry under the old tuple's keys.
        from repro.core import RelationSpec

        spec = RelationSpec("a, b", fds=["a -> b", "b -> a"], name="bijective")
        rel = DecomposedRelation(
            spec, "[a -> htable {b} ; b -> htable {a}]", enforce_fds=False
        )
        rel.insert(t(a=1, b=2))
        rel.insert(t(a=1, b=3))  # violates a -> b against the first tuple
        rel.check_well_formed()
        assert rel.to_relation().tuples == frozenset({t(a=1, b=3)})
        assert rel.query({"b": 2}) == []  # no stale entry in the b-branch
        assert rel.query({"b": 3}) == [t(a=1, b=3)]

    def test_query_deduplicates_projections(self, rel):
        states = rel.query(None, "state")
        assert sorted(s["state"] for s in states) == ["R", "S"]

    def test_query_validates_columns(self, rel):
        with pytest.raises(TupleError):
            rel.query({"bogus": 1})
        with pytest.raises(SpecificationError):
            rel.query(None, "bogus")

    def test_remove_by_secondary_pattern(self, rel):
        rel.remove({"state": "R"})
        assert len(rel) == 1
        rel.check_well_formed()

    def test_remove_everything(self, rel):
        rel.remove()
        assert len(rel) == 0
        assert rel.instance.is_empty()
        rel.check_well_formed()

    def test_remove_missing_is_noop(self, rel):
        rel.remove({"ns": 99})
        assert len(rel) == 3

    def test_update_nonkey_column(self, rel):
        rel.update({"state": "R"}, {"cpu": 7})
        assert {tup["cpu"] for tup in rel.query({"state": "R"})} == {7}
        rel.check_well_formed()

    def test_update_key_column_moves_tuples(self, rel):
        rel.update({"ns": 2, "pid": 1}, {"pid": 9})
        assert rel.query({"ns": 2, "pid": 1}) == []
        assert rel.query({"ns": 2, "pid": 9}, "state")[0]["state"] == "R"
        rel.check_well_formed()

    def test_update_enforces_fds(self, rel):
        with pytest.raises(FunctionalDependencyError):
            rel.update({"ns": 1}, {"pid": 1})
        assert len(rel) == 3

    def test_update_with_empty_changes_is_noop(self, rel):
        rel.update({"ns": 1}, {})
        assert len(rel) == 3

    def test_matches_reference_on_a_small_script(self, rel, scheduler_spec):
        ref = ReferenceRelation(scheduler_spec)
        for tup in rel.scan():
            ref.insert(tup)
        for op in (
            lambda r: r.update({"state": "S"}, {"cpu": 3}),
            lambda r: r.remove({"ns": 1, "pid": 1}),
            lambda r: r.insert(t(ns=3, pid=3, state="W", cpu=2)),
        ):
            op(rel)
            op(ref)
            assert rel.to_relation() == ref.to_relation()

    def test_plan_cache_is_reused(self, rel):
        first = rel.plan_for("ns, pid")
        again = rel.plan_for(["pid", "ns"])
        assert first is again
