"""Unit tests for the code generator (repro.codegen)."""

import pytest

from repro.codegen import MAX_ENUMERATED_COLUMNS, compile_relation, generate_source
from repro.core import ReferenceRelation, RelationInterface, RelationSpec, t
from repro.core.errors import (
    AdequacyError,
    FunctionalDependencyError,
    SpecificationError,
    TupleError,
)

SCHEDULER = (
    "[ns -> htable pid -> btree {state, cpu} ; state -> htable (ns, pid -> dlist {cpu})]"
)


@pytest.fixture
def compiled(scheduler_spec):
    cls = compile_relation(scheduler_spec, SCHEDULER, class_name="CompiledScheduler")
    rel = cls()
    rel.insert(t(ns=1, pid=1, state="R", cpu=0))
    rel.insert(t(ns=1, pid=2, state="S", cpu=1))
    rel.insert(t(ns=2, pid=1, state="R", cpu=1))
    return rel


class TestGeneratedSource:
    def test_source_is_standalone_python(self, scheduler_spec):
        source = generate_source(scheduler_spec, SCHEDULER, class_name="X")
        compile(source, "<generated>", "exec")  # Syntactically valid.
        assert "class X(RelationInterface):" in source
        assert "_PLANS" in source

    def test_source_attached_to_class(self, scheduler_spec):
        cls = compile_relation(scheduler_spec, SCHEDULER)
        assert "def insert(self, tup):" in cls.__source__
        assert cls.SPEC is scheduler_spec
        assert cls.DECOMPOSITION.describe()

    def test_no_interpretation_machinery_in_methods(self, scheduler_spec):
        """The generated class must not plan, project or walk edges at run
        time: no references to plan_query, Tuple.project or node.edges."""
        source = generate_source(scheduler_spec, SCHEDULER)
        assert "plan_query" not in source
        assert ".project(" not in source
        assert ".edges" not in source

    def test_dispatch_covers_every_pattern_subset(self, scheduler_spec):
        cls = compile_relation(scheduler_spec, SCHEDULER)
        import itertools

        columns = sorted(scheduler_spec.columns)
        masks = 0
        for size in range(len(columns) + 1):
            for combo in itertools.combinations(columns, size):
                method = getattr(cls, f"_q_{sum(1 << columns.index(c) for c in combo)}")
                assert callable(method)
                masks += 1
        assert masks == 2 ** len(columns)

    def test_inadequate_decomposition_is_rejected(self, scheduler_spec):
        with pytest.raises(AdequacyError):
            generate_source(scheduler_spec, "ns -> htable {pid, state, cpu}")


class TestCompiledOperations:
    def test_is_a_relation_interface(self, compiled):
        assert isinstance(compiled, RelationInterface)

    def test_insert_query_roundtrip(self, compiled):
        assert len(compiled) == 3
        assert compiled.query({"ns": 1, "pid": 1}, "state")[0]["state"] == "R"
        assert {r["pid"] for r in compiled.query({"state": "R"}, "pid")} == {1}

    def test_insert_is_idempotent(self, compiled):
        compiled.insert(t(ns=1, pid=1, state="R", cpu=0))
        assert len(compiled) == 3

    def test_insert_rejects_partial_tuple(self, compiled):
        with pytest.raises(TupleError):
            compiled.insert(t(ns=1, pid=9))

    def test_insert_accepts_plain_mappings(self, compiled):
        compiled.insert({"ns": 3, "pid": 3, "state": "W", "cpu": 0})
        assert compiled.contains({"ns": 3, "pid": 3})

    def test_insert_enforces_fds(self, compiled):
        with pytest.raises(FunctionalDependencyError):
            compiled.insert(t(ns=1, pid=1, state="Z", cpu=5))
        assert len(compiled) == 3

    def test_query_validates_columns(self, compiled):
        with pytest.raises(TupleError):
            compiled.query({"bogus": 1})
        with pytest.raises(SpecificationError):
            compiled.query(None, "bogus")

    def test_remove_by_secondary_pattern(self, compiled):
        compiled.remove({"state": "R"})
        assert len(compiled) == 1
        compiled.check_well_formed()

    def test_remove_everything(self, compiled):
        compiled.remove()
        assert len(compiled) == 0
        compiled.check_well_formed()

    def test_update_key_column_moves_tuples(self, compiled):
        compiled.update({"ns": 2, "pid": 1}, {"pid": 9})
        assert compiled.query({"ns": 2, "pid": 1}) == []
        assert compiled.query({"ns": 2, "pid": 9}, "state")[0]["state"] == "R"
        compiled.check_well_formed()

    def test_update_enforces_fds(self, compiled):
        with pytest.raises(FunctionalDependencyError):
            compiled.update({"ns": 1}, {"pid": 1})
        assert len(compiled) == 3
        compiled.check_well_formed()

    def test_matches_reference_on_a_small_script(self, compiled, scheduler_spec):
        reference = ReferenceRelation(scheduler_spec)
        for tup in compiled.scan():
            reference.insert(tup)
        for op in (
            lambda r: r.update({"state": "S"}, {"cpu": 3}),
            lambda r: r.remove({"ns": 1, "pid": 1}),
            lambda r: r.insert(t(ns=3, pid=3, state="W", cpu=2)),
        ):
            op(compiled)
            op(reference)
            assert compiled.to_relation() == reference.to_relation()


class TestSchemaShapes:
    def test_none_is_an_ordinary_stored_value(self):
        """None is a legal value (values.py), so it must be distinguishable
        from an absent entry — the compiled tier uses a _MISS sentinel."""
        spec = RelationSpec("k, v", fds=["k -> v"], name="kv")
        cls = compile_relation(spec, "k -> htable {v}")
        rel = cls()
        rel.insert(t(k=1, v=None))
        assert len(rel) == 1
        assert rel.query({"k": 1}) == [t(k=1, v=None)]
        rel.update({"k": 1}, {"v": None})  # No-op merge must not drop the row.
        assert len(rel) == 1
        rel.insert(t(k=2, v="x"))
        rel.update({"k": 2}, {"v": None})
        assert rel.query({"k": 2}, "v") == [t(v=None)]
        rel.check_well_formed()
        reference = ReferenceRelation(spec)
        reference.insert(t(k=1, v=None))
        reference.insert(t(k=2, v=None))
        assert rel.to_relation() == reference.to_relation()
        rel.remove({"v": None})
        assert len(rel) == 0
        rel.check_well_formed()

    def test_single_column_spec(self):
        spec = RelationSpec("k", name="presence")
        cls = compile_relation(spec, "k -> htable {}")
        rel = cls()
        rel.insert(t(k=1))
        rel.insert(t(k=2))
        rel.insert(t(k=1))
        assert len(rel) == 2
        assert set(rel.query({"k": 1})) == {t(k=1)}
        rel.remove({"k": 1})
        assert rel.query() == [t(k=2)]
        rel.check_well_formed()

    def test_unit_root_decomposition(self):
        """A pure unit root: the relation holds at most one constant tuple."""
        from repro.decomposition import Decomposition, unit

        spec = RelationSpec("a, b", fds=["-> a, b"], name="constant")
        cls = compile_relation(spec, Decomposition(unit("a, b"), name="unitroot"))
        rel = cls()
        assert len(rel) == 0
        rel.insert(t(a=1, b=2))
        assert rel.query() == [t(a=1, b=2)]
        assert rel.query({"a": 1}, "b") == [t(b=2)]
        rel.check_well_formed()
        rel.remove({"a": 1})
        assert len(rel) == 0
        rel.check_well_formed()

    def test_wide_schema_uses_fallback_dispatch(self):
        """Schemas wider than MAX_ENUMERATED_COLUMNS dispatch unlisted
        patterns through the scanning fallback — correct, if unspecialised."""
        width = MAX_ENUMERATED_COLUMNS + 2
        cols = [f"c{i}" for i in range(width)]
        spec = RelationSpec(cols, fds=[f"c0 -> {', '.join(cols[1:])}"], name="wide")
        layout = "c0 -> htable {" + ", ".join(cols[1:]) + "}"
        cls = compile_relation(spec, layout)
        rel = cls()
        rows = [t(**{c: (i + j) % 5 for j, c in enumerate(cols)}) for i in range(20)]
        for row in rows:
            rel.insert(row)
        reference = ReferenceRelation(spec)
        for row in rows:
            reference.insert(row)
        # c0 is a key-prefix pattern: specialised.  (c3, c5) is not listed:
        # it must fall back to scan-and-filter with identical results.
        assert set(rel.query({"c0": 3})) == set(reference.query({"c0": 3}))
        pattern = {"c3": 1, "c5": 3}
        assert set(rel.query(pattern)) == set(reference.query(pattern))
        assert set(rel.query(pattern, "c0, c1")) == set(reference.query(pattern, "c0, c1"))


def test_three_layouts_roundtrip(scheduler_spec):
    """The seeded layouts of the differential suite all compile and agree on
    a deterministic script (cheap smoke version of the 1000-op suite)."""
    from test_differential import DECOMPOSITIONS

    script = [
        t(ns=ns, pid=pid, state="RS"[pid % 2], cpu=pid % 2)
        for ns in range(3)
        for pid in range(4)
    ]
    relations = [
        compile_relation(scheduler_spec, layout)()
        for layout in DECOMPOSITIONS.values()
    ]
    for rel in relations:
        for tup in script:
            rel.insert(tup)
        rel.update({"state": "R"}, {"cpu": 1})
        rel.remove({"ns": 2})
        rel.check_well_formed()
    first = relations[0].to_relation()
    for rel in relations[1:]:
        assert rel.to_relation() == first
