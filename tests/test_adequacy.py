"""The adequacy judgement (Section 3.2) and instance well-formedness (Figure 5)."""

import pytest

from repro.core import RelationSpec, t
from repro.core.errors import AdequacyError, WellFormednessError
from repro.decomposition import (
    DecomposedRelation,
    DecompositionInstance,
    adequacy_problems,
    check_adequacy,
    enforced_fds,
    is_adequate,
    parse_decomposition,
)

ADEQUATE = [
    # The flat primary-key map.
    "ns, pid -> htable {state, cpu}",
    # Nested maps, one key column per level.
    "ns -> htable pid -> btree {state, cpu}",
    # The paper's scheduler shape: a primary index and a state index.
    "[ns -> htable pid -> btree {state, cpu} ; state -> htable (ns, pid -> dlist {cpu})]",
    # All columns bound by keys; leaves are pure presence markers.
    "ns, pid -> htable (state, cpu -> dlist {})",
    # A superkey is fine (state is determined but also bound).
    "ns, pid, state -> btree {cpu}",
    # A key-projection secondary branch: the second branch covers only the
    # superkey {ns, pid, state} (no cpu) — queries that need cpu reassemble
    # full tuples with a cross-branch join plan (Figure 8 validity).
    "[ns, pid -> htable {state, cpu} ; state -> htable ns, pid -> dlist {}]",
]

INADEQUATE = [
    # pid never appears: the decomposition cannot distinguish processes.
    "ns -> htable {state, cpu}",
    # {ns} is not a key: the unit would collapse distinct (ns, pid) tuples.
    "ns -> htable {pid, state, cpu}",
    # A partial branch whose covered set {state, cpu} is not a key:
    # distinct processes collapse to one branch entry, so neither
    # per-branch mutation nor a join plan can be sound.
    "[ns, pid -> htable {state, cpu} ; state -> htable cpu -> dlist {}]",
    # {state, cpu} is not a key either.
    "state, cpu -> htable {ns, pid}",
    # Root unit: only constant relations would be representable.
    "{ns, pid, state, cpu}",
    # Primary-branch completeness: the first branch must cover every
    # sibling's columns (key-projection branches come second).
    "[state -> htable ns, pid -> dlist {} ; ns, pid -> htable {state, cpu}]",
]


class TestAdequacyJudgement:
    @pytest.mark.parametrize("text", ADEQUATE)
    def test_adequate_layouts_pass(self, scheduler_spec, text):
        d = parse_decomposition(text)
        assert is_adequate(d, scheduler_spec)
        assert adequacy_problems(d, scheduler_spec) == []
        check_adequacy(d, scheduler_spec)  # must not raise

    @pytest.mark.parametrize("text", INADEQUATE)
    def test_inadequate_layouts_rejected(self, scheduler_spec, text):
        d = parse_decomposition(text)
        assert not is_adequate(d, scheduler_spec)
        with pytest.raises(AdequacyError):
            check_adequacy(d, scheduler_spec)

    def test_fd_problem_message_names_the_unjustified_dependency(self, scheduler_spec):
        problems = adequacy_problems(
            parse_decomposition("ns -> htable {pid, state, cpu}"), scheduler_spec
        )
        assert len(problems) == 1
        assert "not a key" in problems[0]

    def test_column_outside_spec_is_reported(self, scheduler_spec):
        problems = adequacy_problems(
            parse_decomposition("ns, pid -> htable {state, cpu, nice}"), scheduler_spec
        )
        assert any("outside the specification" in p for p in problems)

    def test_adequacy_depends_on_fds(self):
        # Without FDs, no unit with columns can be adequate over >1 column...
        free = RelationSpec("a, b", fds=[], name="free")
        assert not is_adequate(parse_decomposition("a -> htable {b}"), free)
        # ...but binding every column with a presence-marker unit is.
        assert is_adequate(parse_decomposition("a -> htable b -> dlist {}"), free)
        assert is_adequate(parse_decomposition("a, b -> htable {}"), free)

    def test_enforced_fds_are_entailed_by_spec(self, scheduler_spec):
        for text in ADEQUATE:
            for fd in enforced_fds(parse_decomposition(text)):
                assert scheduler_spec.fds.entails_fd(fd)

    def test_instance_construction_checks_adequacy(self, scheduler_spec):
        with pytest.raises(AdequacyError):
            DecompositionInstance(parse_decomposition(INADEQUATE[0]), scheduler_spec)
        with pytest.raises(AdequacyError):
            DecomposedRelation(scheduler_spec, INADEQUATE[1])


class TestInstanceWellFormedness:
    def test_populated_instances_are_well_formed(self, scheduler_spec):
        for text in ADEQUATE:
            rel = DecomposedRelation(scheduler_spec, text)
            rel.insert(t(ns=1, pid=1, state="R", cpu=0))
            rel.insert(t(ns=1, pid=2, state="S", cpu=1))
            rel.check_well_formed()

    def test_branch_disagreement_is_detected(self, scheduler_spec):
        rel = DecomposedRelation(
            scheduler_spec,
            "[ns, pid -> htable {state, cpu} ; state -> htable ns, pid -> dlist {cpu}]",
        )
        rel.insert(t(ns=1, pid=1, state="R", cpu=0))
        rel.insert(t(ns=1, pid=2, state="S", cpu=1))
        # Corrupt the second branch behind the interface's back.
        state_index = rel.instance.root.containers[1]
        state_key = next(iter(state_index.keys()))
        state_index.remove(state_key)
        with pytest.raises(WellFormednessError, match="disagree"):
            rel.check_well_formed()

    def test_wrong_key_columns_are_detected(self, scheduler_spec):
        rel = DecomposedRelation(scheduler_spec, "ns, pid -> htable {state, cpu}")
        rel.insert(t(ns=1, pid=1, state="R", cpu=0))
        container = rel.instance.root.containers[0]
        value = next(iter(container.values()))
        container.insert(t(ns=2), value)  # key missing the pid column
        with pytest.raises(WellFormednessError, match="key columns"):
            rel.check_well_formed()

    def test_dangling_empty_subinstance_is_detected(self, scheduler_spec):
        rel = DecomposedRelation(scheduler_spec, "ns -> htable pid -> btree {state, cpu}")
        rel.insert(t(ns=1, pid=1, state="R", cpu=0))
        inner = rel.instance.root.containers[0].lookup(t(ns=1))
        inner.containers[0].lookup(t(pid=1)).unit_value = None
        with pytest.raises(WellFormednessError, match="empty sub-instance"):
            rel.check_well_formed()
