"""The AssociativeContainer contract, checked for every registered container."""

import pytest

from repro.core import t
from repro.core.errors import DecompositionError
from repro.structures import (
    COUNTER,
    MISSING,
    STRUCTURE_REGISTRY,
    AVLTreeMap,
    default_structure_names,
    get_structure,
    register_structure,
    structure_cost,
    structure_names,
)

ALL_NAMES = sorted(STRUCTURE_REGISTRY)


@pytest.fixture(params=ALL_NAMES)
def container(request):
    return STRUCTURE_REGISTRY[request.param]()


KEYS = [t(k=i) for i in range(8)]


class TestContract:
    def test_insert_lookup_roundtrip(self, container):
        for i, key in enumerate(KEYS):
            container.insert(key, f"v{i}")
        for i, key in enumerate(KEYS):
            assert container.lookup(key) == f"v{i}"
        assert len(container) == len(KEYS)

    def test_lookup_missing(self, container):
        assert container.lookup(t(k=99)) is MISSING
        assert container.get(t(k=99), "default") == "default"

    def test_insert_overwrites(self, container):
        container.insert(t(k=0), "old")
        container.insert(t(k=0), "new")
        assert container.lookup(t(k=0)) == "new"
        assert len(container) == 1

    def test_remove(self, container):
        container.insert(t(k=0), "a")
        container.insert(t(k=1), "b")
        assert container.remove(t(k=0)) is True
        assert container.remove(t(k=0)) is False
        assert container.lookup(t(k=0)) is MISSING
        assert container.lookup(t(k=1)) == "b"
        assert len(container) == 1

    def test_items_cover_all_entries(self, container):
        expected = {}
        for i, key in enumerate(KEYS):
            container.insert(key, i)
            expected[key] = i
        assert dict(container.items()) == expected
        assert set(container.keys()) == set(expected)
        assert sorted(container.values()) == sorted(expected.values())

    def test_contains_and_bool(self, container):
        assert not container
        container.insert(t(k=1), "x")
        assert container
        assert t(k=1) in container
        assert t(k=2) not in container
        assert "not-a-tuple" not in container

    def test_clear(self, container):
        for key in KEYS:
            container.insert(key, "x")
        container.clear()
        assert len(container) == 0 and container.is_empty()

    def test_remove_value(self, container):
        value = object()
        container.insert(t(k=1), value)
        assert container.remove_value(t(k=1), value) is True
        assert len(container) == 0

    def test_non_integer_keys(self, container):
        container.insert(t(name="alpha"), 1)
        container.insert(t(name="beta"), 2)
        assert container.lookup(t(name="alpha")) == 1
        assert container.remove(t(name="beta")) is True

    def test_cost_model_positive_and_monotone(self, container):
        cls = type(container)
        small, large = cls.estimate_accesses(4), cls.estimate_accesses(4096)
        assert small >= 1.0
        assert large >= small
        assert cls.scan_cost(100) >= 1.0


class TestStructureSpecifics:
    def test_avl_invariants_after_churn(self):
        tree = AVLTreeMap()
        for i in range(64):
            tree.insert(t(k=i), i)
            assert tree.check_invariants()
        for i in range(0, 64, 2):
            tree.remove(t(k=i))
            assert tree.check_invariants()
        assert len(tree) == 32

    def test_btree_iterates_in_key_order(self):
        tree = AVLTreeMap()
        for i in [5, 3, 8, 1, 9, 2]:
            tree.insert(t(k=i), i)
        assert [k["k"] for k, _ in tree.items()] == [1, 2, 3, 5, 8, 9]

    def test_htable_resizes(self):
        table = get_structure("htable")()
        for i in range(100):
            table.insert(t(k=i), i)
        assert table.bucket_count > table.INITIAL_BUCKETS
        assert table.load_factor <= table.MAX_LOAD_FACTOR

    def test_counter_sees_linear_vs_constant_lookup(self):
        dlist = get_structure("dlist")()
        htable = get_structure("htable")()
        for i in range(64):
            dlist.insert(t(k=i), i)
            htable.insert(t(k=i), i)
        with COUNTER as c:
            dlist.lookup(t(k=63))
            linear = c.accesses
        with COUNTER as c:
            htable.lookup(t(k=63))
            constant = c.accesses
        assert linear > 8 * constant


class TestRegistry:
    def test_structure_names_match_registry(self):
        assert structure_names() == sorted(STRUCTURE_REGISTRY)

    def test_get_structure_unknown(self):
        with pytest.raises(DecompositionError, match="unknown data structure"):
            get_structure("splaytree")

    def test_default_names_are_validated_and_registered(self):
        names = default_structure_names()
        assert names
        for name in names:
            assert name in STRUCTURE_REGISTRY

    def test_default_names_fail_loudly_when_renamed(self, monkeypatch):
        # Simulate a rename (avl -> avltree): the default list must now
        # fail at call time instead of surfacing later as an unknown
        # structure deep inside decomposition construction.
        monkeypatch.delitem(STRUCTURE_REGISTRY, "avl")
        with pytest.raises(DecompositionError, match="default structure names"):
            default_structure_names()

    def test_register_rejects_duplicate_names(self):
        class Impostor(AVLTreeMap):
            NAME = "avl"

        with pytest.raises(DecompositionError, match="already registered"):
            register_structure(Impostor)

    def test_register_rejects_alias_collisions(self):
        class Impostor(AVLTreeMap):
            NAME = "btree"

        with pytest.raises(DecompositionError, match="already registered as an alias"):
            register_structure(Impostor)

    def test_btree_alias_resolves_to_avl(self):
        from repro.structures.registry import canonical_structure_name

        assert AVLTreeMap.NAME == "avl"
        assert get_structure("btree") is AVLTreeMap
        assert get_structure("avl") is AVLTreeMap
        assert canonical_structure_name("btree") == "avl"
        assert canonical_structure_name("avl") == "avl"
        assert "avl" in STRUCTURE_REGISTRY and "btree" not in STRUCTURE_REGISTRY
        # Decomposition strings written with either name keep parsing.
        from repro.decomposition import parse_decomposition

        for name in ("btree", "avl"):
            parsed = parse_decomposition(f"ns, pid -> {name} {{state, cpu}}")
            assert parsed.root.edges[0].structure_class() is AVLTreeMap

    def test_register_requires_name(self):
        from repro.structures import AssociativeContainer

        class Nameless(AssociativeContainer):  # pragma: no cover - never instantiated
            def insert(self, key, value):
                raise NotImplementedError

            def lookup(self, key):
                raise NotImplementedError

            def remove(self, key):
                raise NotImplementedError

            def items(self):
                raise NotImplementedError

            def __len__(self):
                return 0

        with pytest.raises(DecompositionError, match="must define a NAME"):
            register_structure(Nameless)

    def test_structure_cost_hook(self):
        assert structure_cost("htable", 1000) == 1.0
        assert structure_cost("dlist", 1000) > 100
        assert structure_cost("btree", 1024, "scan") >= 1024
        with pytest.raises(DecompositionError, match="unknown cost operation"):
            structure_cost("htable", 10, "sort")
