"""Tuples, column sets, and the value universe."""

import pytest

from repro.core import Tuple, columns, format_columns, t
from repro.core.errors import SpecificationError, TupleError
from repro.core.values import ensure_value, is_valid_value, value_sort_key


class TestColumns:
    def test_string_and_iterable_forms_agree(self):
        assert columns("ns, pid") == columns(["pid", "ns"]) == frozenset({"ns", "pid"})

    def test_space_separated(self):
        assert columns("a b c") == frozenset({"a", "b", "c"})

    def test_invalid_names_rejected(self):
        with pytest.raises(SpecificationError):
            columns([""])
        with pytest.raises(SpecificationError):
            columns([42])

    def test_format_is_deterministic(self):
        assert format_columns(frozenset({"b", "a"})) == "{a, b}"


class TestTuple:
    def test_equality_hash_and_canonical_order(self):
        assert t(a=1, b=2) == Tuple({"b": 2, "a": 1})
        assert hash(t(a=1, b=2)) == hash(Tuple({"b": 2, "a": 1}))
        assert t(a=1, b=2) == {"a": 1, "b": 2}

    def test_extends_and_matches(self):
        full = t(ns=1, pid=2, state="R")
        assert full.extends(t(ns=1))
        assert full.extends(Tuple.empty())
        assert not full.extends(t(ns=2))
        assert not full.extends(t(cpu=0))
        assert full.matches(t(cpu=0))  # disjoint columns always match
        assert not full.matches(t(ns=2, cpu=0))

    def test_merge_prefers_updates(self):
        assert t(a=1, b=2).merge(t(b=9, c=3)) == t(a=1, b=9, c=3)

    def test_project_and_restrict_and_drop(self):
        full = t(a=1, b=2, c=3)
        assert full.project(["a", "b"]) == t(a=1, b=2)
        with pytest.raises(TupleError):
            full.project(["z"])
        assert full.restrict(["a", "z"]) == t(a=1)
        assert full.drop(["a"]) == t(b=2, c=3)

    def test_unhashable_value_rejected(self):
        with pytest.raises(TypeError):
            t(a=[1, 2])

    def test_empty_tuple_is_singleton_identity(self):
        assert Tuple.empty() is Tuple.empty()
        assert len(Tuple.empty()) == 0


class TestValues:
    def test_validity(self):
        assert is_valid_value(1) and is_valid_value("x") and is_valid_value(None)
        assert not is_valid_value({})
        with pytest.raises(TypeError):
            ensure_value(set())

    def test_sort_key_orders_mixed_types_without_error(self):
        values = [3, "b", 1, "a", None, 2.5]
        ordered = sorted(values, key=value_sort_key)
        assert ordered.index(1) < ordered.index(3)
        assert ordered.index("a") < ordered.index("b")

    def test_bool_folds_into_int_order(self):
        assert sorted([True, 0, 2], key=value_sort_key) == [0, True, 2]
