"""Randomized differential testing of compiled classes vs ReferenceRelation.

The acceptance bar of the codegen tier: the exact seeded 1000-operation
differential harness of ``test_differential.py`` — insert/remove/update/
query mixes, FD-rejection agreement, α equality after every operation —
run against classes produced by :func:`repro.codegen.compile_relation`
for the same three layouts the interpreted tier is tested on.
"""

import random

import pytest

from repro.codegen import compile_relation
from repro.core import ReferenceRelation, Tuple
from test_differential import (
    COLUMNS,
    DECOMPOSITIONS,
    NS_DOMAIN,
    PID_DOMAIN,
    STATE_DOMAIN,
    CPU_DOMAIN,
    apply_both,
    random_full_tuple,
    random_pattern,
)


@pytest.fixture(params=sorted(DECOMPOSITIONS))
def compiled_class(request, scheduler_spec):
    return request.param, compile_relation(
        scheduler_spec, DECOMPOSITIONS[request.param]
    )


def test_differential_1000_ops_compiled(compiled_class, scheduler_spec):
    layout, cls = compiled_class
    rng = random.Random(20110604)  # Same seed as the interpreted-tier run.
    reference = ReferenceRelation(scheduler_spec)
    compiled = cls()

    operations = 0
    for step in range(1000):
        roll = rng.random()
        if roll < 0.45:
            tup = random_full_tuple(rng)
            apply_both(lambda r: r.insert(tup), reference, compiled)
        elif roll < 0.65:
            pattern = random_pattern(rng)
            apply_both(lambda r: r.remove(pattern), reference, compiled)
        elif roll < 0.85:
            pattern = random_pattern(rng, max_columns=2)
            changes = random_pattern(rng, max_columns=2)
            apply_both(lambda r: r.update(pattern, changes), reference, compiled)
        else:
            pattern = random_pattern(rng)
            output = rng.sample(COLUMNS, k=rng.randint(1, 4))
            assert set(compiled.query(pattern, output)) == set(
                reference.query(pattern, output)
            )
        operations += 1

        alpha = compiled.to_relation()
        assert alpha == reference.to_relation(), (
            f"[{layout}] compiled class diverged from the reference after step {step}"
        )
        assert len(compiled) == len(reference)
        if step % 100 == 0 or step == 999:
            compiled.check_well_formed()
            assert alpha.satisfies(scheduler_spec.fds)

    assert operations == 1000


def test_differential_without_fd_enforcement_compiled(compiled_class, scheduler_spec):
    """FD-respecting op sequences agree even with enforcement turned off."""
    layout, cls = compiled_class
    rng = random.Random(7)
    compiled = cls(enforce_fds=False)
    reference = ReferenceRelation(scheduler_spec, enforce_fds=False)
    live = {}
    for _ in range(300):
        if live and rng.random() < 0.3:
            key = rng.choice(sorted(live))
            del live[key]
            pattern = Tuple({"ns": key[0], "pid": key[1]})
            reference.remove(pattern)
            compiled.remove(pattern)
        else:
            ns, pid = rng.choice(NS_DOMAIN), rng.choice(PID_DOMAIN)
            residual = (rng.choice(STATE_DOMAIN), rng.choice(CPU_DOMAIN))
            if (ns, pid) in live:
                # Replace via remove+insert so the sequence stays FD-respecting.
                reference.remove(Tuple({"ns": ns, "pid": pid}))
                compiled.remove(Tuple({"ns": ns, "pid": pid}))
            live[(ns, pid)] = residual
            tup = Tuple({"ns": ns, "pid": pid, "state": residual[0], "cpu": residual[1]})
            reference.insert(tup)
            compiled.insert(tup)
        assert compiled.to_relation() == reference.to_relation()
    compiled.check_well_formed()
    assert len(compiled) == len(live)


def test_unenforced_insert_evicts_conflicts_in_every_branch(scheduler_spec):
    """Structural last-writer-wins: a conflicting unenforced insert replaces
    the displaced tuple in the sibling branches too (no stale index entries)."""
    cls = compile_relation(scheduler_spec, DECOMPOSITIONS["scheduler-indexes"])
    rel = cls(enforce_fds=False)
    rel.insert(Tuple(ns=1, pid=2, state="R", cpu=0))
    rel.insert(Tuple(ns=1, pid=2, state="S", cpu=1))
    rel.check_well_formed()
    assert len(rel) == 1
    assert rel.query({"state": "R"}) == []
    assert rel.query({"state": "S"}) == [Tuple(ns=1, pid=2, state="S", cpu=1)]
