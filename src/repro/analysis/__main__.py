"""CLI: run the static analyses over the benchmark layouts.

``python -m repro.analysis --all-layouts --strict`` is the CI gate: it
compiles every hand layout of every benchmark workload, verifies the
emitted source (``EA0xx``), lints each layout against its spec and trace
(``DL0xx``), prints the findings, optionally dumps them as JSON, and — in
strict mode — exits non-zero on any error-severity finding.  Warnings never
fail the gate: several benchmark *alternative* layouts exist to be worse,
and the linter saying so is it working.
"""

from __future__ import annotations

import argparse
import sys
from typing import List

from ..codegen import compile_relation
from ..faults import FAULTS
from .declint import lint
from .diagnostics import WARNING, Diagnostic, Loc, has_errors, render_json, render_text
from .emitted import verify_class

__all__ = ["main"]


def _check_site_coverage(emitted_sites: set, diags: List[Diagnostic]) -> None:
    """EA033 (warning): registered codegen sites no verified layout emits.

    A site registered at compiler import but emitted by no layout under
    analysis is sweep surface the chaos suite believes exists but never
    reaches from these layouts.
    """
    registered = {s for s in FAULTS.sites() if s.startswith("codegen.")}
    for site in sorted(registered - emitted_sites):
        diags.append(
            Diagnostic(
                "EA033",
                WARNING,
                f"registered site {site!r} is not emitted by any analysed layout",
                Loc("fault-registry", site),
            )
        )


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(
        prog="python -m repro.analysis",
        description="Statically verify emitted relation classes and lint "
        "decomposition layouts (EA0xx / DL0xx diagnostics).",
    )
    parser.add_argument(
        "--all-layouts",
        action="store_true",
        help="analyse every hand layout (primary + alternatives) of every workload",
    )
    parser.add_argument(
        "--workloads",
        nargs="+",
        metavar="NAME",
        help="restrict to these benchmark workloads (default: all)",
    )
    parser.add_argument(
        "--strict",
        action="store_true",
        help="exit 1 if any error-severity finding is reported",
    )
    parser.add_argument(
        "--json",
        metavar="PATH",
        help="also write the findings as JSON (the CI artifact)",
    )
    parser.add_argument(
        "--full",
        action="store_true",
        help="build full-length traces for the trace-informed lints "
        "(default: quick traces; findings are the same on the benchmark set)",
    )
    args = parser.parse_args(argv)

    # Imported late: benchmarks/ sits next to src/ on the path, and pulling
    # it in costs trace construction we skip for --help.
    from benchmarks.workloads import build_workloads

    from ..autotuner.trace import Trace

    workloads = build_workloads(quick=not args.full, names=args.workloads)

    diags: List[Diagnostic] = []
    emitted_sites: set = set()
    units = 0
    for workload in workloads:
        trace = Trace.from_workload(workload)
        layouts = workload.hand_layouts() if args.all_layouts else {
            "primary": workload.layout
        }
        for layout_name, layout in layouts.items():
            unit = f"{workload.name}/{layout_name}"
            units += 1
            diags.extend(lint(workload.spec, layout, trace=trace, name=unit))
            cls = compile_relation(workload.spec, layout)
            for diag in verify_class(cls):
                # Re-anchor the class-named findings on the workload/layout
                # unit so the report reads by benchmark, not by class name.
                diag.loc.unit = unit
                diags.append(diag)
            meta = getattr(cls, "__repro_meta__", None)
            if meta:
                emitted_sites.update(meta.get("fault_sites", ()))
    _check_site_coverage(emitted_sites, diags)

    sys.stdout.write(f"analysed {units} layout(s)\n")
    sys.stdout.write(render_text(diags))
    if args.json:
        with open(args.json, "w") as fh:
            fh.write(render_json(diags, units=units))
    if args.strict and has_errors(diags):
        sys.stdout.write("strict mode: error-severity findings present\n")
        return 1
    return 0


if __name__ == "__main__":
    sys.exit(main())
