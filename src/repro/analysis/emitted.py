"""``EA0xx`` — static verification of compiled-relation source.

The code generator emits, per ``(spec, decomposition)`` pair, a module of
unrolled mutators, specialised query methods, and compile-time dispatch
tables.  Four disciplines make that code trustworthy, and all four are
*structural* — visible in the AST without running anything:

* **Journaling** — every container mutation inside a mutator happens under
  a ``try`` whose ``except BaseException`` handler replays the undo journal,
  and the mutation's own statement list carries the matching
  ``_j.append(...)`` entry (strong exception safety, PR 7).
* **Honest asymptotics** — every counted container probe (a two-argument
  ``.get`` or an ``.items()`` scan) is dominated by an
  ``if en: _C.accesses += ...`` charge, so the benchmark counters can't
  silently under-report (the list-strategy helpers charge internally and
  are audited separately).
* **Fault-site hygiene** — every ``_F.check(site)`` is guarded by the
  injector's ``active`` flag and names a site registered with
  :mod:`repro.faults`, so the chaos sweep actually reaches it.
* **Dispatch completeness** — ``_PLANS``/``_VPLANS`` cover exactly the
  layout's adequate bound-patterns with no dead or mistargeted entries,
  ``_VCOLS`` starts empty, and ``_RM`` only fuses patterns the compiler
  proved batch-removable.

The checks run on ``cls.__repro_source__`` (persisted by
:func:`repro.codegen.compile_relation`) and cross-check the compiler's own
``__repro_meta__`` record; sampled chaos/differential testing covers the
*semantics*, this pass proves the *structure* on every emitted path of
every layout.

Diagnostic codes (stable; ``error`` unless noted):

=======  ====================================================================
EA001    source does not parse / expected module structure missing
EA010    container mutation outside any try/rollback scope
EA011    container mutation whose statement list carries no journal entry
EA012    rollback handler missing the ``_undo`` replay (or the re-raise)
EA020    counted container probe not dominated by an access charge
EA021    list-strategy helper missing its internal charge or journal
EA030    fault check names an unregistered site
EA031    fault check not guarded by the injector's ``active`` flag
EA032    fault check site is not a string literal
EA040    dispatch table missing an adequate bound-pattern
EA041    dead or mistargeted dispatch entry
EA042    ``_VCOLS`` memo not initialised empty
EA043    ``_RM`` entry outside the compiler's batch-removable set
EA044    specialised method unreachable from any dispatch table
EA045    emitted source disagrees with ``__repro_meta__`` (warning)
EA050    attribute written outside the declared attribute set
=======  ====================================================================
"""

from __future__ import annotations

import ast
import re
from typing import Dict, FrozenSet, List, Optional, Sequence, Set, Tuple

from ..faults import FAULTS
from .diagnostics import ERROR, WARNING, Diagnostic, Loc

__all__ = ["verify_class", "verify_source"]

#: Methods holding the journal discipline: every container mutation they
#: perform must be journalled inside a rollback scope.
_MUTATOR_RE = re.compile(r"^(insert|_insert_row|remove|_remove_row|update|_update_in_place|_rm_\d+)$")

#: Methods holding the charge discipline: every counted probe they perform
#: must be dominated by an access charge.  ``check_well_formed`` /
#: ``to_relation`` are deliberately uncounted (inspection, not operation),
#: and ``query``/``_query_rows`` only touch caches and dispatch dicts.
_CHARGED_RE = re.compile(
    r"^(insert|_insert_row|remove|_remove_row|update|_update_in_place"
    r"|_rm_\d+|_qv_\d+|_q_\d+|_rows_path_\d+|_range_rows)$"
)

#: ``self`` attributes that are bookkeeping, not journalled container state:
#: counters and the ordered-scan snapshot cache, all rebuilt or reconciled
#: outside the rollback protocol by design.
_BOOKKEEPING_ATTRS = frozenset(
    ("_count", "_mut", "_rord", "_rkeys", "_rset", "_rord_mut", "_t_cache", "_proj_cache")
)

#: Registry attributes (``self._s0``, ``self._s1`` ...): journalled like any
#: container but deliberately uncounted — the registry models the shared
#: record's identity map, not a traversed index structure.
_REGISTRY_ATTR_RE = re.compile(r"^_s\d+$")

_LIST_HELPERS = ("_l_get", "_l_put", "_l_del", "_l_put_j", "_l_del_j")
_JOURNALLING_HELPERS = frozenset(("_l_put_j", "_l_del_j"))

#: Container methods that mutate their receiver.
_MUTATING_METHODS = frozenset(
    ("append", "pop", "setdefault", "insert", "clear", "extend", "remove", "update", "popitem")
)

#: Tracking kinds, ordered: a charged container is also journal-tracked.
_JOURNAL = 1  # registry-derived: journalled, never counted
_CHARGED = 2  # index-structure-derived: journalled and counted


def verify_class(cls: type) -> List[Diagnostic]:
    """Verify one compiled relation class (``repro.codegen`` output).

    Reads ``cls.__repro_source__`` and ``cls.__repro_meta__`` and, when
    available, independently recomputes the expected dispatch patterns from
    ``cls.SPEC`` / ``cls.DECOMPOSITION``.
    """
    source = getattr(cls, "__repro_source__", None) or getattr(cls, "__source__", None)
    name = cls.__name__
    if source is None:
        return [
            Diagnostic(
                "EA001",
                ERROR,
                "class has no __repro_source__ (not produced by repro.codegen?)",
                Loc(name),
            )
        ]
    return verify_source(
        source,
        name=name,
        meta=getattr(cls, "__repro_meta__", None),
        spec=getattr(cls, "SPEC", None),
        decomposition=getattr(cls, "DECOMPOSITION", None),
    )


def verify_source(
    source: str,
    name: str = "emitted",
    meta: Optional[Dict[str, object]] = None,
    spec=None,
    decomposition=None,
    registered_sites: Optional[Set[str]] = None,
) -> List[Diagnostic]:
    """Verify emitted module *source*; returns the findings (possibly empty).

    *meta* is the compiler's ``__repro_meta__`` record (cross-checked when
    given); *spec*/*decomposition* enable the independent recomputation of
    the adequate bound-pattern set; *registered_sites* overrides the live
    fault registry (tests use this to orphan a site deterministically).
    """
    if registered_sites is None:
        registered_sites = set(FAULTS.sites())
    diags: List[Diagnostic] = []
    try:
        tree = ast.parse(source)
    except SyntaxError as exc:
        diags.append(
            Diagnostic("EA001", ERROR, f"source does not parse: {exc}", Loc(name, "", exc.lineno or 0))
        )
        return diags

    model = _ModuleModel(tree, name)
    if model.cls is None:
        diags.append(
            Diagnostic("EA001", ERROR, "no relation class definition found in source", Loc(name))
        )
        return diags

    _check_helpers(model, diags)
    for method in model.methods.values():
        _MethodChecker(model, method, diags, registered_sites).run()
    _check_attributes(model, diags)
    _check_dispatch(model, diags, meta, spec, decomposition)
    _check_meta(model, diags, meta)
    return diags


# -- module model ---------------------------------------------------------------


class _ModuleModel:
    """Parsed structure of one emitted module: class, helpers, dispatch."""

    def __init__(self, tree: ast.Module, name: str) -> None:
        self.name = name
        self.cls: Optional[ast.ClassDef] = None
        self.helpers: Dict[str, ast.FunctionDef] = {}
        self.dispatch: Dict[str, ast.expr] = {}
        self.cols: Tuple[str, ...] = ()
        for node in tree.body:
            if isinstance(node, ast.ClassDef):
                # The relation class is the one deriving RelationInterface;
                # the `_L` list-container class has no bases beyond `list`.
                bases = {b.id for b in node.bases if isinstance(b, ast.Name)}
                if "RelationInterface" in bases or (self.cls is None and node.name != "_L"):
                    self.cls = node
            elif isinstance(node, ast.FunctionDef):
                self.helpers[node.name] = node
            elif isinstance(node, ast.Assign) and len(node.targets) == 1:
                target = node.targets[0]
                if isinstance(target, ast.Name):
                    if target.id in ("_PLANS", "_VPLANS", "_VCOLS", "_RM"):
                        self.dispatch[target.id] = node.value
                    elif target.id == "_COLS":
                        self.cols = _string_tuple(node.value)
        self.methods: Dict[str, ast.FunctionDef] = {}
        if self.cls is not None:
            for node in self.cls.body:
                if isinstance(node, ast.FunctionDef):
                    self.methods[node.name] = node
        self.col_bit = {c: 1 << i for i, c in enumerate(self.cols)}

    def mask(self, columns) -> Optional[int]:
        total = 0
        for c in columns:
            bit = self.col_bit.get(c)
            if bit is None:
                return None
            total |= bit
        return total


def _string_tuple(node: ast.expr) -> Tuple[str, ...]:
    if isinstance(node, ast.Tuple):
        out = []
        for elt in node.elts:
            if isinstance(elt, ast.Constant) and isinstance(elt.value, str):
                out.append(elt.value)
            else:
                return ()
        return tuple(out)
    return ()


# -- expression classification --------------------------------------------------


def _self_attr(node: ast.expr) -> Optional[str]:
    if (
        isinstance(node, ast.Attribute)
        and isinstance(node.value, ast.Name)
        and node.value.id == "self"
    ):
        return node.attr
    return None


def _container_kind(node: ast.expr, env: Dict[str, int]) -> int:
    """How a container-valued expression is tracked (0 if it is not)."""
    if isinstance(node, ast.Name):
        return env.get(node.id, 0)
    attr = _self_attr(node)
    if attr is not None:
        if attr == "_root":
            return _CHARGED
        if _REGISTRY_ATTR_RE.match(attr):
            return _JOURNAL
        return 0
    if isinstance(node, ast.Subscript):
        return _container_kind(node.value, env)
    return 0


def _value_kind(node: ast.expr, env: Dict[str, int]) -> int:
    """How the *result* of evaluating *node* is tracked when bound."""
    direct = _container_kind(node, env)
    if direct:
        return direct
    if isinstance(node, ast.Call) and isinstance(node.func, ast.Attribute):
        if node.func.attr == "get":
            # ``c.get(k, _MISS)`` hands back a sub-container of ``c``;
            # a registry's one-argument ``.get`` hands back a record cell
            # (journalled, never counted) either way.
            return _container_kind(node.func.value, env)
    return 0


def _is_charge_stmt(stmt: ast.stmt) -> bool:
    """``if en: _C.accesses += ...`` (or ``if _C.enabled:`` spelled out)."""
    if not isinstance(stmt, ast.If):
        return False
    test = stmt.test
    named = isinstance(test, ast.Name) and test.id == "en"
    spelled = (
        isinstance(test, ast.Attribute)
        and isinstance(test.value, ast.Name)
        and test.value.id == "_C"
        and test.attr == "enabled"
    )
    if not (named or spelled):
        return False
    for inner in stmt.body:
        if isinstance(inner, ast.AugAssign):
            target = inner.target
            if (
                isinstance(target, ast.Attribute)
                and isinstance(target.value, ast.Name)
                and target.value.id == "_C"
                and target.attr == "accesses"
            ):
                return True
    return False


def _is_fault_guard(stmt: ast.stmt) -> bool:
    """``if _fa:`` / ``if _F.active:`` wrapping a fault check."""
    if not isinstance(stmt, ast.If):
        return False
    test = stmt.test
    if isinstance(test, ast.Name) and test.id == "_fa":
        return True
    return (
        isinstance(test, ast.Attribute)
        and isinstance(test.value, ast.Name)
        and test.value.id == "_F"
        and test.attr == "active"
    )


def _is_journal_append(stmt: ast.stmt) -> bool:
    if not isinstance(stmt, ast.Expr) or not isinstance(stmt.value, ast.Call):
        return False
    func = stmt.value.func
    return (
        isinstance(func, ast.Attribute)
        and func.attr == "append"
        and isinstance(func.value, ast.Name)
        and func.value.id == "_j"
    )


def _calls_name(tree_node: ast.AST, fn_name: str) -> bool:
    for node in ast.walk(tree_node):
        if (
            isinstance(node, ast.Call)
            and isinstance(node.func, ast.Name)
            and node.func.id == fn_name
        ):
            return True
    return False


# -- per-method verification ----------------------------------------------------

#: Statement kinds the backward charge scan may step over: straight-line
#: bookkeeping between a charge and the probe it dominates (assignments,
#: journal appends, fault guards, deletes).  Control flow other than the
#: guards stops the scan.
_SKIPPABLE = (ast.Assign, ast.AnnAssign, ast.AugAssign, ast.Delete, ast.Expr, ast.Pass)


class _MethodChecker:
    """Runs the journal / charge / fault checks over one method body."""

    def __init__(
        self,
        model: _ModuleModel,
        fn: ast.FunctionDef,
        diags: List[Diagnostic],
        registered_sites: Set[str],
    ) -> None:
        self.model = model
        self.fn = fn
        self.diags = diags
        self.registered_sites = registered_sites
        self.is_mutator = _MUTATOR_RE.match(fn.name) is not None
        self.is_charged = _CHARGED_RE.match(fn.name) is not None
        self.env: Dict[str, int] = {}
        #: Stack of (statement list, index, parent statement) frames for the
        #: backward charge scan; the outermost frame's parent is the method.
        self.frames: List[Tuple[List[ast.stmt], int, ast.stmt]] = []
        self.try_depth = 0  # nesting inside rollback-scoped try bodies

    def report(self, code: str, severity: str, message: str, node: ast.AST) -> None:
        line = getattr(node, "lineno", 0)
        self.diags.append(
            Diagnostic(code, severity, message, Loc(self.model.name, self.fn.name, line))
        )

    def run(self) -> None:
        self._check_fault_calls()
        self._walk(self.fn.body, self.fn, in_rollback=False)

    # -- fault sites ------------------------------------------------------------

    def _check_fault_calls(self) -> None:
        guarded: Set[int] = set()
        for node in ast.walk(self.fn):
            if _is_fault_guard(node):
                for stmt in node.body:
                    for sub in ast.walk(stmt):
                        guarded.add(id(sub))
        for node in ast.walk(self.fn):
            if not (isinstance(node, ast.Call) and isinstance(node.func, ast.Attribute)):
                continue
            func = node.func
            if not (
                func.attr == "check"
                and isinstance(func.value, ast.Name)
                and func.value.id in ("_F", "FAULTS")
            ):
                continue
            if len(node.args) != 1 or not (
                isinstance(node.args[0], ast.Constant) and isinstance(node.args[0].value, str)
            ):
                self.report(
                    "EA032", ERROR, "fault check site is not a string literal", node
                )
                continue
            site = node.args[0].value
            if site not in self.registered_sites:
                self.report(
                    "EA030",
                    ERROR,
                    f"fault check names unregistered site {site!r} "
                    "(it would never arm; register it or fix the name)",
                    node,
                )
            if id(node) not in guarded:
                self.report(
                    "EA031",
                    ERROR,
                    f"fault check for {site!r} is not guarded by the injector's "
                    "active flag (costs attribute dispatch on every operation)",
                    node,
                )

    # -- statement walk ---------------------------------------------------------

    def _walk(self, body: List[ast.stmt], parent: ast.stmt, in_rollback: bool) -> None:
        for idx, stmt in enumerate(body):
            self.frames.append((body, idx, parent))
            self._visit(stmt, body, in_rollback)
            self.frames.pop()

    def _visit(self, stmt: ast.stmt, body: List[ast.stmt], in_rollback: bool) -> None:
        if self.is_charged:
            self._check_probes(stmt)
        if self.is_mutator:
            self._check_mutations(stmt, body, in_rollback)
        self._propagate(stmt)
        # Recurse into compound statements, in source order.
        if isinstance(stmt, ast.Try):
            rollback = in_rollback or _try_has_rollback(stmt)
            if self.is_mutator and not _try_has_rollback(stmt):
                # A mutator's try must roll back; flag its handlers.
                for handler in stmt.handlers:
                    self.report(
                        "EA012",
                        ERROR,
                        "exception handler in a mutator neither replays the "
                        "undo journal (_undo) nor re-raises",
                        handler,
                    )
            self._walk(stmt.body, stmt, rollback)
            for handler in stmt.handlers:
                self._walk(handler.body, stmt, in_rollback)
            self._walk(stmt.orelse, stmt, in_rollback)
            self._walk(stmt.finalbody, stmt, in_rollback)
        elif isinstance(stmt, (ast.If,)):
            self._walk(stmt.body, stmt, in_rollback)
            self._walk(stmt.orelse, stmt, in_rollback)
        elif isinstance(stmt, (ast.For, ast.While)):
            self._walk(stmt.body, stmt, in_rollback)
            self._walk(stmt.orelse, stmt, in_rollback)
        elif isinstance(stmt, ast.With):
            self._walk(stmt.body, stmt, in_rollback)

    # -- name tracking ----------------------------------------------------------

    def _propagate(self, stmt: ast.stmt) -> None:
        if isinstance(stmt, ast.For):
            # ``for k, n in c.items():`` binds sub-containers of ``c``;
            # the value name inherits the container's tracking so nested
            # scans and stores stay visible.
            it = stmt.iter
            if (
                isinstance(it, ast.Call)
                and isinstance(it.func, ast.Attribute)
                and it.func.attr in ("items", "values")
            ):
                kind = _container_kind(it.func.value, self.env)
                if kind:
                    target = stmt.target
                    bound: Optional[str] = None
                    if it.func.attr == "values" and isinstance(target, ast.Name):
                        bound = target.id
                    elif (
                        it.func.attr == "items"
                        and isinstance(target, ast.Tuple)
                        and len(target.elts) == 2
                        and isinstance(target.elts[1], ast.Name)
                    ):
                        bound = target.elts[1].id
                    if bound is not None and kind > self.env.get(bound, 0):
                        self.env[bound] = kind
            return
        if isinstance(stmt, ast.Assign) and len(stmt.targets) == 1:
            target = stmt.targets[0]
            if isinstance(target, ast.Name):
                kind = _value_kind(stmt.value, self.env)
                if kind > self.env.get(target.id, 0):
                    self.env[target.id] = kind
            elif isinstance(target, ast.Subscript):
                # Storing a fresh node into a tracked container adopts the
                # container's tracking for the stored name (mutations on the
                # freshly-linked node must be journalled from here on).
                kind = _container_kind(target.value, self.env)
                if kind and isinstance(stmt.value, ast.Name):
                    if kind > self.env.get(stmt.value.id, 0):
                        self.env[stmt.value.id] = kind

    # -- charge domination ------------------------------------------------------

    def _check_probes(self, stmt: ast.stmt) -> None:
        probes: List[Tuple[ast.AST, str]] = []
        if isinstance(stmt, (ast.For,)):
            probes.extend(self._iter_probes(stmt.iter))
        else:
            for node in self._own_expressions(stmt):
                probes.extend(self._expr_probes(node))
        for node, what in probes:
            if not self._charge_dominates():
                self.report(
                    "EA020",
                    ERROR,
                    f"{what} is not dominated by an access charge "
                    "(if en: _C.accesses += ...)",
                    node,
                )

    def _own_expressions(self, stmt: ast.stmt):
        """Expressions evaluated by *stmt* itself (not by nested bodies)."""
        if isinstance(stmt, (ast.Assign, ast.AnnAssign, ast.AugAssign)):
            if stmt.value is not None:
                yield stmt.value
            targets = stmt.targets if isinstance(stmt, ast.Assign) else [stmt.target]
            for t in targets:
                yield t
        elif isinstance(stmt, ast.Expr):
            yield stmt.value
        elif isinstance(stmt, ast.Return) and stmt.value is not None:
            yield stmt.value
        elif isinstance(stmt, (ast.If, ast.While)):
            yield stmt.test

    def _iter_probes(self, iter_expr: ast.expr):
        if (
            isinstance(iter_expr, ast.Call)
            and isinstance(iter_expr.func, ast.Attribute)
            and iter_expr.func.attr in ("items", "keys", "values")
        ):
            kind = _container_kind(iter_expr.func.value, self.env)
            if kind == _CHARGED:
                yield iter_expr, f"container scan (.{iter_expr.func.attr}())"

    def _expr_probes(self, expr: ast.expr):
        for node in ast.walk(expr):
            if not (isinstance(node, ast.Call) and isinstance(node.func, ast.Attribute)):
                continue
            if node.func.attr != "get" or len(node.args) != 2:
                continue
            if _container_kind(node.func.value, self.env) == _CHARGED:
                yield node, "container probe (.get with default)"
        # A subscript store on a counted container is charged with its group.
        if isinstance(expr, ast.Subscript) and isinstance(expr.ctx, ast.Store):
            if _container_kind(expr.value, self.env) == _CHARGED:
                yield expr, "container store"

    def _charge_dominates(self) -> bool:
        """Scan backwards from the current statement for its access charge.

        Walks earlier siblings (stepping over straight-line bookkeeping and
        fault guards), hopping out of ``if``/``try`` bodies — but never out
        of a loop body, because a charge outside a loop cannot pay for a
        per-iteration probe.
        """
        for body, idx, parent in reversed(self.frames):
            scan = idx - 1
            while scan >= 0:
                prev = body[scan]
                if _is_charge_stmt(prev):
                    return True
                if _is_fault_guard(prev) or isinstance(prev, _SKIPPABLE):
                    scan -= 1
                    continue
                return False
            if isinstance(parent, (ast.For, ast.While, ast.FunctionDef)):
                return False
        return False

    # -- journal discipline -----------------------------------------------------

    def _check_mutations(self, stmt: ast.stmt, body: List[ast.stmt], in_rollback: bool) -> None:
        event = self._mutation_event(stmt)
        if event is None:
            return
        node, what, self_journalled = event
        if not in_rollback:
            self.report(
                "EA010",
                ERROR,
                f"{what} outside any try/rollback scope (an exception here "
                "leaves the instance torn)",
                node,
            )
        if self_journalled:
            return
        journalled = any(
            _is_journal_append(sibling)
            or (
                isinstance(sibling, ast.Expr)
                and isinstance(sibling.value, ast.Call)
                and isinstance(sibling.value.func, ast.Name)
                and sibling.value.func.id in _JOURNALLING_HELPERS
            )
            for sibling in body
        )
        if not journalled:
            self.report(
                "EA011",
                ERROR,
                f"{what} with no journal entry (_j.append) in its statement "
                "list — rollback cannot restore it",
                node,
            )

    def _mutation_event(self, stmt: ast.stmt) -> Optional[Tuple[ast.AST, str, bool]]:
        """(node, description, self-journalled) when *stmt* mutates tracked state."""
        if isinstance(stmt, ast.Assign) and len(stmt.targets) == 1:
            target = stmt.targets[0]
            if isinstance(target, ast.Subscript) and _container_kind(target.value, self.env):
                return target, "container store", False
            attr = _self_attr(target)
            if attr is not None and attr not in _BOOKKEEPING_ATTRS and attr != "spec":
                if attr == "_root" or _REGISTRY_ATTR_RE.match(attr):
                    return target, f"assignment to self.{attr}", False
        elif isinstance(stmt, ast.AugAssign):
            if isinstance(stmt.target, ast.Subscript) and _container_kind(
                stmt.target.value, self.env
            ):
                return stmt.target, "container in-place update", False
            attr = _self_attr(stmt.target)
            if attr is not None and attr not in _BOOKKEEPING_ATTRS:
                if attr == "_root" or _REGISTRY_ATTR_RE.match(attr):
                    return stmt.target, f"in-place update of self.{attr}", False
        elif isinstance(stmt, ast.Delete):
            for target in stmt.targets:
                if isinstance(target, ast.Subscript) and _container_kind(
                    target.value, self.env
                ):
                    return target, "container delete", False
        elif isinstance(stmt, ast.Expr) and isinstance(stmt.value, ast.Call):
            call = stmt.value
            if isinstance(call.func, ast.Attribute):
                base_kind = _container_kind(call.func.value, self.env)
                if base_kind and call.func.attr in _MUTATING_METHODS:
                    return call, f"container .{call.func.attr}() mutation", False
            elif isinstance(call.func, ast.Name) and call.func.id in (
                "_l_put",
                "_l_del",
                "_l_put_j",
                "_l_del_j",
            ):
                if call.args and _container_kind(call.args[0], self.env):
                    return (
                        call,
                        f"list-helper {call.func.id}() mutation",
                        call.func.id in _JOURNALLING_HELPERS,
                    )
        return None


def _try_has_rollback(stmt: ast.Try) -> bool:
    """A handler catching BaseException that replays ``_undo`` and re-raises."""
    for handler in stmt.handlers:
        htype = handler.type
        catches_base = htype is None or (
            isinstance(htype, ast.Name) and htype.id in ("BaseException", "Exception")
        )
        if not catches_base:
            continue
        has_undo = any(_calls_name(s, "_undo") for s in handler.body)
        has_raise = any(isinstance(n, ast.Raise) for s in handler.body for n in ast.walk(s))
        if has_undo and has_raise:
            return True
    return False


# -- helper audit ---------------------------------------------------------------


def _check_helpers(model: _ModuleModel, diags: List[Diagnostic]) -> None:
    for helper_name in _LIST_HELPERS:
        fn = model.helpers.get(helper_name)
        if fn is None:
            continue
        charges = any(
            isinstance(node, ast.AugAssign)
            and isinstance(node.target, ast.Attribute)
            and isinstance(node.target.value, ast.Name)
            and node.target.value.id == "_C"
            and node.target.attr == "accesses"
            for node in ast.walk(fn)
        )
        if not charges:
            diags.append(
                Diagnostic(
                    "EA021",
                    ERROR,
                    f"list helper {helper_name}() never charges _C.accesses — "
                    "its walks would be invisible to the counters",
                    Loc(model.name, helper_name, fn.lineno),
                )
            )
        if helper_name in _JOURNALLING_HELPERS:
            journals = any(
                isinstance(node, ast.Call)
                and isinstance(node.func, ast.Attribute)
                and node.func.attr == "append"
                and isinstance(node.func.value, ast.Name)
                and node.func.value.id == "j"
                for node in ast.walk(fn)
            )
            if not journals:
                diags.append(
                    Diagnostic(
                        "EA011",
                        ERROR,
                        f"journal-aware list helper {helper_name}() never appends "
                        "to its journal argument",
                        Loc(model.name, helper_name, fn.lineno),
                    )
                )


# -- attribute discipline -------------------------------------------------------


def _check_attributes(model: _ModuleModel, diags: List[Diagnostic]) -> None:
    cls = model.cls
    assert cls is not None
    declared: Set[str] = set()
    slots_declared = False
    for node in cls.body:
        if isinstance(node, ast.Assign) and len(node.targets) == 1:
            target = node.targets[0]
            if isinstance(target, ast.Name) and target.id == "__slots__":
                slots_declared = True
                declared.update(_string_tuple(node.value))
    init = model.methods.get("__init__")
    if init is not None and not slots_declared:
        for node in ast.walk(init):
            if isinstance(node, (ast.Assign, ast.AugAssign)):
                targets = node.targets if isinstance(node, ast.Assign) else [node.target]
                for t in targets:
                    attr = _self_attr(t)
                    if attr is not None:
                        declared.add(attr)
    if not declared:
        return
    for method in model.methods.values():
        if method.name == "__init__" and not slots_declared:
            continue
        for node in ast.walk(method):
            if isinstance(node, (ast.Assign, ast.AugAssign)):
                targets = node.targets if isinstance(node, ast.Assign) else [node.target]
                for t in targets:
                    attr = _self_attr(t)
                    if attr is not None and attr not in declared:
                        diags.append(
                            Diagnostic(
                                "EA050",
                                ERROR,
                                f"attribute self.{attr} written outside the "
                                "declared attribute set "
                                f"({'__slots__' if slots_declared else '__init__'})",
                                Loc(model.name, method.name, node.lineno),
                            )
                        )


# -- dispatch completeness ------------------------------------------------------


def _expected_masks(model: _ModuleModel, meta, spec, decomposition) -> Optional[Set[int]]:
    """The adequate bound-pattern masks this layout must dispatch over.

    Recomputed independently of the compiler when the spec/decomposition are
    available (mirroring the enumeration contract: the full power set up to
    ``MAX_ENUMERATED_COLUMNS`` columns, essential subsets beyond); falls
    back to the compiler's own ``meta['masks']`` record otherwise.
    """
    cols = model.cols
    if spec is not None and decomposition is not None and cols:
        from ..codegen import MAX_ENUMERATED_COLUMNS

        if len(cols) <= MAX_ENUMERATED_COLUMNS:
            return set(range(2 ** len(cols)))
        subsets = {frozenset(), frozenset(cols)}
        for fd in spec.fds:
            subsets.add(frozenset(fd.lhs))
        for path in decomposition.paths():
            bound: Set[str] = set()
            for e in path.edges:
                bound |= e.key
                subsets.add(frozenset(bound))
        masks = {model.mask(s) for s in subsets}
        return None if None in masks else {m for m in masks if m is not None}
    if meta and isinstance(meta.get("masks"), list):
        return set(meta["masks"])
    if cols:
        # Every benchmark schema enumerates fully; without meta this is the
        # contract for narrow schemas.
        from ..codegen import MAX_ENUMERATED_COLUMNS

        if len(cols) <= MAX_ENUMERATED_COLUMNS:
            return set(range(2 ** len(cols)))
    return None


def _dict_literal(node: ast.expr) -> Optional[List[Tuple[ast.expr, ast.expr]]]:
    if isinstance(node, ast.Dict):
        return [(k, v) for k, v in zip(node.keys, node.values) if k is not None]
    return None


def _frozenset_key(node: ast.expr) -> Optional[FrozenSet[str]]:
    if (
        isinstance(node, ast.Call)
        and isinstance(node.func, ast.Name)
        and node.func.id == "frozenset"
    ):
        if not node.args:
            return frozenset()
        if len(node.args) == 1:
            elems = _string_tuple(node.args[0])
            if elems or (
                isinstance(node.args[0], ast.Tuple) and not node.args[0].elts
            ):
                return frozenset(elems)
    return None


def _method_ref(node: ast.expr, class_name: str) -> Optional[str]:
    if (
        isinstance(node, ast.Attribute)
        and isinstance(node.value, ast.Name)
        and node.value.id == class_name
    ):
        return node.attr
    return None


def _check_dispatch(
    model: _ModuleModel,
    diags: List[Diagnostic],
    meta,
    spec,
    decomposition,
) -> None:
    name = model.name
    cls = model.cls
    assert cls is not None
    expected = _expected_masks(model, meta, spec, decomposition)
    referenced: Set[str] = set()

    def err(code: str, message: str, node: Optional[ast.AST] = None, table: str = "") -> None:
        diags.append(
            Diagnostic(
                code, ERROR, message, Loc(name, table, getattr(node, "lineno", 0) or 0)
            )
        )

    # _VPLANS: int mask -> Class._qv_<mask>
    vplans = _dict_literal(model.dispatch.get("_VPLANS", ast.Constant(value=None)))
    if vplans is None:
        err("EA001", "_VPLANS dispatch table missing or not a dict literal", table="_VPLANS")
    else:
        seen_masks: Set[int] = set()
        for key, value in vplans:
            if not (isinstance(key, ast.Constant) and isinstance(key.value, int)):
                err("EA041", "non-integer _VPLANS key", key, "_VPLANS")
                continue
            mask = key.value
            seen_masks.add(mask)
            method = _method_ref(value, cls.name)
            if method is None or method not in model.methods:
                err(
                    "EA041",
                    f"_VPLANS[{mask}] does not reference a defined method",
                    value,
                    "_VPLANS",
                )
                continue
            referenced.add(method)
            if method != f"_qv_{mask}":
                err(
                    "EA041",
                    f"_VPLANS[{mask}] dispatches to {method} (mask mismatch)",
                    value,
                    "_VPLANS",
                )
            if expected is not None and mask not in expected:
                err(
                    "EA041",
                    f"_VPLANS[{mask}] is a dead entry: no adequate bound-pattern "
                    "has that mask",
                    key,
                    "_VPLANS",
                )
        if expected is not None:
            for missing in sorted(expected - seen_masks):
                err(
                    "EA040",
                    f"_VPLANS is missing adequate bound-pattern mask {missing} "
                    f"(columns {sorted(c for c in model.cols if model.col_bit[c] & missing)})",
                    table="_VPLANS",
                )

    # _PLANS: frozenset key -> Class._q_<mask>
    plans = _dict_literal(model.dispatch.get("_PLANS", ast.Constant(value=None)))
    if plans is None:
        err("EA001", "_PLANS dispatch table missing or not a dict literal", table="_PLANS")
    else:
        seen_sets: Set[FrozenSet[str]] = set()
        for key, value in plans:
            cols = _frozenset_key(key)
            if cols is None:
                err("EA041", "non-frozenset _PLANS key", key, "_PLANS")
                continue
            seen_sets.add(cols)
            mask = model.mask(cols)
            method = _method_ref(value, cls.name)
            if method is None or method not in model.methods:
                err(
                    "EA041",
                    f"_PLANS[{sorted(cols)}] does not reference a defined method",
                    value,
                    "_PLANS",
                )
                continue
            referenced.add(method)
            if mask is None or (expected is not None and mask not in expected):
                err(
                    "EA041",
                    f"_PLANS[{sorted(cols)}] is a dead entry: not an adequate "
                    "bound-pattern of this layout",
                    key,
                    "_PLANS",
                )
        if expected is not None and model.cols:
            for mask in sorted(expected):
                cols = frozenset(c for c in model.cols if model.col_bit[c] & mask)
                if cols not in seen_sets:
                    err(
                        "EA040",
                        f"_PLANS is missing adequate bound-pattern {sorted(cols)}",
                        table="_PLANS",
                    )

    # _VCOLS: must start empty (a memo filled at run time).
    vcols = model.dispatch.get("_VCOLS")
    if vcols is None:
        err("EA001", "_VCOLS memo missing", table="_VCOLS")
    elif not (isinstance(vcols, ast.Dict) and not vcols.keys):
        err(
            "EA042",
            "_VCOLS must be initialised empty (it memoises pattern shapes at "
            "run time; seeded entries would bypass dispatch validation)",
            vcols,
            "_VCOLS",
        )

    # _RM: optional; keys must be adequate patterns with matching handlers.
    rm = model.dispatch.get("_RM")
    if rm is not None:
        rm_entries = _dict_literal(rm)
        if rm_entries is None:
            err("EA001", "_RM dispatch table is not a dict literal", table="_RM")
            rm_entries = []
        rm_masks: Set[int] = set()
        for key, value in rm_entries:
            cols = _frozenset_key(key)
            mask = model.mask(cols) if cols is not None else None
            if cols is None or mask is None:
                err("EA043", "invalid _RM key", key, "_RM")
                continue
            rm_masks.add(mask)
            if expected is not None and mask not in expected:
                err(
                    "EA043",
                    f"_RM[{sorted(cols)}] is not an adequate bound-pattern",
                    key,
                    "_RM",
                )
            method = _method_ref(value, cls.name)
            if method is None or method not in model.methods:
                err(
                    "EA043",
                    f"_RM[{sorted(cols)}] does not reference a defined method",
                    value,
                    "_RM",
                )
                continue
            referenced.add(method)
            if method != f"_rm_{mask}":
                err(
                    "EA043",
                    f"_RM[{sorted(cols)}] dispatches to {method} (mask mismatch)",
                    value,
                    "_RM",
                )
        if meta and isinstance(meta.get("batch_masks"), list):
            if rm_masks != set(meta["batch_masks"]):
                diags.append(
                    Diagnostic(
                        "EA045",
                        WARNING,
                        f"_RM masks {sorted(rm_masks)} disagree with "
                        f"__repro_meta__ batch_masks {sorted(meta['batch_masks'])}",
                        Loc(name, "_RM"),
                    )
                )

    # Dead specialised methods: emitted but unreachable from any table.
    for method_name in model.methods:
        if re.match(r"^(_qv_\d+|_q_\d+|_rm_\d+)$", method_name) and method_name not in referenced:
            diags.append(
                Diagnostic(
                    "EA044",
                    ERROR,
                    f"specialised method {method_name} is unreachable from any "
                    "dispatch table (dead emitted code)",
                    Loc(name, method_name, model.methods[method_name].lineno),
                )
            )


# -- meta cross-check -----------------------------------------------------------


def _check_meta(model: _ModuleModel, diags: List[Diagnostic], meta) -> None:
    if not meta:
        return
    cls = model.cls
    assert cls is not None
    if meta.get("class_name") not in (None, cls.name):
        diags.append(
            Diagnostic(
                "EA045",
                WARNING,
                f"emitted class {cls.name} disagrees with __repro_meta__ "
                f"class_name {meta.get('class_name')!r}",
                Loc(model.name, cls.name),
            )
        )
    meta_cols = meta.get("columns")
    if isinstance(meta_cols, list) and model.cols and list(model.cols) != meta_cols:
        diags.append(
            Diagnostic(
                "EA045",
                WARNING,
                f"emitted _COLS {list(model.cols)} disagree with __repro_meta__ "
                f"columns {meta_cols}",
                Loc(model.name, "_COLS"),
            )
        )
    meta_sites = meta.get("fault_sites")
    if isinstance(meta_sites, list):
        emitted_sites: Set[str] = set()
        for node in ast.walk(cls):
            if (
                isinstance(node, ast.Call)
                and isinstance(node.func, ast.Attribute)
                and node.func.attr == "check"
                and isinstance(node.func.value, ast.Name)
                and node.func.value.id in ("_F", "FAULTS")
                and node.args
                and isinstance(node.args[0], ast.Constant)
                and isinstance(node.args[0].value, str)
            ):
                emitted_sites.add(node.args[0].value)
        if emitted_sites != set(meta_sites):
            diags.append(
                Diagnostic(
                    "EA045",
                    WARNING,
                    f"emitted fault sites {sorted(emitted_sites)} disagree with "
                    f"__repro_meta__ fault_sites {sorted(meta_sites)}",
                    Loc(model.name, cls.name),
                )
            )
