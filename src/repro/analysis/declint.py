"""``DL0xx`` — decomposition / specification linting before synthesis.

Where :mod:`repro.analysis.emitted` proves disciplines on the *output* of
the compiler, this pass inspects its *input*: the decomposition itself, the
spec's FDs, and (when given) the workload trace the layout is meant to
serve.  One code (``DL001``) is an error — the parser silently drops unused
``where`` definitions, so a typo'd sharing name vanishes without a sound —
the rest are advisory: they flag layouts that are *legal but wasteful* for
the given FDs or trace, which is exactly what several benchmark
*alternative* layouts are on purpose.

Diagnostic codes:

=======  =====================================================================
DL001    unused ``where`` definition (unreachable node) — **error**
DL002    edge whose key is FD-implied by the columns already bound (warning)
DL003    ``where``-defined node referenced by a single parent (warning)
DL004    ordered structure whose key the trace never range-queries (warning)
DL005    trace range-queries a column no ordered full path serves (warning)
DL006    key-projection branch no trace query plan ever touches (warning)
=======  =====================================================================
"""

from __future__ import annotations

import re
from typing import Dict, List, Set, Union

from ..autotuner.scorer import estimate_edge_sizes
from ..core.spec import RelationSpec
from ..decomposition.model import Decomposition, DecompNode, MapEdge
from ..decomposition.parser import parse_decomposition
from ..decomposition.plan import JoinPlan, QueryPlan, plan_query
from .diagnostics import ERROR, WARNING, Diagnostic, Loc

__all__ = ["lint"]

_REF_RE = re.compile(r"@([A-Za-z_]\w*)")


def _edge_label(edge: MapEdge) -> str:
    return "{" + ", ".join(sorted(edge.key)) + "}:" + edge.structure


def lint(
    spec: RelationSpec,
    layout: Union[Decomposition, str],
    trace=None,
    name: str = "layout",
) -> List[Diagnostic]:
    """Lint *layout* for *spec* (and optionally against a recorded *trace*).

    *layout* may be the textual notation (enabling the text-level checks
    DL001/DL003, which need the ``where`` clauses the parser erases) or an
    already-parsed :class:`Decomposition`.  *trace* is a
    :class:`repro.autotuner.Trace`; without one the trace-informed checks
    (DL004–DL006) are skipped.
    """
    diags: List[Diagnostic] = []
    if isinstance(layout, str):
        _check_where_definitions(layout, name, diags)
        decomposition = parse_decomposition(layout)
    else:
        decomposition = layout
    _check_fd_redundant_edges(spec, decomposition, name, diags)
    if trace is not None:
        range_cols = {op[1] for op in trace.operations if op[0] == "range"}
        _check_ordered_structures(decomposition, range_cols, name, diags)
        _check_range_coverage(spec, decomposition, range_cols, name, diags)
        _check_unjoined_branches(spec, decomposition, trace, name, diags)
    return diags


# -- DL001 / DL003: where-definition reachability -------------------------------


def _check_where_definitions(text: str, name: str, diags: List[Diagnostic]) -> None:
    """Count ``@name`` definitions vs references in the textual notation.

    The parser resolves sharing references against the ``where`` environment
    and silently ignores definitions nothing references — so a misspelled
    reference doesn't fail, it just quietly builds an unshared layout.
    """
    defs: Dict[str, int] = {}
    refs: Dict[str, int] = {}
    for match in _REF_RE.finditer(text):
        ident = match.group(1)
        rest = text[match.end():].lstrip()
        if rest.startswith("="):
            defs[ident] = defs.get(ident, 0) + 1
        else:
            refs[ident] = refs.get(ident, 0) + 1
    for ident in sorted(defs):
        count = refs.get(ident, 0)
        if count == 0:
            diags.append(
                Diagnostic(
                    "DL001",
                    ERROR,
                    f"where-definition @{ident} is never referenced — the parser "
                    "drops it silently, so the layout is missing a node you "
                    "wrote (typo'd reference?)",
                    Loc(name, f"@{ident}"),
                )
            )
        elif count == 1:
            diags.append(
                Diagnostic(
                    "DL003",
                    WARNING,
                    f"where-definition @{ident} has a single parent — sharing "
                    "buys nothing with one referrer; inline it",
                    Loc(name, f"@{ident}"),
                )
            )


# -- DL002: FD-redundant edges --------------------------------------------------


def _check_fd_redundant_edges(
    spec: RelationSpec, decomposition: Decomposition, name: str, diags: List[Diagnostic]
) -> None:
    fds = spec.fds
    seen: Set[int] = set()
    for path in decomposition.paths():
        bound: Set[str] = set()
        for edge in path.edges:
            if bound and id(edge) not in seen and edge.key <= fds.closure(bound):
                seen.add(id(edge))
                diags.append(
                    Diagnostic(
                        "DL002",
                        WARNING,
                        f"edge {_edge_label(edge)} is redundant under the FDs: "
                        f"{sorted(edge.key)} is determined by the bound columns "
                        f"{sorted(bound)}, so each container holds exactly one "
                        "entry (a unit leaf or merged key would be cheaper)",
                        Loc(name, _edge_label(edge)),
                    )
                )
            bound |= edge.key


# -- DL004: ordered structures the trace never range-queries --------------------


def _check_ordered_structures(
    decomposition: Decomposition, range_cols: Set[str], name: str, diags: List[Diagnostic]
) -> None:
    for node in decomposition.nodes():
        for edge in node.edges:
            if not edge.structure_class().ORDERED:
                continue
            key_col = next(iter(edge.key)) if len(edge.key) == 1 else None
            if key_col is None or key_col not in range_cols:
                diags.append(
                    Diagnostic(
                        "DL004",
                        WARNING,
                        f"ordered structure {_edge_label(edge)} but the trace "
                        "never range-queries its key — paying the O(log n) "
                        "probes for nothing; a hash table would be cheaper",
                        Loc(name, _edge_label(edge)),
                    )
                )


# -- DL005: range-heavy traces over hash primaries ------------------------------


def _check_range_coverage(
    spec: RelationSpec,
    decomposition: Decomposition,
    range_cols: Set[str],
    name: str,
    diags: List[Diagnostic],
) -> None:
    all_cols = frozenset(spec.columns)
    for col in sorted(range_cols):
        served = any(
            path.edges
            and len(path.edges[0].key) == 1
            and next(iter(path.edges[0].key)) == col
            and path.edges[0].structure_class().ORDERED
            and path.covered == all_cols
            for path in decomposition.paths()
        )
        if not served:
            diags.append(
                Diagnostic(
                    "DL005",
                    WARNING,
                    f"the trace range-queries {col!r} but no full-coverage path "
                    "starts with an ordered single-column edge on it — every "
                    "range falls back to a filtered full scan",
                    Loc(name, col),
                )
            )


# -- DL006: projection branches no plan joins -----------------------------------


def _branch_edges(root_edge: MapEdge) -> List[MapEdge]:
    edges = [root_edge]
    stack: List[DecompNode] = [root_edge.child]
    seen: Set[int] = set()
    while stack:
        node = stack.pop()
        if id(node) in seen:
            continue
        seen.add(id(node))
        for edge in node.edges:
            edges.append(edge)
            stack.append(edge.child)
    return edges


def _plan_edge_ids(plan) -> Set[int]:
    if isinstance(plan, JoinPlan):
        return _plan_edge_ids(plan.build) | _plan_edge_ids(plan.probe)
    if isinstance(plan, QueryPlan):
        return {id(step.edge) for step in plan.steps}
    return set()


def _check_unjoined_branches(
    spec: RelationSpec,
    decomposition: Decomposition,
    trace,
    name: str,
    diags: List[Diagnostic],
) -> None:
    all_cols = frozenset(spec.columns)
    root = decomposition.root
    if not root.edges:
        return
    # Which edges does any trace-pattern plan actually walk?  Plan both
    # unsized (the CLI compile) and with trace-estimated sizes: a branch
    # the planner only reaches as a join side under live sizes — the
    # key-projection secondary of the reverse-neighbour graph — is serving
    # queries, not dead weight.
    used: Set[int] = set()
    patterns = set(trace.profile().pattern_columns())
    patterns.add(frozenset())
    try:
        sizes = estimate_edge_sizes(decomposition, trace.profile())
    except Exception:
        sizes = None  # trace stub without distinct-count statistics
    size_variants = [None] if sizes is None else [None, sizes]
    for pattern in patterns:
        for variant in size_variants:
            try:
                plan = plan_query(decomposition, pattern, spec=spec, sizes=variant)
            except Exception:
                continue
            used |= _plan_edge_ids(plan)
    for root_edge in root.edges:
        branch_paths = [p for p in decomposition.paths() if p.edges and p.edges[0] is root_edge]
        if not branch_paths:
            continue
        if any(p.covered == all_cols for p in branch_paths):
            continue  # full branch, not a key projection
        edge_ids = {id(e) for e in _branch_edges(root_edge)}
        if not (edge_ids & used):
            diags.append(
                Diagnostic(
                    "DL006",
                    WARNING,
                    f"key-projection branch {_edge_label(root_edge)} is never "
                    "walked by any trace query plan (neither directly nor as a "
                    "join side) — it costs every mutation and serves nothing",
                    Loc(name, _edge_label(root_edge)),
                )
            )
