"""``repro.analysis`` — static verification of the synthesis pipeline.

Two passes, one diagnostic model:

* :func:`verify_class` / :func:`verify_source` (``EA0xx``) — parse a
  compiled relation class's emitted source and prove the structural
  disciplines on every path: journalled mutations inside rollback scopes,
  access charges dominating every counted probe, guarded and registered
  fault sites, complete dispatch tables, and closed attribute sets.
* :func:`lint` (``DL0xx``) — lint a decomposition (text or parsed) against
  its spec's FDs and, optionally, a recorded workload trace: unreachable
  ``where`` definitions, FD-redundant edges, single-parent sharing, ordered
  structures no range query pays for, uncovered range columns, and
  projection branches no plan walks.

``python -m repro.analysis --all-layouts --strict`` runs both over every
benchmark layout and fails on any error-severity finding — the CI gate.

The motivation is the hypersafety framing in PAPERS.md: tier equivalence
and rollback-restores-state are 2-safety properties that sampled testing
(chaos sweeps, differential traces) can only spot-check, while the emitted
code's *disciplines* are plain 1-safety structure a static pass can prove
exhaustively on every emitted path of every layout.
"""

from .declint import lint
from .diagnostics import (
    ERROR,
    WARNING,
    Diagnostic,
    Loc,
    has_errors,
    render_json,
    render_text,
    summarize,
)
from .emitted import verify_class, verify_source

__all__ = [
    "ERROR",
    "WARNING",
    "Diagnostic",
    "Loc",
    "has_errors",
    "lint",
    "render_json",
    "render_text",
    "summarize",
    "verify_class",
    "verify_source",
]
