"""Shared diagnostic model for the static-analysis passes.

Both analyses — the emitted-code verifier (:mod:`repro.analysis.emitted`,
``EA0xx`` codes) and the decomposition linter (:mod:`repro.analysis.declint`,
``DL0xx`` codes) — report through one :class:`Diagnostic` record so the CLI,
the CI gate, and the tests consume a single shape.  Codes are stable
identifiers (documented in the README's "Static analysis" section); severity
is the gate: ``error`` findings fail ``--strict`` runs, ``warning`` findings
are advisory style/performance signals that legitimately fire on some
benchmark *alternative* layouts (they exist to be worse).
"""

from __future__ import annotations

import json
from typing import Dict, Iterable, List, Optional, Sequence

__all__ = [
    "ERROR",
    "WARNING",
    "Diagnostic",
    "Loc",
    "has_errors",
    "render_json",
    "render_text",
    "summarize",
]

ERROR = "error"
WARNING = "warning"
_SEVERITIES = (ERROR, WARNING)


class Loc:
    """Where a finding anchors: a unit (class/layout), scope, and line.

    ``unit`` names the analysed artifact (a compiled class name or a
    layout's display name), ``scope`` the method or edge inside it, and
    ``line`` the 1-based line in the emitted source when the finding came
    from an AST node (0 when the finding is structural, e.g. a missing
    dispatch entry has no line to point at).
    """

    __slots__ = ("unit", "scope", "line")

    def __init__(self, unit: str, scope: str = "", line: int = 0) -> None:
        self.unit = unit
        self.scope = scope
        self.line = line

    def __str__(self) -> str:
        parts = [self.unit]
        if self.scope:
            parts.append(self.scope)
        where = ".".join(parts)
        if self.line:
            where += f":{self.line}"
        return where

    def __repr__(self) -> str:
        return f"Loc({self.unit!r}, {self.scope!r}, {self.line})"

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, Loc):
            return NotImplemented
        return (self.unit, self.scope, self.line) == (other.unit, other.scope, other.line)

    def __hash__(self) -> int:
        return hash((self.unit, self.scope, self.line))


class Diagnostic:
    """One finding: a stable code, a severity, a message, and a location."""

    __slots__ = ("code", "severity", "message", "loc")

    def __init__(self, code: str, severity: str, message: str, loc: Loc) -> None:
        if severity not in _SEVERITIES:
            raise ValueError(f"unknown severity {severity!r}; expected one of {_SEVERITIES}")
        self.code = code
        self.severity = severity
        self.message = message
        self.loc = loc

    def __str__(self) -> str:
        return f"{self.loc}: {self.severity} {self.code}: {self.message}"

    def __repr__(self) -> str:
        return (
            f"Diagnostic({self.code!r}, {self.severity!r}, {self.message!r}, {self.loc!r})"
        )

    def sort_key(self) -> tuple:
        return (
            self.loc.unit,
            0 if self.severity == ERROR else 1,
            self.code,
            self.loc.scope,
            self.loc.line,
        )

    def to_dict(self) -> Dict[str, object]:
        return {
            "code": self.code,
            "severity": self.severity,
            "message": self.message,
            "unit": self.loc.unit,
            "scope": self.loc.scope,
            "line": self.loc.line,
        }


def has_errors(diagnostics: Iterable[Diagnostic]) -> bool:
    return any(d.severity == ERROR for d in diagnostics)


def summarize(diagnostics: Sequence[Diagnostic]) -> str:
    """One-line roll-up (``3 error(s), 2 warning(s) in 22 unit(s)``)."""
    errors = sum(1 for d in diagnostics if d.severity == ERROR)
    warnings = len(diagnostics) - errors
    units = len({d.loc.unit for d in diagnostics})
    return f"{errors} error(s), {warnings} warning(s) in {units} unit(s)"


def render_text(diagnostics: Sequence[Diagnostic]) -> str:
    """Human-readable listing, one finding per line, grouped by unit."""
    if not diagnostics:
        return "no findings\n"
    lines: List[str] = []
    last_unit: Optional[str] = None
    for diag in sorted(diagnostics, key=Diagnostic.sort_key):
        if diag.loc.unit != last_unit:
            lines.append(f"== {diag.loc.unit}")
            last_unit = diag.loc.unit
        where = diag.loc.scope or "<module>"
        if diag.loc.line:
            where += f":{diag.loc.line}"
        lines.append(f"  {diag.severity:<7} {diag.code}  {where}  {diag.message}")
    lines.append(summarize(diagnostics))
    return "\n".join(lines) + "\n"


def render_json(diagnostics: Sequence[Diagnostic], **extra: object) -> str:
    """Machine-readable dump (the CI artifact): findings plus a summary."""
    payload: Dict[str, object] = {
        "findings": [d.to_dict() for d in sorted(diagnostics, key=Diagnostic.sort_key)],
        "errors": sum(1 for d in diagnostics if d.severity == ERROR),
        "warnings": sum(1 for d in diagnostics if d.severity == WARNING),
    }
    payload.update(extra)
    return json.dumps(payload, indent=2, sort_keys=True) + "\n"
