"""``repro.live`` — a self-tuning relation behind one stable handle.

The paper's synthesis loop (Section 5) is offline: record a trace, pick a
layout, compile, done.  This module closes the loop *online*:

* :class:`SamplingTraceRecorder` — an always-on, bounded-overhead workload
  sampler: a decayed reservoir of concrete operations (the re-tune trace's
  tail) plus a sliding-window operation-mix histogram (the drift signal).
  Steady-state cost is O(1) per operation — one counter bump, one deque
  append and one RNG draw — and O(capacity + window) memory, so profiling
  can stay on in production;
* :class:`RetunePolicy` — when to re-tune: a minimum operation count
  between tunings plus a total-variation drift threshold on the observed
  operation mix;
* :class:`LiveRelation` — a :class:`~repro.core.interface.RelationInterface`
  facade that owns the current backing implementation (reference,
  interpreted or compiled), samples every operation, re-runs the autotuner
  when the mix drifts, and **migrates between layouts via α**: both the old
  and the new layout provably represent the same relation, so migration is
  enumerate-the-old + reinsert-into-the-new (optionally spread over a
  dual-write window for large instances), checked for α-equivalence, then
  an atomic swap of the backing object — every reference through the facade
  sees the new layout;
* :func:`open_relation` (re-exported as ``repro.open``) — the one factory
  behind every tier: ``repro.open(spec, layout, tier=..., tune=...,
  live=...)`` replaces reaching for ``ReferenceRelation``,
  ``DecomposedRelation``, ``compile_relation`` or ``synthesize`` directly.

The re-tune trace is synthesized from what the facade knows: inserts
reconstructing the **current contents** (the data distribution) followed by
the reservoir's sampled operations in arrival order (the operation mix) —
exactly the two inputs the autotuner's scorer consumes.  The current layout
is force-included in the search, so a re-tune whose winner keeps the
current shape swaps nothing.
"""

from __future__ import annotations

import math
import random
from collections import deque
from typing import Deque, Dict, Iterable, Iterator, List, Mapping, Optional, Tuple as PyTuple, Union

from .autotuner.enumerator import canonical_shape
from .autotuner.trace import Trace
from .autotuner.tuner import TuningResult, autotune
from .codegen import compile_relation
from .core.errors import LiveRelationError
from .core.interface import RelationInterface, coerce_tuple
from .core.reference import ReferenceRelation
from .core.relation import Relation
from .core.spec import RelationSpec
from .core.tuples import Tuple
from .decomposition.model import Decomposition
from .decomposition.parser import parse_decomposition
from .decomposition.relation import DecomposedRelation

__all__ = [
    "LiveRelation",
    "RetunePolicy",
    "RetuneReport",
    "SamplingTraceRecorder",
    "default_layout",
    "open_relation",
]

#: The operation kinds a sampler key distinguishes (insert keys carry no
#: pattern — every insert binds the full column set).
Operation = PyTuple


def _op_key(op: Operation) -> PyTuple:
    """The mix-histogram key of one operation: kind + bound pattern columns."""
    kind = op[0]
    if kind == "insert":
        return ("insert",)
    return (kind, op[1].columns if isinstance(op[1], Tuple) else frozenset())


class SamplingTraceRecorder:
    """Bounded-overhead sampler of a live relation's operation stream.

    Two structures, both O(1) per observed operation:

    * a **decayed reservoir** of ``capacity`` concrete operations.  Classic
      reservoir sampling keeps a uniform sample of *all* history; here the
      inclusion draw is floored at ``horizon`` — operation *i* enters with
      probability ``capacity / min(i, horizon)`` — so recent operations
      always retain at least a ``capacity / horizon`` chance and the sample
      decays toward the recent workload.  :meth:`sampled_operations`
      returns the survivors in arrival order, forming the tail of the
      re-tune trace;
    * a **sliding window** (``window`` most recent operations) of mix-key
      counts — ``(kind, pattern columns)`` — compared against the mix at
      the last re-tune (:meth:`rebase`) by total-variation distance
      (:meth:`drift`), the re-tune policy's drift signal.

    The RNG is seeded, so a seeded workload produces a deterministic sample
    (and deterministic re-tune decisions — the property the differential
    tests and the CI gate rely on).
    """

    __slots__ = (
        "capacity",
        "horizon",
        "window",
        "_rng",
        "_seen",
        "_reservoir",
        "_recent",
        "_recent_counts",
        "_baseline_mix",
    )

    def __init__(
        self,
        capacity: int = 256,
        horizon: int = 4096,
        window: int = 512,
        seed: int = 0,
    ):
        if capacity < 1 or window < 1 or horizon < capacity:
            raise LiveRelationError(
                f"sampler needs capacity >= 1, window >= 1 and horizon >= capacity; "
                f"got capacity={capacity}, window={window}, horizon={horizon}"
            )
        self.capacity = capacity
        self.horizon = horizon
        self.window = window
        self._rng = random.Random(seed)
        self._seen = 0
        #: ``(arrival index, operation)`` pairs; order restored on demand.
        self._reservoir: List[PyTuple[int, Operation]] = []
        self._recent: Deque[PyTuple] = deque(maxlen=window)
        self._recent_counts: Dict[PyTuple, int] = {}
        self._baseline_mix: Optional[Dict[PyTuple, float]] = None

    # -- observation (the O(1) hot path) ----------------------------------------

    def observe(self, op: Operation) -> None:
        """Record one operation: update the mix window, maybe sample it."""
        self._seen += 1
        key = _op_key(op)
        recent = self._recent
        counts = self._recent_counts
        if len(recent) == self.window:
            evicted = recent[0]
            remaining = counts[evicted] - 1
            if remaining:
                counts[evicted] = remaining
            else:
                del counts[evicted]
        recent.append(key)
        counts[key] = counts.get(key, 0) + 1

        reservoir = self._reservoir
        if len(reservoir) < self.capacity:
            reservoir.append((self._seen, op))
        else:
            slot = self._rng.randrange(min(self._seen, self.horizon))
            if slot < self.capacity:
                reservoir[slot] = (self._seen, op)

    # -- re-tune inputs ----------------------------------------------------------

    @property
    def seen(self) -> int:
        """Total operations observed."""
        return self._seen

    def sampled_operations(self) -> List[Operation]:
        """The reservoir's operations in arrival order (the trace tail)."""
        return [op for _, op in sorted(self._reservoir)]

    def recent_mix(self) -> Dict[PyTuple, float]:
        """The sliding window's operation mix, normalised to frequencies."""
        total = len(self._recent)
        if not total:
            return {}
        return {key: count / total for key, count in self._recent_counts.items()}

    def drift(self) -> float:
        """Total-variation distance between the recent mix and the baseline.

        ``inf`` before the first :meth:`rebase` — a live relation that has
        never been tuned treats any sufficiently long prefix as drifted.
        """
        if self._baseline_mix is None:
            return math.inf
        recent = self.recent_mix()
        keys = set(recent) | set(self._baseline_mix)
        return 0.5 * sum(
            abs(recent.get(k, 0.0) - self._baseline_mix.get(k, 0.0)) for k in keys
        )

    def rebase(self) -> None:
        """Adopt the current window mix as the drift baseline (post-tune)."""
        self._baseline_mix = self.recent_mix()

    def stats(self) -> Dict[str, object]:
        return {
            "seen": self._seen,
            "sampled": len(self._reservoir),
            "capacity": self.capacity,
            "horizon": self.horizon,
            "window": self.window,
            "drift": None if self._baseline_mix is None else round(self.drift(), 4),
        }

    def __repr__(self) -> str:
        return (
            f"SamplingTraceRecorder(seen={self._seen}, "
            f"sampled={len(self._reservoir)}/{self.capacity})"
        )


class RetunePolicy:
    """When a :class:`LiveRelation` re-tunes itself.

    Attributes:
        auto: run :meth:`LiveRelation.maybe_retune` after every operation.
            ``False`` makes the facade purely explicit (``retune()`` only) —
            the deterministic-test configuration.
        min_ops: minimum operations since the last tune before the drift
            check fires (also the warm-up length of the very first tune,
            whose drift is ``inf`` by construction).
        drift_threshold: total-variation distance on the operation mix at or
            above which a re-tune triggers.
        dual_write_threshold: instances at least this large migrate through
            an incremental dual-write window instead of one synchronous
            enumerate + reinsert pass.
        migrate_batch: rows copied per subsequent operation while a
            dual-write window is open.
    """

    __slots__ = ("auto", "min_ops", "drift_threshold", "dual_write_threshold", "migrate_batch")

    def __init__(
        self,
        auto: bool = True,
        min_ops: int = 512,
        drift_threshold: float = 0.3,
        dual_write_threshold: int = 100_000,
        migrate_batch: int = 64,
    ):
        if min_ops < 1 or migrate_batch < 1:
            raise LiveRelationError("min_ops and migrate_batch must be >= 1")
        if not 0.0 < drift_threshold:
            raise LiveRelationError("drift_threshold must be positive")
        self.auto = auto
        self.min_ops = min_ops
        self.drift_threshold = drift_threshold
        self.dual_write_threshold = dual_write_threshold
        self.migrate_batch = migrate_batch

    @classmethod
    def coerce(cls, value: Union["RetunePolicy", Mapping, None]) -> "RetunePolicy":
        if value is None:
            return cls()
        if isinstance(value, cls):
            return value
        if isinstance(value, Mapping):
            return cls(**value)
        raise LiveRelationError(
            f"tune policy must be a RetunePolicy or a mapping of its fields; got {value!r}"
        )

    def __repr__(self) -> str:
        return (
            f"RetunePolicy(auto={self.auto}, min_ops={self.min_ops}, "
            f"drift_threshold={self.drift_threshold})"
        )


class RetuneReport:
    """What one :meth:`LiveRelation.retune` decided and did."""

    __slots__ = (
        "op_index",
        "reason",
        "drift",
        "old_layout",
        "new_layout",
        "swapped",
        "migrated",
        "dual_write",
        "generation",
        "tuning",
    )

    def __init__(
        self,
        op_index: int,
        reason: str,
        drift: Optional[float],
        old_layout: Optional[str],
    ):
        self.op_index = op_index
        self.reason = reason
        self.drift = drift
        self.old_layout = old_layout
        self.new_layout: Optional[str] = None
        self.swapped = False
        self.migrated = 0
        self.dual_write = False
        self.generation: Optional[int] = None
        self.tuning: Optional[TuningResult] = None

    def describe(self) -> str:
        outcome = (
            f"swapped to {self.new_layout!r} ({self.migrated} row(s) migrated"
            + (", dual-write window)" if self.dual_write else ")")
            if self.swapped
            else "kept the current layout"
        )
        return f"retune @op {self.op_index} ({self.reason}): {outcome}"

    def __repr__(self) -> str:
        return f"RetuneReport(op={self.op_index}, swapped={self.swapped})"


class _Migration:
    """State of an open dual-write window (incremental α-migration)."""

    __slots__ = ("target", "pending", "batch", "report")

    def __init__(
        self,
        target: RelationInterface,
        pending: Deque[Tuple],
        batch: int,
        report: RetuneReport,
    ):
        self.target = target
        self.pending = pending
        self.batch = batch
        self.report = report


class LiveRelation(RelationInterface):
    """A relation that outlives — and re-chooses — its own representation.

    The facade owns a *backing* :class:`RelationInterface` (any tier),
    forwards the five relational operations to it, and samples each one
    through a :class:`SamplingTraceRecorder`.  When the sampled operation
    mix drifts past the :class:`RetunePolicy`'s threshold (or on an
    explicit :meth:`retune`), the autotuner is re-run on a trace
    synthesized from the current contents plus the sampled tail; if the
    winner's shape differs from the current layout, the instance is
    **migrated via α** — enumerated from the old backing and reinserted
    into a freshly compiled class for the new layout, checked for
    α-equivalence — and the backing is swapped atomically.  Holders of the
    facade never observe an intermediate state: reads are served by the old
    backing until the swap, and during a dual-write window every mutation
    is applied to both backings.

    The inspection dunders (``len``/``iter``/``in``) forward to the backing
    without being sampled, so inspection does not perturb the workload the
    autotuner sees.
    """

    def __init__(
        self,
        backing: RelationInterface,
        policy: Union[RetunePolicy, Mapping, None] = None,
        sampler: Optional[SamplingTraceRecorder] = None,
        name: str = "live",
    ):
        spec = getattr(backing, "spec", None)
        if spec is None:
            raise LiveRelationError(
                f"cannot wrap {type(backing).__name__}: the backing must expose "
                f"its RelationSpec as `.spec`"
            )
        self.spec: RelationSpec = spec
        self.name = name
        self.enforce_fds: bool = getattr(backing, "enforce_fds", True)
        self.policy = RetunePolicy.coerce(policy)
        self.sampler = sampler if sampler is not None else SamplingTraceRecorder()
        self.generation = 0
        self.retunes: List[RetuneReport] = []
        self._backing = backing
        self._ops_since_tune = 0
        self._migration: Optional[_Migration] = None

    # -- backing introspection ---------------------------------------------------

    @property
    def backing(self) -> RelationInterface:
        """The current backing implementation (changes across swaps)."""
        return self._backing

    def backing_decomposition(self) -> Optional[Decomposition]:
        """The backing's decomposition, if it has one (reference has none)."""
        decomposition = getattr(self._backing, "decomposition", None)
        if decomposition is None:
            decomposition = getattr(type(self._backing), "DECOMPOSITION", None)
        return decomposition

    def backing_layout(self) -> Optional[str]:
        decomposition = self.backing_decomposition()
        return decomposition.describe() if decomposition is not None else None

    def live_stats(self) -> Dict[str, object]:
        """Operational counters: sampling overhead is bounded by these.

        Per observed operation the facade pays one histogram update and one
        RNG draw (plus one reservoir slot write with probability
        ``capacity / min(seen, horizon)``); memory is bounded by
        ``capacity`` sampled operations plus a ``window``-length mix
        window.  No container access is charged — the sampled numbers the
        benchmark gates compare are untouched by sampling.
        """
        return {
            "generation": self.generation,
            "retunes": len(self.retunes),
            "swaps": sum(1 for r in self.retunes if r.swapped),
            "ops_since_tune": self._ops_since_tune,
            "migration_open": self._migration is not None,
            "backing": type(self._backing).__name__,
            "layout": self.backing_layout(),
            "sampler": self.sampler.stats(),
        }

    # -- the five operations (forward, then sample) ------------------------------

    def insert(self, tup: Union[Tuple, Mapping]) -> None:
        tup = coerce_tuple(tup)
        self._backing.insert(tup)
        if self._migration is not None:
            self._migration.target.insert(tup)
        self._observe(("insert", tup))

    def remove(self, pattern: Union[Tuple, Mapping, None] = None) -> None:
        pattern = coerce_tuple(pattern)
        self._backing.remove(pattern)
        if self._migration is not None:
            # Rows already copied are removed here; still-pending rows are
            # revalidated against the old backing at copy time and skipped.
            self._migration.target.remove(pattern)
        self._observe(("remove", pattern))

    def update(self, pattern: Union[Tuple, Mapping], changes: Union[Tuple, Mapping]) -> None:
        pattern = coerce_tuple(pattern)
        changes = coerce_tuple(changes)
        migration = self._migration
        if migration is not None:
            # Capture the victims *before* mutating: a pending (not yet
            # copied) victim would otherwise be skipped at copy time (the
            # old backing no longer holds its pre-update form) while its
            # post-update form was never enqueued.  Re-enqueueing the
            # merged rows closes that window; copy-time revalidation makes
            # the extra enqueue idempotent.
            victims = self._backing.query(pattern, None)
        self._backing.update(pattern, changes)
        if migration is not None:
            migration.target.update(pattern, changes)
            for victim in victims:
                migration.pending.append(victim.merge(changes))
        self._observe(("update", pattern, changes))

    def query(
        self,
        pattern: Union[Tuple, Mapping, None] = None,
        output: Union[str, Iterable[str], None] = None,
    ) -> List[Tuple]:
        pattern = coerce_tuple(pattern)
        if output is not None and not isinstance(output, str):
            output = tuple(output)
        results = self._backing.query(pattern, output)
        self._observe(("query", pattern, output))
        return results

    def _observe(self, op: Operation) -> None:
        """Sample one completed operation, then advance the control loop."""
        self._ops_since_tune += 1
        self.sampler.observe(op)
        if self._migration is not None:
            self._pump_migration()
        elif self.policy.auto:
            self.maybe_retune()

    # -- the re-tune loop --------------------------------------------------------

    def maybe_retune(self) -> Optional[RetuneReport]:
        """Re-tune if the policy says so; the cheap steady-state check.

        Returns the report when a re-tune ran (whether or not it swapped),
        ``None`` otherwise.  Never fires while a dual-write window is open.
        """
        if self._migration is not None:
            return None
        if self._ops_since_tune < self.policy.min_ops:
            return None
        drift = self.sampler.drift()
        if drift < self.policy.drift_threshold:
            return None
        reason = (
            "warm-up tune (no baseline mix yet)"
            if math.isinf(drift)
            else f"mix drift {drift:.2f} >= threshold {self.policy.drift_threshold:.2f}"
        )
        return self.retune(reason=reason, drift=None if math.isinf(drift) else drift)

    def _retune_trace(self) -> Trace:
        """Synthesize the tuning workload: current contents + sampled tail.

        Always built in ``enforce_fds=False`` (eviction) mode: the sampled
        tail is not a contiguous history — an old sampled insert can
        FD-conflict with the reconstructed current contents — so an FD-on
        replay could spuriously raise mid-scoring.  Eviction replay never
        raises and preserves the operation mix, which is what the scorer
        measures; the swapped-in backing still runs in the live relation's
        own FD mode.
        """
        contents = sorted(self._backing.to_relation().tuples, key=Tuple.sort_key)
        operations: List[Operation] = [("insert", tup) for tup in contents]
        operations.extend(self.sampler.sampled_operations())
        return Trace(
            self.spec,
            operations,
            name=f"{self.name}-gen{self.generation}",
            enforce_fds=False,
        )

    def retune(
        self,
        reason: str = "explicit",
        drift: Optional[float] = None,
        dual_write: Optional[bool] = None,
    ) -> RetuneReport:
        """Re-run the autotuner now; hot-swap the backing if a better layout wins.

        The current layout is force-included in the search, so "no better
        layout" resolves to a no-swap report rather than a migration to an
        equivalent shape.  ``dual_write`` forces (or suppresses) the
        incremental migration window; by default instances of at least
        ``policy.dual_write_threshold`` rows take it.

        Deterministic by construction for seeded workloads: the sampler's
        RNG is seeded and the autotuner's replay is exact.
        """
        if self._migration is not None:
            raise LiveRelationError(
                "cannot re-tune while a dual-write migration window is open "
                "(call finish_migration() first)"
            )
        report = RetuneReport(
            self.sampler.seen, reason, drift, self.backing_layout()
        )
        self.retunes.append(report)
        current = self.backing_decomposition()
        trace = self._retune_trace()
        include = [current] if current is not None else []
        # Eviction-mode replay, matching the synthesized trace (see
        # _retune_trace); the new backing itself runs in self.enforce_fds.
        report.tuning = autotune(self.spec, trace, include=include, enforce_fds=False)
        # The tune consumed this window: future drift is measured against it.
        self.sampler.rebase()
        self._ops_since_tune = 0

        winner = report.tuning.winner_decomposition
        report.new_layout = winner.describe()
        if current is not None and canonical_shape(winner) == canonical_shape(current):
            report.new_layout = report.old_layout
            return report

        new_cls = report.tuning.compile_winner()
        new_backing = new_cls(enforce_fds=self.enforce_fds)
        if dual_write is None:
            dual_write = len(self._backing) >= self.policy.dual_write_threshold
        if dual_write:
            pending: Deque[Tuple] = deque(
                sorted(self._backing.to_relation().tuples, key=Tuple.sort_key)
            )
            report.dual_write = True
            self._migration = _Migration(
                new_backing, pending, self.policy.migrate_batch, report
            )
            self._pump_migration()
        else:
            self._migrate_sync(new_backing, report)
        return report

    def _migrate_sync(self, new_backing: RelationInterface, report: RetuneReport) -> None:
        """One-pass α-migration: enumerate the old backing, reinsert, verify."""
        snapshot = self._backing.to_relation()
        for tup in sorted(snapshot.tuples, key=Tuple.sort_key):
            new_backing.insert(tup)
            report.migrated += 1
        self._verify_and_swap(new_backing, snapshot, report)

    def _pump_migration(self) -> None:
        """Copy the next batch of a dual-write window; swap when drained.

        Each pending row is revalidated against the old backing — a row
        removed or updated since the window opened is skipped (its current
        form reached the target through dual-writing or re-enqueueing).
        """
        migration = self._migration
        assert migration is not None
        pending = migration.pending
        for _ in range(min(migration.batch, len(pending))):
            row = pending.popleft()
            if self._backing.contains(row):
                migration.target.insert(row)
                migration.report.migrated += 1
        if not pending:
            self._migration = None
            self._verify_and_swap(
                migration.target, self._backing.to_relation(), migration.report
            )

    def finish_migration(self) -> None:
        """Drain any open dual-write window synchronously."""
        while self._migration is not None:
            self._pump_migration()

    def _verify_and_swap(
        self,
        new_backing: RelationInterface,
        expected: Relation,
        report: RetuneReport,
    ) -> None:
        """The α-equivalence gate, then the atomic swap."""
        check = getattr(new_backing, "check_well_formed", None)
        if check is not None:
            check()
        migrated = new_backing.to_relation()
        if migrated != expected:
            raise LiveRelationError(
                f"α-migration to {report.new_layout!r} diverged: the new backing "
                f"represents {len(migrated.tuples ^ expected.tuples)} differing "
                f"tuple(s) — refusing to swap"
            )
        self._backing = new_backing
        self.generation += 1
        report.swapped = True
        report.generation = self.generation

    # -- inspection (forwarded, never sampled) -----------------------------------

    def to_relation(self) -> Relation:
        return self._backing.to_relation()

    def checkpoint(self) -> Relation:
        return self.to_relation()

    def check_well_formed(self) -> None:
        check = getattr(self._backing, "check_well_formed", None)
        if check is not None:
            check()

    def __len__(self) -> int:
        return len(self._backing)

    def __iter__(self) -> Iterator[Tuple]:
        return iter(self._backing)

    def __contains__(self, pattern: object) -> bool:
        return pattern in self._backing

    def __repr__(self) -> str:
        return (
            f"LiveRelation({type(self._backing).__name__}, gen={self.generation}, "
            f"size={len(self)})"
        )


# -- the unified factory ---------------------------------------------------------

#: The tiers :func:`open_relation` accepts.
TIERS = ("auto", "reference", "interpreted", "compiled")


def default_layout(spec: RelationSpec) -> str:
    """The layout used when the caller supplies neither one nor a trace:
    one hash path keyed by the smallest minimal key, residual columns in
    the unit leaf — adequate for every specification by construction."""
    key = min(spec.minimal_keys(), key=lambda k: (len(k), tuple(sorted(k))))
    rest = sorted(spec.columns - key)
    return f"{', '.join(sorted(key))} -> htable {{{', '.join(rest)}}}"


def open_relation(
    spec: RelationSpec,
    layout: Union[Decomposition, str, None] = None,
    *,
    tier: str = "auto",
    tune: Optional[Trace] = None,
    live: bool = False,
    enforce_fds: bool = True,
    policy: Union[RetunePolicy, Mapping, None] = None,
    sampler: Optional[SamplingTraceRecorder] = None,
    class_name: Optional[str] = None,
    sizes=None,
) -> RelationInterface:
    """Open a relation: the one documented entry point for every tier.

    Exported as ``repro.open``.  Layout resolution:

    * ``layout`` given, ``tune=None`` — use that layout;
    * ``tune`` given (a :class:`~repro.autotuner.trace.Trace`) — run the §5
      autotuner and use its winner; a ``layout`` passed alongside is
      force-included in the search as a baseline candidate;
    * neither — :func:`default_layout` (a hash path over the smallest
      minimal key).

    ``tier`` selects the implementation: ``"reference"`` (the
    specification-level oracle; any layout is ignored), ``"interpreted"``
    (:class:`~repro.decomposition.relation.DecomposedRelation`),
    ``"compiled"`` (:func:`repro.codegen.compile_relation`), or ``"auto"``
    (currently the compiled tier — the fast one).  ``sizes`` are optional
    per-edge container-size estimates forwarded to the compiler's plan
    table (ignored by the other tiers; rejected together with ``tune``,
    whose winner carries its own trace-derived estimates).

    ``live=True`` wraps the backing in a :class:`LiveRelation` — an
    always-on sampled, self-re-tuning facade governed by ``policy`` (a
    :class:`RetunePolicy` or a mapping of its fields) and ``sampler``.
    """
    if tier not in TIERS:
        raise LiveRelationError(f"unknown tier {tier!r}; expected one of {TIERS}")
    if tune is not None and sizes is not None:
        raise LiveRelationError(
            "sizes cannot be combined with tune: the autotuned winner is "
            "compiled against its own trace-derived size estimates"
        )

    decomposition: Optional[Decomposition] = None
    tuning: Optional[TuningResult] = None
    if tune is not None:
        include = [layout] if layout is not None else []
        tuning = autotune(spec, tune, include=include, enforce_fds=enforce_fds)
        decomposition = tuning.winner_decomposition
    elif layout is not None:
        if isinstance(layout, str):
            decomposition = parse_decomposition(layout)
        else:
            decomposition = layout

    backing: RelationInterface
    if tier == "reference":
        backing = ReferenceRelation(spec, enforce_fds=enforce_fds)
    else:
        if decomposition is None:
            decomposition = parse_decomposition(default_layout(spec))
        if tier == "interpreted":
            backing = DecomposedRelation(spec, decomposition, enforce_fds=enforce_fds)
        else:  # "compiled" and "auto"
            if tuning is not None:
                cls = tuning.compile_winner(class_name)
            else:
                cls = compile_relation(spec, decomposition, class_name, sizes=sizes)
            backing = cls(enforce_fds=enforce_fds)

    if not live:
        return backing
    return LiveRelation(backing, policy=policy, sampler=sampler)
