"""``repro.live`` — a self-tuning relation behind one stable handle.

The paper's synthesis loop (Section 5) is offline: record a trace, pick a
layout, compile, done.  This module closes the loop *online*:

* :class:`SamplingTraceRecorder` — an always-on, bounded-overhead workload
  sampler: a decayed reservoir of concrete operations (the re-tune trace's
  tail) plus a sliding-window operation-mix histogram (the drift signal).
  Steady-state cost is O(1) per operation — one counter bump, one deque
  append and one RNG draw — and O(capacity + window) memory, so profiling
  can stay on in production;
* :class:`RetunePolicy` — when to re-tune: a minimum operation count
  between tunings plus a total-variation drift threshold on the observed
  operation mix;
* :class:`LiveRelation` — a :class:`~repro.core.interface.RelationInterface`
  facade that owns the current backing implementation (reference,
  interpreted or compiled), samples every operation, re-runs the autotuner
  when the mix drifts, and **migrates between layouts via α**: both the old
  and the new layout provably represent the same relation, so migration is
  enumerate-the-old + reinsert-into-the-new (optionally spread over a
  dual-write window for large instances), checked for α-equivalence, then
  an atomic swap of the backing object — every reference through the facade
  sees the new layout;
* :func:`open_relation` (re-exported as ``repro.open``) — the one factory
  behind every tier: ``repro.open(spec, layout, tier=..., tune=...,
  live=...)`` replaces reaching for ``ReferenceRelation``,
  ``DecomposedRelation``, ``compile_relation`` or ``synthesize`` directly.

The re-tune trace is synthesized from what the facade knows: inserts
reconstructing the **current contents** (the data distribution) followed by
the reservoir's sampled operations in arrival order (the operation mix) —
exactly the two inputs the autotuner's scorer consumes.  The current layout
is force-included in the search, so a re-tune whose winner keeps the
current shape swaps nothing.
"""

from __future__ import annotations

import math
import random
import threading
import time
from collections import deque
from typing import Deque, Dict, Iterable, Iterator, List, Mapping, Optional, Tuple as PyTuple, Union

from .autotuner.enumerator import canonical_shape
from .autotuner.scorer import ScoredCandidate
from .autotuner.trace import Trace
from .autotuner.tuner import TuningResult, autotune
from .codegen import compile_relation
from .core.errors import (
    FaultInjected,
    LiveRelationError,
    MigrationError,
    ReproError,
    RetuneFailed,
)
from .core.interface import RelationInterface, coerce_tuple
from .core.reference import ReferenceRelation
from .core.relation import Relation
from .core.spec import RelationSpec
from .core.tuples import Tuple
from .decomposition.model import Decomposition
from .decomposition.parser import parse_decomposition
from .decomposition.relation import DecomposedRelation
from .faults import FAULTS, register_site
from .structures.registry import structure_names

__all__ = [
    "LiveRelation",
    "RetunePolicy",
    "RetuneReport",
    "SamplingTraceRecorder",
    "default_layout",
    "open_relation",
]

# Fault-injection sites of the re-tune / migration pipeline (see
# :mod:`repro.faults`): each names one stage at which the self-healing loop
# must fail *cleanly* — abort the attempt, keep the old backing serving,
# quarantine the failed layout.
for _site in (
    "live.retune.tune",
    "live.retune.compile",
    "live.retune.verify",
    "live.migrate.copy",
    "live.migrate.dual_write",
    "live.swap",
):
    register_site(_site)
del _site

#: The operation kinds a sampler key distinguishes (insert keys carry no
#: pattern — every insert binds the full column set).
Operation = PyTuple

#: The migration guard's payback requirement: a swap must recoup its
#: migration cost within this many ``min_ops`` re-tune windows (or within
#: the ops actually observed since the last tune, whichever is longer).
#: Deliberately generous — the reservoir sample still contains pre-drift
#: operations, so the replayed access gap *understates* the winner's
#: steady-state advantage; the guard exists to stop marginal winners from
#: forcing a full-relation migration on big instances, not to second-guess
#: a clear drift.
_GUARD_PAYBACK_WINDOWS = 16


def _op_key(op: Operation) -> PyTuple:
    """The mix-histogram key of one operation: kind + bound pattern columns."""
    kind = op[0]
    if kind == "insert":
        return ("insert",)
    return (kind, op[1].columns if isinstance(op[1], Tuple) else frozenset())


class SamplingTraceRecorder:
    """Bounded-overhead sampler of a live relation's operation stream.

    Two structures, both O(1) per observed operation:

    * a **decayed reservoir** of ``capacity`` concrete operations.  Classic
      reservoir sampling keeps a uniform sample of *all* history; here the
      inclusion draw is floored at ``horizon`` — operation *i* enters with
      probability ``capacity / min(i, horizon)`` — so recent operations
      always retain at least a ``capacity / horizon`` chance and the sample
      decays toward the recent workload.  :meth:`sampled_operations`
      returns the survivors in arrival order, forming the tail of the
      re-tune trace;
    * a **sliding window** (``window`` most recent operations) of mix-key
      counts — ``(kind, pattern columns)`` — compared against the mix at
      the last re-tune (:meth:`rebase`) by total-variation distance
      (:meth:`drift`), the re-tune policy's drift signal.

    The RNG is seeded, so a seeded workload produces a deterministic sample
    (and deterministic re-tune decisions — the property the differential
    tests and the CI gate rely on).
    """

    __slots__ = (
        "capacity",
        "horizon",
        "window",
        "_rng",
        "_seen",
        "_reservoir",
        "_recent",
        "_recent_counts",
        "_baseline_mix",
    )

    def __init__(
        self,
        capacity: int = 256,
        horizon: int = 4096,
        window: int = 512,
        seed: int = 0,
    ):
        if capacity < 1 or window < 1 or horizon < capacity:
            raise LiveRelationError(
                f"sampler needs capacity >= 1, window >= 1 and horizon >= capacity; "
                f"got capacity={capacity}, window={window}, horizon={horizon}"
            )
        self.capacity = capacity
        self.horizon = horizon
        self.window = window
        self._rng = random.Random(seed)
        self._seen = 0
        #: ``(arrival index, operation)`` pairs; order restored on demand.
        self._reservoir: List[PyTuple[int, Operation]] = []
        self._recent: Deque[PyTuple] = deque(maxlen=window)
        self._recent_counts: Dict[PyTuple, int] = {}
        self._baseline_mix: Optional[Dict[PyTuple, float]] = None

    # -- observation (the O(1) hot path) ----------------------------------------

    def observe(self, op: Operation) -> None:
        """Record one operation: update the mix window, maybe sample it."""
        self._seen += 1
        key = _op_key(op)
        recent = self._recent
        counts = self._recent_counts
        if len(recent) == self.window:
            evicted = recent[0]
            remaining = counts[evicted] - 1
            if remaining:
                counts[evicted] = remaining
            else:
                del counts[evicted]
        recent.append(key)
        counts[key] = counts.get(key, 0) + 1

        reservoir = self._reservoir
        if len(reservoir) < self.capacity:
            reservoir.append((self._seen, op))
        else:
            slot = self._rng.randrange(min(self._seen, self.horizon))
            if slot < self.capacity:
                reservoir[slot] = (self._seen, op)

    # -- re-tune inputs ----------------------------------------------------------

    @property
    def seen(self) -> int:
        """Total operations observed."""
        return self._seen

    def sampled_operations(self) -> List[Operation]:
        """The reservoir's operations in arrival order (the trace tail)."""
        return [op for _, op in sorted(self._reservoir)]

    def recent_mix(self) -> Dict[PyTuple, float]:
        """The sliding window's operation mix, normalised to frequencies."""
        total = len(self._recent)
        if not total:
            return {}
        return {key: count / total for key, count in self._recent_counts.items()}

    def drift(self) -> float:
        """Total-variation distance between the recent mix and the baseline.

        ``inf`` before the first :meth:`rebase` — a live relation that has
        never been tuned treats any sufficiently long prefix as drifted.
        """
        if self._baseline_mix is None:
            return math.inf
        recent = self.recent_mix()
        keys = set(recent) | set(self._baseline_mix)
        return 0.5 * sum(
            abs(recent.get(k, 0.0) - self._baseline_mix.get(k, 0.0)) for k in keys
        )

    def rebase(self) -> None:
        """Adopt the current window mix as the drift baseline (post-tune)."""
        self._baseline_mix = self.recent_mix()

    def stats(self) -> Dict[str, object]:
        return {
            "seen": self._seen,
            "sampled": len(self._reservoir),
            "capacity": self.capacity,
            "horizon": self.horizon,
            "window": self.window,
            "drift": None if self._baseline_mix is None else round(self.drift(), 4),
        }

    def __repr__(self) -> str:
        return (
            f"SamplingTraceRecorder(seen={self._seen}, "
            f"sampled={len(self._reservoir)}/{self.capacity})"
        )


class RetunePolicy:
    """When a :class:`LiveRelation` re-tunes itself.

    Attributes:
        auto: run :meth:`LiveRelation.maybe_retune` after every operation.
            ``False`` makes the facade purely explicit (``retune()`` only) —
            the deterministic-test configuration.
        min_ops: minimum operations since the last tune before the drift
            check fires (also the warm-up length of the very first tune,
            whose drift is ``inf`` by construction).
        drift_threshold: total-variation distance on the operation mix at or
            above which a re-tune triggers.
        dual_write_threshold: instances at least this large migrate through
            an incremental dual-write window instead of one synchronous
            enumerate + reinsert pass.
        migrate_batch: rows copied per subsequent operation while a
            dual-write window is open.
        background: run the autotuner search on a daemon thread instead of
            blocking the triggering operation; the winner is compiled and
            migrated on the caller's thread once the search completes (the
            swap itself never happens off-thread).
        retune_timeout: watchdog limit, in seconds, on a background tune.
            A search still running past this deadline is abandoned — its
            eventual result is discarded — and counted as a failure.
        max_failures: consecutive re-tune failures after which the circuit
            breaker opens: no further re-tunes run until
            :meth:`LiveRelation.reset_circuit`.
        backoff_factor: exponential backoff base — after the *k*-th
            consecutive failure the next automatic re-tune waits at least
            ``min_ops * backoff_factor ** k`` operations.
        quarantine: remember the layouts whose compile/migrate/verify
            failed and never pick them as a re-tune winner again (the best
            non-quarantined candidate wins instead).
        guard: apply the migration cost/benefit guard — when the estimated
            cost of migrating every live row to the winning layout exceeds
            the savings the winner is projected to earn over the next
            re-tune window, the swap is skipped and the current layout
            keeps serving.  The decision (either way) is recorded on the
            report's ``guard`` field and surfaced by
            :meth:`LiveRelation.live_stats`.
    """

    __slots__ = (
        "auto",
        "min_ops",
        "drift_threshold",
        "dual_write_threshold",
        "migrate_batch",
        "background",
        "retune_timeout",
        "max_failures",
        "backoff_factor",
        "quarantine",
        "guard",
    )

    def __init__(
        self,
        auto: bool = True,
        min_ops: int = 512,
        drift_threshold: float = 0.3,
        dual_write_threshold: int = 100_000,
        migrate_batch: int = 64,
        background: bool = False,
        retune_timeout: float = 30.0,
        max_failures: int = 3,
        backoff_factor: float = 2.0,
        quarantine: bool = True,
        guard: bool = True,
    ):
        if min_ops < 1 or migrate_batch < 1:
            raise LiveRelationError("min_ops and migrate_batch must be >= 1")
        if not 0.0 < drift_threshold:
            raise LiveRelationError("drift_threshold must be positive")
        if not retune_timeout > 0.0:
            raise LiveRelationError("retune_timeout must be positive")
        if max_failures < 1:
            raise LiveRelationError("max_failures must be >= 1")
        if backoff_factor < 1.0:
            raise LiveRelationError("backoff_factor must be >= 1.0")
        self.auto = auto
        self.min_ops = min_ops
        self.drift_threshold = drift_threshold
        self.dual_write_threshold = dual_write_threshold
        self.migrate_batch = migrate_batch
        self.background = background
        self.retune_timeout = retune_timeout
        self.max_failures = max_failures
        self.backoff_factor = backoff_factor
        self.quarantine = quarantine
        self.guard = guard

    @classmethod
    def coerce(cls, value: Union["RetunePolicy", Mapping, None]) -> "RetunePolicy":
        if value is None:
            return cls()
        if isinstance(value, cls):
            return value
        if isinstance(value, Mapping):
            return cls(**value)
        raise LiveRelationError(
            f"tune policy must be a RetunePolicy or a mapping of its fields; got {value!r}"
        )

    def __repr__(self) -> str:
        return (
            f"RetunePolicy(auto={self.auto}, min_ops={self.min_ops}, "
            f"drift_threshold={self.drift_threshold})"
        )


class RetuneReport:
    """What one :meth:`LiveRelation.retune` decided and did."""

    __slots__ = (
        "op_index",
        "reason",
        "drift",
        "old_layout",
        "new_layout",
        "swapped",
        "migrated",
        "dual_write",
        "generation",
        "tuning",
        "error",
        "pending",
        "guard",
    )

    def __init__(
        self,
        op_index: int,
        reason: str,
        drift: Optional[float],
        old_layout: Optional[str],
    ):
        self.op_index = op_index
        self.reason = reason
        self.drift = drift
        self.old_layout = old_layout
        self.new_layout: Optional[str] = None
        self.swapped = False
        self.migrated = 0
        self.dual_write = False
        self.generation: Optional[int] = None
        self.tuning: Optional[TuningResult] = None
        #: Failure description when the attempt died (``None`` on success).
        self.error: Optional[str] = None
        #: ``True`` while a background tune for this report is in flight.
        self.pending = False
        #: Migration cost/benefit decision (``None`` when no swap was under
        #: consideration): a dict with the estimated ``migration_cost``,
        #: ``projected_savings``, ``horizon`` and whether the swap was
        #: ``skipped``.
        self.guard: Optional[Dict[str, object]] = None

    def describe(self) -> str:
        if self.error is not None:
            return f"retune @op {self.op_index} ({self.reason}): failed — {self.error}"
        if self.pending:
            return f"retune @op {self.op_index} ({self.reason}): tuning in background"
        outcome = (
            f"swapped to {self.new_layout!r} ({self.migrated} row(s) migrated"
            + (", dual-write window)" if self.dual_write else ")")
            if self.swapped
            else "kept the current layout"
        )
        return f"retune @op {self.op_index} ({self.reason}): {outcome}"

    def __repr__(self) -> str:
        return f"RetuneReport(op={self.op_index}, swapped={self.swapped})"


class _Migration:
    """State of an open dual-write window (incremental α-migration)."""

    __slots__ = ("target", "pending", "batch", "report")

    def __init__(
        self,
        target: RelationInterface,
        pending: Deque[Tuple],
        batch: int,
        report: RetuneReport,
    ):
        self.target = target
        self.pending = pending
        self.batch = batch
        self.report = report


class LiveRelation(RelationInterface):
    """A relation that outlives — and re-chooses — its own representation.

    The facade owns a *backing* :class:`RelationInterface` (any tier),
    forwards the five relational operations to it, and samples each one
    through a :class:`SamplingTraceRecorder`.  When the sampled operation
    mix drifts past the :class:`RetunePolicy`'s threshold (or on an
    explicit :meth:`retune`), the autotuner is re-run on a trace
    synthesized from the current contents plus the sampled tail; if the
    winner's shape differs from the current layout, the instance is
    **migrated via α** — enumerated from the old backing and reinserted
    into a freshly compiled class for the new layout, checked for
    α-equivalence — and the backing is swapped atomically.  Holders of the
    facade never observe an intermediate state: reads are served by the old
    backing until the swap, and during a dual-write window every mutation
    is applied to both backings.

    The inspection dunders (``len``/``iter``/``in``) forward to the backing
    without being sampled, so inspection does not perturb the workload the
    autotuner sees.
    """

    def __init__(
        self,
        backing: RelationInterface,
        policy: Union[RetunePolicy, Mapping, None] = None,
        sampler: Optional[SamplingTraceRecorder] = None,
        name: str = "live",
    ):
        spec = getattr(backing, "spec", None)
        if spec is None:
            raise LiveRelationError(
                f"cannot wrap {type(backing).__name__}: the backing must expose "
                f"its RelationSpec as `.spec`"
            )
        self.spec: RelationSpec = spec
        self.name = name
        self.enforce_fds: bool = getattr(backing, "enforce_fds", True)
        self.policy = RetunePolicy.coerce(policy)
        self.sampler = sampler if sampler is not None else SamplingTraceRecorder()
        self.generation = 0
        self.retunes: List[RetuneReport] = []
        self._backing = backing
        self._ops_since_tune = 0
        self._migration: Optional[_Migration] = None
        # -- self-healing bookkeeping (see "Failure semantics" in README) --
        self._failures = 0
        self._consecutive_failures = 0
        #: canonical shape -> layout description of every layout whose
        #: compile / migrate / verify failed; quarantined shapes are never
        #: picked as a re-tune winner again (policy.quarantine).
        self._quarantined: Dict[PyTuple, str] = {}
        self._backoff_ops = 0
        self._last_error: Optional[str] = None
        #: In-flight background tune: {"state", "started", "thread",
        #: "report", "current", "dual_write", "tuning", "error"}.
        self._tune_box: Optional[Dict[str, object]] = None

    # -- backing introspection ---------------------------------------------------

    @property
    def backing(self) -> RelationInterface:
        """The current backing implementation (changes across swaps)."""
        return self._backing

    def backing_decomposition(self) -> Optional[Decomposition]:
        """The backing's decomposition, if it has one (reference has none)."""
        decomposition = getattr(self._backing, "decomposition", None)
        if decomposition is None:
            decomposition = getattr(type(self._backing), "DECOMPOSITION", None)
        return decomposition

    def backing_layout(self) -> Optional[str]:
        decomposition = self.backing_decomposition()
        return decomposition.describe() if decomposition is not None else None

    def live_stats(self) -> Dict[str, object]:
        """Operational counters: sampling overhead is bounded by these.

        Per observed operation the facade pays one histogram update and one
        RNG draw (plus one reservoir slot write with probability
        ``capacity / min(seen, horizon)``); memory is bounded by
        ``capacity`` sampled operations plus a ``window``-length mix
        window.  No container access is charged — the sampled numbers the
        benchmark gates compare are untouched by sampling.
        """
        return {
            "generation": self.generation,
            "retunes": len(self.retunes),
            "swaps": sum(1 for r in self.retunes if r.swapped),
            "ops_since_tune": self._ops_since_tune,
            "migration_open": self._migration is not None,
            "backing": type(self._backing).__name__,
            "layout": self.backing_layout(),
            "sampler": self.sampler.stats(),
            "failures": self._failures,
            "consecutive_failures": self._consecutive_failures,
            "circuit_open": self.circuit_open,
            "quarantined": sorted(self._quarantined.values()),
            "backoff_ops": self._backoff_ops,
            "last_error": self._last_error,
            "retune_pending": self._tune_box is not None,
            "guard_skips": sum(
                1 for r in self.retunes if r.guard is not None and r.guard["skipped"]
            ),
            "last_guard": next(
                (r.guard for r in reversed(self.retunes) if r.guard is not None),
                None,
            ),
        }

    @property
    def circuit_open(self) -> bool:
        """``True`` once ``max_failures`` consecutive re-tunes failed.

        While open, no re-tune runs — automatic or explicit — until
        :meth:`reset_circuit`; the relation keeps serving on its current
        backing indefinitely (degraded layout beats a crash loop).
        """
        return self._consecutive_failures >= self.policy.max_failures

    def reset_circuit(self, clear_quarantine: bool = False) -> None:
        """Re-enable re-tuning after the circuit breaker opened.

        Clears the consecutive-failure count, the backoff and the recorded
        last error; ``clear_quarantine=True`` also forgets the quarantined
        layouts (e.g. after fixing whatever made them fail).
        """
        self._consecutive_failures = 0
        self._backoff_ops = 0
        self._last_error = None
        if clear_quarantine:
            self._quarantined.clear()

    # -- the five operations (forward, then sample) ------------------------------

    def insert(self, tup: Union[Tuple, Mapping]) -> None:
        tup = coerce_tuple(tup)
        self._backing.insert(tup)
        migration = self._migration
        if migration is not None:
            self._apply_dual_write(migration, lambda: migration.target.insert(tup))
        self._observe(("insert", tup))

    def remove(self, pattern: Union[Tuple, Mapping, None] = None) -> None:
        pattern = coerce_tuple(pattern)
        self._backing.remove(pattern)
        migration = self._migration
        if migration is not None:
            # Rows already copied are removed here; still-pending rows are
            # revalidated against the old backing at copy time and skipped.
            self._apply_dual_write(migration, lambda: migration.target.remove(pattern))
        self._observe(("remove", pattern))

    def update(self, pattern: Union[Tuple, Mapping], changes: Union[Tuple, Mapping]) -> None:
        pattern = coerce_tuple(pattern)
        changes = coerce_tuple(changes)
        migration = self._migration
        if migration is not None:
            # Capture the victims *before* mutating: a pending (not yet
            # copied) victim would otherwise be skipped at copy time (the
            # old backing no longer holds its pre-update form) while its
            # post-update form was never enqueued.  Re-enqueueing the
            # merged rows closes that window; copy-time revalidation makes
            # the extra enqueue idempotent.
            victims = self._backing.query(pattern, None)
        self._backing.update(pattern, changes)
        if migration is not None:

            def _mirror() -> None:
                migration.target.update(pattern, changes)
                for victim in victims:
                    migration.pending.append(victim.merge(changes))

            self._apply_dual_write(migration, _mirror)
        self._observe(("update", pattern, changes))

    def _apply_dual_write(self, migration: "_Migration", action) -> None:
        """Mirror one mutation into the dual-write target.

        The primary backing has already applied the mutation, so a failing
        target write **aborts the migration window** (the half-built target
        is discarded, the failed layout quarantined) and returns without
        raising: the caller's operation landed in exactly one consistent
        backing — the old one, which keeps serving.
        """
        try:
            if FAULTS.active:
                FAULTS.check("live.migrate.dual_write")
            action()
        except ReproError as exc:
            failure = MigrationError(
                f"dual-write into migration target "
                f"{migration.report.new_layout!r} failed: {exc}",
                stage="dual-write",
            )
            failure.__cause__ = exc
            self._abort_migration(failure)

    def query(
        self,
        pattern: Union[Tuple, Mapping, None] = None,
        output: Union[str, Iterable[str], None] = None,
    ) -> List[Tuple]:
        pattern = coerce_tuple(pattern)
        if output is not None and not isinstance(output, str):
            output = tuple(output)
        results = self._backing.query(pattern, output)
        self._observe(("query", pattern, output))
        return results

    def _observe(self, op: Operation) -> None:
        """Sample one completed operation, then advance the control loop.

        Never raises on behalf of the control loop: the caller's operation
        already succeeded on the primary backing, so a failed migration
        pump or background-tune completion is recorded (and the attempt
        aborted) rather than surfaced through an unrelated ``insert``.
        """
        self._ops_since_tune += 1
        self.sampler.observe(op)
        if self._migration is not None:
            try:
                self._pump_migration()
            except MigrationError:
                # Aborted and recorded; the old backing keeps serving.
                pass
        elif self._tune_box is not None:
            self._poll_background_tune()
        elif self.policy.auto:
            self.maybe_retune()

    # -- the re-tune loop --------------------------------------------------------

    def maybe_retune(self) -> Optional[RetuneReport]:
        """Re-tune if the policy says so; the cheap steady-state check.

        Returns the report when a re-tune ran (whether or not it swapped),
        ``None`` otherwise.  Never fires while a dual-write window or a
        background tune is open, while the circuit breaker is open, or
        before the post-failure backoff has elapsed.  A re-tune failure on
        this (automatic) path is recorded in the report and ``live_stats()``
        but not raised — the operation that triggered the check already
        succeeded, and the old backing keeps serving.
        """
        if self._migration is not None or self._tune_box is not None:
            return None
        if self.circuit_open:
            return None
        if self._ops_since_tune < max(self.policy.min_ops, self._backoff_ops):
            return None
        drift = self.sampler.drift()
        if drift < self.policy.drift_threshold:
            return None
        reason = (
            "warm-up tune (no baseline mix yet)"
            if math.isinf(drift)
            else f"mix drift {drift:.2f} >= threshold {self.policy.drift_threshold:.2f}"
        )
        try:
            return self.retune(reason=reason, drift=None if math.isinf(drift) else drift)
        except LiveRelationError:
            # Recorded by the failure bookkeeping (backoff / quarantine /
            # circuit breaker); self-heal instead of failing the caller.
            return self.retunes[-1] if self.retunes else None

    def _retune_trace(self) -> Trace:
        """Synthesize the tuning workload: current contents + sampled tail.

        Always built in ``enforce_fds=False`` (eviction) mode: the sampled
        tail is not a contiguous history — an old sampled insert can
        FD-conflict with the reconstructed current contents — so an FD-on
        replay could spuriously raise mid-scoring.  Eviction replay never
        raises and preserves the operation mix, which is what the scorer
        measures; the swapped-in backing still runs in the live relation's
        own FD mode.
        """
        contents = sorted(self._backing.to_relation().tuples, key=Tuple.sort_key)
        operations: List[Operation] = [("insert", tup) for tup in contents]
        operations.extend(self.sampler.sampled_operations())
        return Trace(
            self.spec,
            operations,
            name=f"{self.name}-gen{self.generation}",
            enforce_fds=False,
        )

    def retune(
        self,
        reason: str = "explicit",
        drift: Optional[float] = None,
        dual_write: Optional[bool] = None,
    ) -> RetuneReport:
        """Re-run the autotuner now; hot-swap the backing if a better layout wins.

        The current layout is force-included in the search, so "no better
        layout" resolves to a no-swap report rather than a migration to an
        equivalent shape.  ``dual_write`` forces (or suppresses) the
        incremental migration window; by default instances of at least
        ``policy.dual_write_threshold`` rows take it.

        Deterministic by construction for seeded workloads: the sampler's
        RNG is seeded and the autotuner's replay is exact.

        Failure semantics: any stage can fail (including by an injected
        fault) and the relation survives — the old backing is untouched and
        keeps serving, the failed layout is quarantined, the failure is
        recorded for backoff / circuit-breaker bookkeeping, and the error
        (:class:`RetuneFailed` or :class:`MigrationError`) propagates to
        *this explicit caller*.  Automatic re-tunes (:meth:`maybe_retune`)
        swallow it.

        With ``policy.background=True`` the autotuner search runs on a
        daemon thread and this returns immediately with a ``pending``
        report; the compile/migrate/swap happens on the thread of a later
        operation (or :meth:`finish_retune`) once the search completes.
        """
        if self._migration is not None:
            raise LiveRelationError(
                "cannot re-tune while a dual-write migration window is open "
                "(call finish_migration() first)"
            )
        if self._tune_box is not None:
            raise LiveRelationError(
                "cannot re-tune while a background tune is in flight "
                "(call finish_retune() first)"
            )
        if self.circuit_open:
            raise RetuneFailed(
                f"circuit breaker open after {self._consecutive_failures} "
                f"consecutive re-tune failures "
                f"(max_failures={self.policy.max_failures}); last error: "
                f"{self._last_error}; call reset_circuit() to re-enable",
                stage="circuit",
            )
        report = RetuneReport(
            self.sampler.seen, reason, drift, self.backing_layout()
        )
        self.retunes.append(report)
        current = self.backing_decomposition()
        if self.policy.background:
            return self._start_background_tune(report, current, dual_write)
        tuning = self._run_tune(report, current)
        return self._finish_retune(report, current, tuning, dual_write)

    def _run_tune(self, report: RetuneReport, current: Optional[Decomposition]) -> TuningResult:
        """The search stage: synthesize the trace and run the autotuner."""
        trace = self._retune_trace()
        include = [current] if current is not None else []
        try:
            if FAULTS.active:
                FAULTS.check("live.retune.tune")
            # Eviction-mode replay, matching the synthesized trace (see
            # _retune_trace); the new backing itself runs in self.enforce_fds.
            return autotune(self.spec, trace, include=include, enforce_fds=False)
        except ReproError as exc:
            failure = RetuneFailed(f"autotune search failed: {exc}", stage="tune")
            failure.__cause__ = exc
            self._record_failure(report, failure)
            raise failure from exc

    def _pick_winner(
        self, tuning: TuningResult, current: Optional[Decomposition]
    ) -> Optional[ScoredCandidate]:
        """The best replayed candidate whose shape is not quarantined.

        The current layout always qualifies (it is serving right now), so
        when every better candidate is quarantined the re-tune resolves to
        "keep".  ``None`` only when *everything* replayed is quarantined
        and the current shape is not among the candidates.
        """
        current_shape = canonical_shape(current) if current is not None else None
        quarantine = self.policy.quarantine
        for candidate in tuning.replayed:
            shape = canonical_shape(candidate.decomposition)
            if shape == current_shape:
                return candidate
            if quarantine and shape in self._quarantined:
                continue
            return candidate
        return None

    def _finish_retune(
        self,
        report: RetuneReport,
        current: Optional[Decomposition],
        tuning: TuningResult,
        dual_write: Optional[bool] = None,
    ) -> RetuneReport:
        """Compile + migrate stage, shared by sync and background re-tunes."""
        report.tuning = tuning
        # The tune consumed this window: future drift is measured against it.
        self.sampler.rebase()
        horizon = self._ops_since_tune
        self._ops_since_tune = 0

        winner = self._pick_winner(tuning, current)
        if winner is None:
            # Everything the search surfaced has failed before: keep serving.
            report.new_layout = report.old_layout
            self._consecutive_failures = 0
            self._backoff_ops = 0
            return report
        if winner is not tuning.winner:
            # Quarantine displaced the access-count winner; compile_winner()
            # compiles `.winner`, so promote the chosen candidate.
            tuning.winner = winner
        report.new_layout = winner.decomposition.describe()
        if current is not None and canonical_shape(winner.decomposition) == canonical_shape(current):
            report.new_layout = report.old_layout
            self._consecutive_failures = 0
            self._backoff_ops = 0
            return report

        if self.policy.guard and not self._guard_allows(
            report, current, tuning, winner, horizon
        ):
            # The projected savings do not pay for moving every live row:
            # keep serving on the current layout.  Not a failure — the
            # search itself succeeded, the swap was just not worth it.
            report.new_layout = report.old_layout
            self._consecutive_failures = 0
            self._backoff_ops = 0
            return report

        try:
            if FAULTS.active:
                FAULTS.check("live.retune.compile")
            new_cls = tuning.compile_winner()
            new_backing = new_cls(enforce_fds=self.enforce_fds)
        except ReproError as exc:
            failure = RetuneFailed(
                f"compiling winner {report.new_layout!r} failed: {exc}",
                stage="compile",
            )
            failure.__cause__ = exc
            self._record_failure(report, failure, canonical_shape(winner.decomposition))
            raise failure from exc

        if dual_write is None:
            dual_write = len(self._backing) >= self.policy.dual_write_threshold
        if dual_write:
            pending: Deque[Tuple] = deque(
                sorted(self._backing.to_relation().tuples, key=Tuple.sort_key)
            )
            report.dual_write = True
            self._migration = _Migration(
                new_backing, pending, self.policy.migrate_batch, report
            )
            self._pump_migration()
        else:
            self._migrate_sync(new_backing, report)
        return report

    def _guard_allows(
        self,
        report: RetuneReport,
        current: Optional[Decomposition],
        tuning: TuningResult,
        winner: "ScoredCandidate",
        horizon: int,
    ) -> bool:
        """Cost/benefit check before a hot swap; records the decision.

        Savings are estimated from the exact replay the autotuner already
        paid for: the access gap between the current layout and the winner
        over the re-tune trace, scaled per-operation and projected over the
        ops observed since the last tune (the best available guess at the
        next window).  Migration cost is proxied as one counted access per
        live row per distinct edge of the winning layout — what the
        enumerate + reinsert pass (or the dual-write pump) must pay.  When
        the current layout was not replayed (or has no exact count) the
        guard abstains and the swap proceeds.
        """
        current_shape = canonical_shape(current) if current is not None else None
        cur_accesses: Optional[int] = None
        for candidate in tuning.replayed:
            if canonical_shape(candidate.decomposition) == current_shape:
                cur_accesses = candidate.accesses
                break
        if cur_accesses is None or winner.accesses is None:
            return True
        # The re-tune trace opens with one rebuild insert per live row (see
        # _retune_trace) — state reconstruction, not workload.  Scale the
        # access gap over the sampled serving ops only, or the guard
        # under-prices winners on well-populated relations.
        serving_ops = max(1, len(tuning.trace) - len(self._backing))
        savings_per_op = (cur_accesses - winner.accesses) / serving_ops
        # A swap keeps earning until the *next* re-tune, not just for one
        # window — require payback within a few windows, so marginal
        # winners stay put but a genuinely better layout is never starved
        # by a short last window.
        payback = max(horizon, self.policy.min_ops * _GUARD_PAYBACK_WINDOWS, 1)
        projected = savings_per_op * payback
        edge_count = sum(len(node.edges) for node in winner.decomposition.nodes())
        migration_cost = float(len(self._backing) * max(1, edge_count))
        skipped = projected < migration_cost
        report.guard = {
            "horizon": payback,
            "savings_per_op": round(savings_per_op, 3),
            "projected_savings": round(projected, 1),
            "migration_cost": migration_cost,
            "skipped": skipped,
        }
        return not skipped

    # -- background re-tune (search off-thread, swap on-thread) ------------------

    def _start_background_tune(
        self,
        report: RetuneReport,
        current: Optional[Decomposition],
        dual_write: Optional[bool],
    ) -> RetuneReport:
        """Launch the autotuner search on a daemon thread.

        The trace is snapshotted on the caller's thread (so the search sees
        a consistent state); only the pure search runs concurrently.  The
        result is collected — and the migration run — on the thread of a
        later operation via :meth:`_poll_background_tune`, or explicitly by
        :meth:`finish_retune`; a search that outlives
        ``policy.retune_timeout`` is abandoned by the watchdog.
        """
        trace = self._retune_trace()
        include = [current] if current is not None else []
        box: Dict[str, object] = {
            "state": "running",
            "started": time.monotonic(),
            "report": report,
            "current": current,
            "dual_write": dual_write,
            "tuning": None,
            "error": None,
        }

        def worker() -> None:
            try:
                if FAULTS.active:
                    FAULTS.check("live.retune.tune")
                box["tuning"] = autotune(
                    self.spec, trace, include=include, enforce_fds=False
                )
                box["state"] = "done"
            except BaseException as exc:  # surfaced on the caller's thread
                box["error"] = exc
                box["state"] = "failed"

        thread = threading.Thread(
            target=worker, name=f"{self.name}-retune-gen{self.generation}", daemon=True
        )
        box["thread"] = thread
        self._tune_box = box
        report.pending = True
        thread.start()
        return report

    def _poll_background_tune(self) -> Optional[RetuneReport]:
        """Collect a finished (or overdue) background tune; apply its result."""
        box = self._tune_box
        if box is None:
            return None
        report = box["report"]
        state = box["state"]
        if state == "running":
            if time.monotonic() - box["started"] <= self.policy.retune_timeout:
                return None
            # Watchdog: abandon the straggler.  The daemon thread keeps
            # running but its box is unlinked, so its eventual result (or
            # error) is discarded without touching the relation.
            self._tune_box = None
            report.pending = False
            failure = RetuneFailed(
                f"background tune exceeded retune_timeout="
                f"{self.policy.retune_timeout}s; abandoned by the watchdog",
                stage="tune",
            )
            self._record_failure(report, failure)
            return report
        self._tune_box = None
        report.pending = False
        if state == "failed":
            exc = box["error"]
            failure = RetuneFailed(f"background autotune search failed: {exc}", stage="tune")
            failure.__cause__ = exc
            self._record_failure(report, failure)
            return report
        try:
            return self._finish_retune(
                report, box["current"], box["tuning"], box["dual_write"]
            )
        except LiveRelationError:
            # Recorded; the triggering operation already succeeded on the
            # old backing, which keeps serving.
            return report

    def finish_retune(self, timeout: Optional[float] = None) -> Optional[RetuneReport]:
        """Wait for an in-flight background tune and apply its result.

        Joins the search thread for up to *timeout* seconds (default: the
        policy's ``retune_timeout``), then collects whatever state the tune
        reached — including the watchdog's abandon when it is overdue.
        Returns the report, or ``None`` when no background tune is open.
        """
        box = self._tune_box
        if box is None:
            return None
        box["thread"].join(timeout if timeout is not None else self.policy.retune_timeout)
        return self._poll_background_tune()

    # -- migration ---------------------------------------------------------------

    def _migrate_sync(self, new_backing: RelationInterface, report: RetuneReport) -> None:
        """One-pass α-migration: enumerate the old backing, reinsert, verify.

        The target is private until :meth:`_verify_and_swap` commits, so a
        mid-copy failure simply discards it — nothing to roll back.
        """
        snapshot = self._backing.to_relation()
        try:
            for tup in sorted(snapshot.tuples, key=Tuple.sort_key):
                if FAULTS.active:
                    FAULTS.check("live.migrate.copy")
                new_backing.insert(tup)
                report.migrated += 1
        except ReproError as exc:
            failure = MigrationError(
                f"copying rows into {report.new_layout!r} failed: {exc}",
                stage="copy",
            )
            failure.__cause__ = exc
            self._record_failure(report, failure, self._shape_of(new_backing))
            raise failure from exc
        self._verify_and_swap(new_backing, snapshot, report)

    def _pump_migration(self) -> None:
        """Copy the next batch of a dual-write window; swap when drained.

        Each pending row is revalidated against the old backing — a row
        removed or updated since the window opened is skipped (its current
        form reached the target through dual-writing or re-enqueueing).

        A failing copy aborts the window (target discarded, layout
        quarantined) and raises :class:`MigrationError`; ``_observe``
        catches it so user operations never fail on the control loop's
        behalf.
        """
        migration = self._migration
        assert migration is not None
        pending = migration.pending
        try:
            for _ in range(min(migration.batch, len(pending))):
                if FAULTS.active:
                    FAULTS.check("live.migrate.copy")
                row = pending.popleft()
                if self._backing.contains(row):
                    migration.target.insert(row)
                    migration.report.migrated += 1
        except ReproError as exc:
            failure = MigrationError(
                f"copying rows into {migration.report.new_layout!r} failed: {exc}",
                stage="copy",
            )
            failure.__cause__ = exc
            self._abort_migration(failure)
            raise failure from exc
        if not pending:
            self._migration = None
            self._verify_and_swap(
                migration.target, self._backing.to_relation(), migration.report
            )

    def _abort_migration(self, failure: MigrationError) -> None:
        """Tear down an open dual-write window after a failure.

        Atomic from the caller's perspective: the target is discarded in
        one assignment, the old backing was never touched, and the failed
        target layout is quarantined.
        """
        migration = self._migration
        self._migration = None
        if migration is None:
            return
        self._record_failure(
            migration.report, failure, self._shape_of(migration.target)
        )

    def finish_migration(self) -> None:
        """Drain any open dual-write window synchronously.

        If the window aborts mid-drain the loop simply ends — the abort
        clears the window — with the failure recorded in ``live_stats()``.
        """
        while self._migration is not None:
            try:
                self._pump_migration()
            except MigrationError:
                break  # aborted and recorded; old backing keeps serving

    def _verify_and_swap(
        self,
        new_backing: RelationInterface,
        expected: Relation,
        report: RetuneReport,
    ) -> None:
        """The α-equivalence gate, then the atomic swap.

        Any failure up to the final assignment aborts the migration: the
        old backing is untouched and keeps serving, and the failed layout
        is quarantined.  The swap itself is a single attribute write —
        atomic under the GIL — with nothing left to raise after it.
        """
        try:
            if FAULTS.active:
                FAULTS.check("live.retune.verify")
            check = getattr(new_backing, "check_well_formed", None)
            if check is not None:
                check()
            migrated = new_backing.to_relation()
            if migrated != expected:
                raise MigrationError(
                    f"α-migration to {report.new_layout!r} diverged: the new backing "
                    f"represents {len(migrated.tuples ^ expected.tuples)} differing "
                    f"tuple(s) — refusing to swap",
                    stage="verify",
                )
            if FAULTS.active:
                FAULTS.check("live.swap")
        except ReproError as exc:
            if isinstance(exc, MigrationError):
                failure = exc
            else:
                stage = (
                    "swap"
                    if isinstance(exc, FaultInjected) and exc.site == "live.swap"
                    else "verify"
                )
                failure = MigrationError(
                    f"α-verification of {report.new_layout!r} failed: {exc}",
                    stage=stage,
                )
                failure.__cause__ = exc
            self._record_failure(report, failure, self._shape_of(new_backing))
            raise failure from exc
        self._backing = new_backing
        self.generation += 1
        report.swapped = True
        report.generation = self.generation
        self._consecutive_failures = 0
        self._backoff_ops = 0

    # -- failure bookkeeping -----------------------------------------------------

    def _shape_of(self, backing: RelationInterface) -> Optional[PyTuple]:
        decomposition = getattr(backing, "decomposition", None)
        if decomposition is None:
            decomposition = getattr(type(backing), "DECOMPOSITION", None)
        return canonical_shape(decomposition) if decomposition is not None else None

    def _record_failure(
        self,
        report: RetuneReport,
        failure: LiveRelationError,
        shape: Optional[PyTuple] = None,
    ) -> None:
        """One failed re-tune / migration attempt: count, quarantine, back off."""
        self._failures += 1
        self._consecutive_failures += 1
        stage = getattr(failure, "stage", "unknown")
        self._last_error = f"{type(failure).__name__}[{stage}]: {failure}"
        report.error = self._last_error
        if shape is not None and self.policy.quarantine:
            self._quarantined[shape] = report.new_layout or "<uncompiled>"
        # Exponential backoff: the k-th consecutive failure pushes the next
        # automatic attempt to min_ops * backoff_factor**k operations out.
        self._backoff_ops = int(
            self.policy.min_ops
            * (self.policy.backoff_factor ** self._consecutive_failures)
        )
        self._ops_since_tune = 0

    # -- inspection (forwarded, never sampled) -----------------------------------

    def to_relation(self) -> Relation:
        return self._backing.to_relation()

    def checkpoint(self) -> Relation:
        return self.to_relation()

    def check_well_formed(self) -> None:
        check = getattr(self._backing, "check_well_formed", None)
        if check is not None:
            check()

    def __len__(self) -> int:
        return len(self._backing)

    def __iter__(self) -> Iterator[Tuple]:
        return iter(self._backing)

    def __contains__(self, pattern: object) -> bool:
        return pattern in self._backing

    def __repr__(self) -> str:
        return (
            f"LiveRelation({type(self._backing).__name__}, gen={self.generation}, "
            f"size={len(self)})"
        )


# -- the unified factory ---------------------------------------------------------

#: The tiers :func:`open_relation` accepts.
TIERS = ("auto", "reference", "interpreted", "compiled")


def default_layout(spec: RelationSpec) -> str:
    """The layout used when the caller supplies neither one nor a trace:
    one hash path keyed by the smallest minimal key, residual columns in
    the unit leaf — adequate for every specification by construction."""
    key = min(spec.minimal_keys(), key=lambda k: (len(k), tuple(sorted(k))))
    rest = sorted(spec.columns - key)
    return f"{', '.join(sorted(key))} -> htable {{{', '.join(rest)}}}"


def open_relation(
    spec: RelationSpec,
    layout: Union[Decomposition, str, None] = None,
    *,
    tier: str = "auto",
    tune: Optional[Trace] = None,
    live: bool = False,
    enforce_fds: bool = True,
    policy: Union[RetunePolicy, Mapping, None] = None,
    sampler: Optional[SamplingTraceRecorder] = None,
    class_name: Optional[str] = None,
    sizes=None,
) -> RelationInterface:
    """Open a relation: the one documented entry point for every tier.

    Exported as ``repro.open``.  Layout resolution:

    * ``layout`` given, ``tune=None`` — use that layout;
    * ``tune`` given (a :class:`~repro.autotuner.trace.Trace`) — run the §5
      autotuner and use its winner; a ``layout`` passed alongside is
      force-included in the search as a baseline candidate;
    * neither — :func:`default_layout` (a hash path over the smallest
      minimal key).

    ``tier`` selects the implementation: ``"reference"`` (the
    specification-level oracle; any layout is ignored), ``"interpreted"``
    (:class:`~repro.decomposition.relation.DecomposedRelation`),
    ``"compiled"`` (:func:`repro.codegen.compile_relation`), or ``"auto"``
    (currently the compiled tier — the fast one).  ``sizes`` are optional
    per-edge container-size estimates forwarded to the compiler's plan
    table (ignored by the other tiers; rejected together with ``tune``,
    whose winner carries its own trace-derived estimates).

    ``live=True`` wraps the backing in a :class:`LiveRelation` — an
    always-on sampled, self-re-tuning facade governed by ``policy`` (a
    :class:`RetunePolicy` or a mapping of its fields) and ``sampler``.
    """
    if not isinstance(tier, str) or tier not in TIERS:
        raise LiveRelationError(
            f"unknown tier {tier!r}; valid tiers: {', '.join(TIERS)}"
        )
    if tune is not None and sizes is not None:
        raise LiveRelationError(
            "sizes cannot be combined with tune: the autotuned winner is "
            "compiled against its own trace-derived size estimates"
        )
    if layout is not None and not isinstance(layout, (str, Decomposition)):
        raise LiveRelationError(
            f"layout must be a Decomposition or a layout string like "
            f"'ns, pid -> htable {{state, cpu}}'; got {type(layout).__name__}"
        )

    decomposition: Optional[Decomposition] = None
    tuning: Optional[TuningResult] = None
    if isinstance(layout, str):
        try:
            layout = parse_decomposition(layout)
        except ReproError as exc:
            # Re-raise with the valid structure vocabulary attached: a typo'd
            # container name is the common mistake at this entry point.
            raise LiveRelationError(
                f"invalid layout {layout!r}: {exc} "
                f"(valid structures: {', '.join(structure_names())})"
            ) from exc
    if tune is not None:
        include = [layout] if layout is not None else []
        tuning = autotune(spec, tune, include=include, enforce_fds=enforce_fds)
        decomposition = tuning.winner_decomposition
    elif layout is not None:
        decomposition = layout

    backing: RelationInterface
    if tier == "reference":
        backing = ReferenceRelation(spec, enforce_fds=enforce_fds)
    else:
        if decomposition is None:
            decomposition = parse_decomposition(default_layout(spec))
        if tier == "interpreted":
            backing = DecomposedRelation(spec, decomposition, enforce_fds=enforce_fds)
        else:  # "compiled" and "auto"
            if tuning is not None:
                cls = tuning.compile_winner(class_name)
            else:
                cls = compile_relation(spec, decomposition, class_name, sizes=sizes)
            backing = cls(enforce_fds=enforce_fds)

    if not live:
        return backing
    return LiveRelation(backing, policy=policy, sampler=sampler)
