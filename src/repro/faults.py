"""``repro.faults`` — deterministic, seeded fault injection.

Differential equivalence across the three tiers is a 2-safety property: a
bug only shows up when *two* executions (the tier and its reference mirror)
are compared.  Exception-safety bugs are worse still — they only show up
when a failure lands at exactly the wrong interleaving point inside a
mutator.  Waiting for such failures to happen is hopeless; following
McKenney's discipline, this module makes them happen *on purpose*, at named
injection points, deterministically.

Design:

* **Named sites.**  Every interleaving point worth failing at is registered
  once under a stable dotted name (``structures.htable.insert``,
  ``instance.insert.link_shared``, ``codegen.remove.unlink``,
  ``live.migrate.dual_write`` ...).  Registration happens at import time —
  the structure registry registers one site per container mutator, the
  interpreted instance and the code generator register their walk points,
  the live facade its migration stages — so :func:`fault_sites` enumerates
  the complete sweep surface (the chaos suite asserts there are ≥ 25).

* **Inert by default.**  Production code guards every check with the
  singleton's ``active`` flag::

      if FAULTS.active:
          FAULTS.check("instance.insert.link_shared")

  When no plan is armed ``active`` is ``False`` and the entire layer costs
  one attribute read per site — and, crucially, **zero counted accesses**:
  nothing here ever touches the
  :class:`~repro.structures.base.OperationCounter`, so benchmark gates are
  byte-identical with the layer compiled in.

* **Deterministic firing.**  :meth:`FaultInjector.arm` arms a one-shot
  plan: the *n*-th hit of one site raises
  :class:`~repro.core.errors.FaultInjected` and disarms the plan, so a
  rollback path never re-faults while undoing (exactly one failure per
  armed plan — the discipline strong exception safety is tested under).
  A seeded sweep is then just a loop over ``(site, hit)`` pairs.
"""

from __future__ import annotations

import re
import threading
from contextlib import contextmanager
from typing import Dict, Iterable, Iterator, List, Optional, Tuple as PyTuple

from .core.errors import FaultInjected, ReproError

__all__ = [
    "FAULTS",
    "FaultInjector",
    "assert_all_sites_known",
    "fault_sites",
    "inject",
    "register_site",
]

#: Site names are dotted paths of lower-case snake-case segments
#: (``codegen.remove.unlink``, ``structures.htable.insert``): at least two
#: segments, so a bare word — almost always a typo'd or stale name — is
#: rejected at registration instead of silently never arming.
_SITE_NAME_RE = re.compile(r"^[a-z0-9_]+(\.[a-z0-9_]+)+$")


class FaultInjector:
    """The process-wide fault plan: a site registry plus one armed plan.

    Thread-compatible by design rather than heavily locked: arming and
    disarming take a lock, but the hot-path ``check`` reads plain
    attributes — a background re-tune thread hitting a site concurrently
    with the main thread at worst fires the fault on a neighbouring hit,
    and the deterministic tests drive a single thread.
    """

    __slots__ = (
        "active",
        "_sites",
        "_armed_site",
        "_armed_hit",
        "_armed_count",
        "_fired",
        "_lock",
    )

    def __init__(self) -> None:
        #: The cheap hot-path guard: ``True`` only while a plan is armed.
        self.active = False
        #: site name → total hits observed while armed (diagnostics).
        self._sites: Dict[str, int] = {}
        self._armed_site: Optional[str] = None
        self._armed_hit = 0
        self._armed_count = 0
        #: ``(site, hit)`` pairs that actually fired, in order.
        self._fired: List[PyTuple[str, int]] = []
        self._lock = threading.Lock()

    # -- registry ---------------------------------------------------------------

    def register_site(self, name: str) -> str:
        """Register *name* as an injection site (idempotent); returns it.

        Names must live in the dotted site namespace
        (``<layer>.<operation>[.<detail>...]``, lower-case snake-case
        segments) — the same namespace :meth:`assert_all_sites_known` and
        the static verifier round-trip against.
        """
        if not name:
            raise ReproError("fault site names must be non-empty")
        if _SITE_NAME_RE.match(name) is None:
            raise ReproError(
                f"fault site name {name!r} is outside the site namespace "
                "(expected dotted lower-case segments like "
                "'codegen.remove.unlink')"
            )
        self._sites.setdefault(name, 0)
        return name

    def sites(self) -> List[str]:
        """Every registered site name, sorted."""
        return sorted(self._sites)

    def assert_all_sites_known(self, names: Iterable[str]) -> None:
        """Fail fast unless every name in *names* is a registered site.

        A typo'd site in a sweep list or an emitted guard would otherwise
        silently never arm (the check self-selects by name, so an unknown
        name simply never fires).  Raises :class:`ReproError` listing every
        unknown name; accepts any iterable of names.
        """
        unknown = sorted(set(names) - set(self._sites))
        if unknown:
            raise ReproError(
                "unknown fault site(s): "
                + ", ".join(repr(n) for n in unknown)
                + "; registered sites: "
                + ", ".join(self.sites())
            )

    # -- arming -----------------------------------------------------------------

    def arm(self, site: str, on_hit: int = 1) -> None:
        """Arm a one-shot fault: the *on_hit*-th hit of *site* raises.

        Unknown sites are rejected — a sweep armed against a renamed site
        would otherwise silently test nothing.
        """
        if site not in self._sites:
            known = ", ".join(self.sites())
            raise ReproError(
                f"cannot arm unknown fault site {site!r}; registered sites: {known}"
            )
        if on_hit < 1:
            raise ReproError(f"on_hit must be >= 1, got {on_hit}")
        with self._lock:
            self._armed_site = site
            self._armed_hit = on_hit
            self._armed_count = 0
            self.active = True

    def disarm(self) -> None:
        """Disarm any armed plan (idempotent)."""
        with self._lock:
            self._armed_site = None
            self._armed_hit = 0
            self._armed_count = 0
            self.active = False

    @property
    def armed(self) -> Optional[PyTuple[str, int]]:
        """The armed ``(site, on_hit)`` plan, or ``None``."""
        if not self.active or self._armed_site is None:
            return None
        return (self._armed_site, self._armed_hit)

    # -- the hot path ------------------------------------------------------------

    def check(self, site: str) -> None:
        """Fire if the armed plan targets *site* and its hit count is due.

        Callers guard with ``if FAULTS.active`` so this is never reached in
        the disabled configuration; when armed for a *different* site the
        cost is one comparison.
        """
        if site != self._armed_site:
            return
        self._sites[site] = self._sites.get(site, 0) + 1
        self._armed_count += 1
        if self._armed_count >= self._armed_hit:
            hit = self._armed_count
            self.disarm()  # One-shot: rollback paths never re-fault.
            self._fired.append((site, hit))
            raise FaultInjected(site, hit)

    # -- diagnostics -------------------------------------------------------------

    def fired(self) -> List[PyTuple[str, int]]:
        """Every ``(site, hit)`` that fired since the last :meth:`reset_stats`."""
        return list(self._fired)

    def fired_sites(self) -> List[str]:
        """Distinct sites that have fired, sorted."""
        return sorted({site for site, _ in self._fired})

    def reset_stats(self) -> None:
        """Clear firing history and per-site hit counts (keeps the registry)."""
        with self._lock:
            self._fired.clear()
            for name in self._sites:
                self._sites[name] = 0

    def stats(self) -> Dict[str, object]:
        return {
            "sites": len(self._sites),
            "armed": self.armed,
            "fired": len(self._fired),
            "fired_sites": self.fired_sites(),
        }

    def __repr__(self) -> str:
        return f"FaultInjector(sites={len(self._sites)}, armed={self.armed})"


#: The library-wide injector every instrumented module checks.
FAULTS = FaultInjector()


def register_site(name: str) -> str:
    """Register *name* on the library-wide injector (idempotent)."""
    return FAULTS.register_site(name)


def fault_sites() -> List[str]:
    """Every registered injection site (import ``repro`` first so all
    instrumented modules have registered theirs)."""
    return FAULTS.sites()


def assert_all_sites_known(names: Iterable[str]) -> None:
    """Validate *names* against the library-wide registry (fail fast)."""
    FAULTS.assert_all_sites_known(names)


@contextmanager
def inject(site: str, on_hit: int = 1) -> Iterator[FaultInjector]:
    """Arm a one-shot fault for the duration of a ``with`` block.

    The plan is disarmed on exit even if it never fired, so a site that a
    particular operation sequence does not reach cannot leak into later
    tests.
    """
    FAULTS.arm(site, on_hit)
    try:
        yield FAULTS
    finally:
        FAULTS.disarm()
