"""Compile a ``(RelationSpec, Decomposition)`` pair into a standalone class.

This is the reproduction's counterpart of RELC's C++ code generator: where
:class:`~repro.decomposition.relation.DecomposedRelation` *interprets* a
decomposition — re-walking ``node.edges``, projecting :class:`Tuple` keys and
re-ranking query plans at run time — the compiler emits a Python class whose
methods are straight-line code specialised to one decomposition:

* **insert/remove** are unrolled over the decomposition DAG: each edge
  becomes a few lines of direct ``dict``/list access on pre-bound key
  values, with empty sub-instances pruned inline;
* **queries** are generated per pattern column set from the query plans of
  :func:`repro.decomposition.plan.plan_query` and selected through a
  dispatch table built at compile time — no planning, no plan cache and no
  plan interpretation on the hot path;
* rows are plain value tuples in sorted column order; :class:`Tuple`
  objects are only materialised at the public ``query``/``to_relation``
  boundary via the trusted :meth:`Tuple.from_sorted_items` fast path.

Containers are lowered according to each structure's ``CODEGEN_STRATEGY``:
hash-like structures become Python dicts charged one access per probe,
tree-like structures become dicts charged ``log2(n)`` accesses (the cost
model of a balanced tree), list-like structures become real entry lists
with linear search, and intrusive structures (``ilist``) become dicts with
list-honest charging — key *searches* cost ``n`` accesses, but linking a
known-new entry and unlinking a held entry cost 1 — so compiled layouts
keep honest asymptotics and :class:`~repro.structures.base.OperationCounter`
numbers remain comparable across the interpreted and compiled tiers.

**Shared sub-nodes** (Section 3) lower to genuinely shared objects: each
shared node gets a per-class registry dict mapping its bound-column binding
to one cell (``[residual]`` for unit leaves, the container literal for map
nodes) that every parent container references.  Inserts create the cell
once and link it into each branch; removals decide the hit once against
the registry and then unlink the same object from every parent with an
unrolled, constant-time delete per intrusive branch — no per-branch victim
scans and no per-branch copies.  The registry mirrors the interpreted
tier's shared-node registry and is likewise not charged to the counter
(it models the record pointer generated C++ would already hold).

The generated source is self-contained: it imports only stable ``repro``
entry points, reconstructs its specification literally, and can be written
to disk and inspected (``compile_relation`` attaches it as ``__source__``).
"""

from __future__ import annotations

import linecache
import re
import threading
from itertools import count as _count_from
from typing import Callable, Dict, FrozenSet, List, Mapping, Optional, Sequence, Union

from ..core.errors import DecompositionError
from ..core.spec import RelationSpec
from ..decomposition.adequacy import check_adequacy
from ..decomposition.model import (
    Decomposition,
    DecompNode,
    MapEdge,
    Path,
    format_decomposition,
)
from ..decomposition.parser import parse_decomposition
from ..decomposition.plan import (
    JoinPlan,
    LookupStep,
    PlanStep,
    ScanStep,
    plan_query,
    residual_update_columns,
)
from ..faults import register_site
from ..structures.registry import canonical_structure_name, size_class
from .emitter import Emitter

__all__ = [
    "MAX_ENUMERATED_COLUMNS",
    "clear_codegen_cache",
    "codegen_cache_stats",
    "compile_relation",
    "generate_source",
    "generate_source_and_meta",
]

#: Injection sites emitted into every generated class's mutators.  They sit
#: *inside* the unrolled walks — after some links/registry entries have been
#: applied — so arming one exercises the emitted rollback blocks, not the
#: trivial nothing-done-yet prefix.  Registered here (at compiler import)
#: so the chaos suite's sweep covers the compiled tier even before the
#: first class is generated.
for _site in (
    "codegen.insert.fd_evict",
    "codegen.insert.store",
    "codegen.insert.link_shared",
    "codegen.insert.registry",
    "codegen.remove.unlink",
    "codegen.remove.registry_pop",
    "codegen.remove.batch",
    "codegen.update.reinsert",
    "codegen.update.in_place",
):
    register_site(_site)

#: Specialised query methods are generated for *every* subset of the
#: specification columns up to this width (2**6 = 64 methods).  Wider
#: schemas get methods for the essential subsets (empty pattern, full
#: pattern, FD left-hand sides, per-path key prefixes) plus a scanning
#: fallback, keeping generated-code size linear in the schema.
MAX_ENUMERATED_COLUMNS = 6

_generated_modules = _count_from()


def _strategy(edge: MapEdge) -> str:
    return getattr(edge.structure_class(), "CODEGEN_STRATEGY", "hash")


def _default_class_name(decomposition_name: str) -> str:
    sanitized = re.sub(r"\W+", "_", decomposition_name).strip("_") or "relation"
    return "Compiled_" + sanitized


class _RelationCompiler:
    """Single-use compiler from one (spec, decomposition) pair to source."""

    def __init__(
        self,
        spec: RelationSpec,
        decomposition: Decomposition,
        class_name: str,
        enforce_fds_default: bool = True,
        sizes: Optional[Mapping[MapEdge, float]] = None,
    ):
        check_adequacy(decomposition, spec)
        self.spec = spec
        self.decomposition = decomposition
        self.class_name = class_name
        self.enforce_fds_default = enforce_fds_default
        #: Optional per-edge container-size estimates (e.g. the autotuner's
        #: trace-derived :func:`~repro.autotuner.scorer.estimate_edge_sizes`).
        #: The compile-time plan table is chosen against them, so a class
        #: compiled for a workload whose split-pattern queries profit from a
        #: cross-branch join gets the join plan — without them plans are
        #: ranked at the symbolic uniform size, which cannot see skew.
        self.sizes = sizes
        self.cols = tuple(sorted(spec.columns))
        self.col_index = {c: i for i, c in enumerate(self.cols)}
        self.paths: List[Path] = decomposition.paths()
        #: Shared sub-nodes (≥ 2 parent edges) in pre-order; each gets a
        #: registry attribute ``self._s<j>`` on the generated class mapping
        #: the node's bound-column binding to its unique cell object.
        self.shared_nodes: List[DecompNode] = decomposition.shared_nodes()
        self.shared_index = {id(node): j for j, node in enumerate(self.shared_nodes)}
        self.shared_bound_cols = {
            id(node): tuple(sorted(decomposition.shared_bound(node)))
            for node in self.shared_nodes
        }
        self.em = Emitter()
        self._symbols = 0

    # -- small expression helpers ----------------------------------------------

    def _gensym(self, prefix: str) -> str:
        self._symbols += 1
        return f"{prefix}{self._symbols}"

    def _reset_symbols(self) -> None:
        self._symbols = 0
        #: What a chain miss emits outside any loop.  Methods return plain
        #: ``return``; the list-building query cores set ``return out`` so a
        #: miss hands back the (possibly empty) result list.
        self._chain_return = "return"

    def _vexpr(self, col: str) -> str:
        """The local variable holding *col*'s value in row-bound methods."""
        return f"v{self.col_index[col]}"

    def _row_unpack(self) -> str:
        names = ", ".join(self._vexpr(c) for c in self.cols)
        return names if len(self.cols) > 1 else names + ","

    @staticmethod
    def _tuple_literal(parts: Sequence[str]) -> str:
        """A tuple display that stays a tuple for a single element."""
        if len(parts) == 1:
            return f"({parts[0]},)"
        return "(" + ", ".join(parts) + ")"

    def _key_expr(self, edge: MapEdge, val: Callable[[str], str]) -> str:
        key_cols = sorted(edge.key)
        if len(key_cols) == 1:
            return val(key_cols[0])
        return "(" + ", ".join(val(c) for c in key_cols) + ")"

    def _residual_expr(self, leaf: DecompNode, val: Callable[[str], str]) -> str:
        unit_cols = sorted(leaf.unit_columns)
        if not unit_cols:
            return "True"
        if len(unit_cols) == 1:
            return val(unit_cols[0])
        return "(" + ", ".join(val(c) for c in unit_cols) + ")"

    def _container_expr(self, node: DecompNode, inst_expr: str, edge_index: int) -> str:
        if len(node.edges) == 1:
            return inst_expr
        return f"{inst_expr}[{edge_index}]"

    def _node_literal(self, node: DecompNode) -> str:
        parts = ["_L()" if _strategy(e) == "list" else "{}" for e in node.edges]
        if len(parts) == 1:
            return parts[0]
        return "[" + ", ".join(parts) + "]"

    def _emptiness_expr(self, node: DecompNode, inst_expr: str) -> str:
        if len(node.edges) == 1:
            return f"not {inst_expr}"
        alive = " or ".join(f"{inst_expr}[{i}]" for i in range(len(node.edges)))
        return f"not ({alive})"

    def _is_shared(self, node: DecompNode) -> bool:
        return id(node) in self.shared_index

    def _bk_expr(self, node: DecompNode, val: Callable[[str], str]) -> str:
        """The registry key of a shared node: a tuple over its sorted bound
        columns (always a tuple, even for one column, so well-formedness
        checks can index into it positionally)."""
        return self._tuple_literal([val(c) for c in self.shared_bound_cols[id(node)]])

    def _cell_literal(self, node: DecompNode) -> str:
        """The freshly-created cell of a shared node: a one-slot list for a
        unit leaf (so the residual has object identity every parent can
        point at), the container literal for a map node."""
        if node.is_unit:
            return "[None]"
        return self._node_literal(node)

    def _emit_access_count(
        self, edge: MapEdge, cexpr: str, scan: bool = False, op: str = "lookup"
    ) -> None:
        strategy = _strategy(edge)
        if scan:
            self.em.line(f"if en: _C.accesses += len({cexpr})")
        elif strategy == "tree":
            self.em.line(f"if en: _C.accesses += max(1, len({cexpr}).bit_length())")
        elif strategy == "intrusive":
            if op == "lookup":
                # An unordered intrusive list cannot probe by key: a key
                # search walks the links, so it is charged like a scan.
                self.em.line(f"if en: _C.accesses += max(1, len({cexpr}))")
            else:  # link / unlink: the intrusive O(1) operations.
                self.em.line("if en: _C.accesses += 1")
        elif strategy != "list":  # list probes are counted inside the helpers
            self.em.line("if en: _C.accesses += 1")

    def _emit_get(self, edge: MapEdge, target: str, cexpr: str, kexpr: str) -> None:
        # _MISS (not None) is the missing-entry sentinel throughout: None is
        # a legal stored value, so a unit residual of None must stay
        # distinguishable from an absent entry.
        self._emit_access_count(edge, cexpr)
        if _strategy(edge) == "list":
            self.em.line(f"{target} = _l_get({cexpr}, {kexpr})")
        else:
            self.em.line(f"{target} = {cexpr}.get({kexpr}, _MISS)")

    def _emit_unlink(
        self, edge: MapEdge, cexpr: str, kexpr: str, probe_paid: bool = True
    ) -> None:
        """Delete an entry the emitted code has already proven present.

        When *probe_paid* (the non-shared walk: an ``_emit_get`` probe on
        this container immediately precedes), hash/tree deletes ride on
        that charge.  The shared-node fast path reaches the container with
        no preceding probe (the hit was decided against the registry), so
        it passes ``probe_paid=False`` and the delete is charged like the
        probe the interpreted tier's key-based removal pays.  Intrusive
        unlinks always charge their single access — their preceding probe,
        if any, was a key *search*, and the O(1) unlink is a separate
        pointer splice.

        Every unlink carries a ``codegen.remove.unlink`` injection site and
        journals the deleted entry (an uncounted read) so the enclosing
        mutator's rollback block can relink it."""
        strategy = _strategy(edge)
        self.em.fault_check("codegen.remove.unlink", guard="_fa")
        if strategy == "list":
            self.em.line(f"_l_del_j({cexpr}, {kexpr}, _j)")
            return
        if strategy == "intrusive" or not probe_paid:
            self._emit_access_count(edge, cexpr, op="unlink")
        self.em.line(f"_j.append((0, {cexpr}, {kexpr}, {cexpr}[{kexpr}]))")
        self.em.line(f"del {cexpr}[{kexpr}]")

    def _residual_condition(self, leaf: DecompNode, uvar: str, val: Callable[[str], str]) -> str:
        if self._is_shared(leaf):
            # *uvar* holds the shared cell (or _MISS): unwrap one level.
            if not leaf.unit_columns:
                return f"{uvar} is not _MISS"
            return (
                f"{uvar} is not _MISS and {uvar}[0] == {self._residual_expr(leaf, val)}"
            )
        if not leaf.unit_columns:
            return f"{uvar} is True"
        return f"{uvar} == {self._residual_expr(leaf, val)}"

    # -- pattern subsets / dispatch ---------------------------------------------

    def _mask(self, subset: FrozenSet[str]) -> int:
        return sum(1 << self.col_index[c] for c in subset)

    def _pattern_subsets(self) -> List[FrozenSet[str]]:
        if len(self.cols) <= MAX_ENUMERATED_COLUMNS:
            return [
                frozenset(c for i, c in enumerate(self.cols) if mask >> i & 1)
                for mask in range(2 ** len(self.cols))
            ]
        subsets = {frozenset(), frozenset(self.cols)}
        for fd in self.spec.fds:
            subsets.add(frozenset(fd.lhs))
        for path in self.paths:
            bound: set = set()
            for e in path.edges:
                bound |= e.key
                subsets.add(frozenset(bound))
        return sorted(subsets, key=self._mask)

    # -- plan-shaped row generators ---------------------------------------------

    def _emit_chain(
        self,
        path: Path,
        steps: Sequence[PlanStep],
        known: Dict[str, str],
        in_loop: bool,
        start: "Optional[tuple]" = None,
    ) -> "tuple[Dict[str, str], int]":
        """Emit the walk of one chain; returns ``(exprs, opened_loops)``.

        *known* maps columns already bound in the emitted scope (pattern
        variables, or — for a join's probe side — the build side's row
        variables) to their expressions.  Lookup steps probe with known
        expressions; scan steps open a loop, comparing scanned key columns
        against known expressions and binding the rest; leaf residuals are
        likewise compared when known (the explicit residual filter, and a
        join's common-column agreement) and bound when not.  The caller
        emits the leaf payload (a ``yield`` or a hash-table insert) and
        then pops *opened_loops* indent levels.  *in_loop* tells the walker
        whether a miss must ``continue`` an enclosing loop instead of
        returning from the generator.  *start* — a ``(node, expr)`` pair —
        begins the walk mid-path at *node* held in *expr* instead of at the
        root (the range scan holds each root child from its ordered
        iteration, so its per-group sub-walks start one level down).
        """
        em = self.em
        exprs: Dict[str, str] = dict(known)
        opened_loops = 0
        if start is not None:
            node, current = start
        else:
            node = self.decomposition.root
            current = "self._root"

        def fail() -> str:
            if opened_loops or in_loop:
                return "continue"
            return self._chain_return

        if start is None and not path.edges:
            uvar = self._gensym("u")
            em.line(f"{uvar} = self._root")
            em.line(f"if {uvar} is _MISS:")
            with em.indent():
                em.line(fail())
            current = uvar

        for step in steps:
            e = step.edge
            cvar = self._gensym("c")
            em.line(f"{cvar} = {self._container_expr(node, current, step.edge_index)}")
            if isinstance(step, LookupStep):
                kexpr = self._key_expr(e, lambda c: exprs[c])
                nvar = self._gensym("n")
                self._emit_get(e, nvar, cvar, kexpr)
                em.line(f"if {nvar} is _MISS:")
                with em.indent():
                    em.line(fail())
            else:
                self._emit_access_count(e, cvar, scan=True)
                kvar = self._gensym("k")
                nvar = self._gensym("n")
                if _strategy(e) == "list":
                    entry = self._gensym("t")
                    em.line(f"for {entry} in {cvar}:")
                    em.push()
                    em.line(f"{kvar} = {entry}[0]")
                    em.line(f"{nvar} = {entry}[1]")
                else:
                    em.line(f"for {kvar}, {nvar} in {cvar}.items():")
                    em.push()
                opened_loops += 1
                key_cols = sorted(e.key)
                for j, kc in enumerate(key_cols):
                    scanned = kvar if len(key_cols) == 1 else f"{kvar}[{j}]"
                    if kc in exprs:
                        em.line(f"if {scanned} != {exprs[kc]}:")
                        with em.indent():
                            em.line("continue")
                    else:
                        exprs[kc] = scanned
            node = e.child
            current = nvar

        unit_cols = sorted(path.leaf.unit_columns)
        # A shared unit leaf stores its residual boxed in a one-slot cell.
        base = f"{current}[0]" if self._is_shared(path.leaf) else current
        for j, uc in enumerate(unit_cols):
            leaf_expr = base if len(unit_cols) == 1 else f"{base}[{j}]"
            if uc in exprs:
                em.line(f"if {leaf_expr} != {exprs[uc]}:")
                with em.indent():
                    em.line(fail())
            else:
                exprs[uc] = leaf_expr
        return exprs, opened_loops

    def _pattern_vars(self, pattern_cols: FrozenSet[str]) -> Dict[str, str]:
        """Positional parameter names for a pattern's columns, in sorted
        column order — the same order :attr:`Tuple._items` stores values,
        so the public boundary can splat a pattern straight into the
        specialised generator without building a dict."""
        return {col: f"p{self.col_index[col]}" for col in sorted(pattern_cols)}

    def _emit_plan_rows(
        self, path: Path, steps: Sequence[PlanStep], pattern_cols: FrozenSet[str]
    ) -> None:
        """Emit the body of a row-list builder walking one full-coverage
        chain, appending plain rows (value tuples in sorted column order).

        A list, not a generator: the callers always consume every row, so
        eager construction charges the same accesses while skipping the
        per-row resume cost of the generator protocol."""
        em = self.em
        em.line("en = _C.enabled")
        em.line("out = []")
        em.line("ap = out.append")
        self._chain_return = "return out"
        pvars = self._pattern_vars(pattern_cols)
        exprs, opened_loops = self._emit_chain(path, steps, pvars, in_loop=False)
        em.line("ap(" + self._tuple_literal([exprs[c] for c in self.cols]) + ")")
        em.pop(opened_loops)
        em.line("return out")
        self._chain_return = "return"

    def _emit_join_rows(self, plan: JoinPlan, pattern_cols: FrozenSet[str]) -> None:
        """Emit a join query method: build side first, then the probe side.

        ``style == "probe"``: the probe chain is emitted *inside* the build
        side's loops with the build row's columns bound, so probe lookups
        compile to direct container probes keyed by build-side values.
        ``style == "hash"``: both chains are emitted independently; the
        build rows are collected into a temporary dict keyed on the join
        columns and the probe rows matched against it — one counted access
        per temporary insert and per probe, matching the interpreted tier.
        """
        em = self.em
        em.line("en = _C.enabled")
        em.line("out = []")
        em.line("ap = out.append")
        self._chain_return = "return out"
        pvars = self._pattern_vars(pattern_cols)
        if plan.style == "probe":
            build_exprs, build_loops = self._emit_chain(
                plan.build.path, plan.build.steps, pvars, in_loop=False
            )
            exprs, probe_loops = self._emit_chain(
                plan.probe.path, plan.probe.steps, build_exprs, in_loop=build_loops > 0
            )
            em.line("ap(" + self._tuple_literal([exprs[c] for c in self.cols]) + ")")
            em.pop(build_loops + probe_loops)
            em.line("return out")
            self._chain_return = "return"
            return
        on_cols = sorted(plan.on)
        build_cols = sorted(plan.build.produced)
        em.line("_tbl = {}")
        build_exprs, build_loops = self._emit_chain(
            plan.build.path, plan.build.steps, pvars, in_loop=False
        )
        em.line("if en: _C.accesses += 1")
        key = self._tuple_literal([build_exprs[c] for c in on_cols])
        row = self._tuple_literal([build_exprs[c] for c in build_cols])
        em.line(f"_tbl.setdefault({key}, []).append({row})")
        em.pop(build_loops)
        probe_exprs, probe_loops = self._emit_chain(
            plan.probe.path, plan.probe.steps, pvars, in_loop=False
        )
        em.line("if en: _C.accesses += 1")
        pkey = self._tuple_literal([probe_exprs[c] for c in on_cols])
        em.line(f"for _m in _tbl.get({pkey}, ()):")
        em.push()
        build_pos = {c: i for i, c in enumerate(build_cols)}
        merged = [
            probe_exprs[c] if c in probe_exprs else f"_m[{build_pos[c]}]"
            for c in self.cols
        ]
        em.line("ap(" + self._tuple_literal(merged) + ")")
        em.pop(1 + probe_loops)
        em.line("return out")
        self._chain_return = "return"

    def _emit_query_method(self, subset: FrozenSet[str], plan) -> str:
        mask = self._mask(subset)
        name = f"_q_{mask}"
        params = [f"p{self.col_index[c]}" for c in sorted(subset)]
        self._reset_symbols()
        # The positional core: pattern values arrive as parameters (in
        # sorted column order — Tuple._items order), bound once at call
        # time instead of through per-call dict loads.
        signature = ", ".join(["self"] + params)
        with self.em.block(f"def _qv_{mask}({signature}):"):
            pattern = "{" + ", ".join(sorted(subset)) + "}"
            self.em.docstring(f"Pattern over {pattern}; plan: {plan.describe()}.")
            if isinstance(plan, JoinPlan):
                self._emit_join_rows(plan, subset)
            else:
                self._emit_plan_rows(plan.path, plan.steps, subset)
        self.em.line()
        # Thin dict-pattern adapter kept for the _PLANS table and callers
        # holding a plain mapping.
        with self.em.block(f"def {name}(self, p):"):
            args = ", ".join(f"p[{c!r}]" for c in sorted(subset))
            self.em.line(f"return self._qv_{mask}({args})" if args else f"return self._qv_{mask}()")
        self.em.line()
        return name

    def _emit_rows_path(self, index: int) -> None:
        path = self.paths[index]
        steps = [ScanStep(e, i) for e, i in zip(path.edges, path.edge_indices)]
        out_cols = sorted(path.covered)
        self._reset_symbols()
        with self.em.block(f"def _rows_path_{index}(self):"):
            self.em.docstring(
                f"Scan every row via path {index}: {path.describe()}."
                + (
                    ""
                    if frozenset(out_cols) == frozenset(self.cols)
                    else f"  Key-projection branch: rows cover ({', '.join(out_cols)})."
                )
            )
            self.em.line("en = _C.enabled")
            exprs, opened_loops = self._emit_chain(path, steps, {}, in_loop=False)
            self.em.line("yield " + self._tuple_literal([exprs[c] for c in out_cols]))
            self.em.pop(opened_loops)
        self.em.line()

    # -- straight-line walks for the mutators ------------------------------------

    def _emit_presence_check(self, on_hit: Sequence[str]) -> None:
        """Nested lookups along the primary path; *on_hit* runs when the
        exact row is already stored."""
        em = self.em
        path = self.paths[0]
        if not path.edges:
            cond = self._residual_condition(path.leaf, "self._root", self._vexpr)
            em.line(f"if {cond}:")
            with em.indent():
                for stmt in on_hit:
                    em.line(stmt)
            return
        node = self.decomposition.root
        current = "self._root"
        opened = 0
        for depth, (e, idx) in enumerate(zip(path.edges, path.edge_indices)):
            cexpr = self._container_expr(node, current, idx)
            kexpr = self._key_expr(e, self._vexpr)
            nvar = self._gensym("n")
            self._emit_get(e, nvar, cexpr, kexpr)
            if depth == len(path.edges) - 1:
                em.line(f"if {self._residual_condition(path.leaf, nvar, self._vexpr)}:")
                with em.indent():
                    for stmt in on_hit:
                        em.line(stmt)
            else:
                em.line(f"if {nvar} is not _MISS:")
                em.push()
                opened += 1
            node = e.child
            current = nvar
        em.pop(opened)

    def _emit_fd_eviction(self) -> None:
        """Collect every stored row FD-conflicting with the new row into
        ``_conf`` and remove it — the last-writer-wins semantics of
        ``enforce_fds=False``.  Driven by the specification's FDs (via the
        compiled per-pattern query methods) rather than by unit-binding
        collisions, which are layout-dependent: a fully-bound layout has
        empty units yet must still agree with the other tiers."""
        em = self.em
        em.line("_conf = None")
        for fd in self.spec.fds:
            rhs = sorted(fd.rhs)
            em.line(f"for _m in {self._fd_query_call(fd.lhs, self._vexpr)}:")
            with em.indent():
                differs = " or ".join(
                    f"_m[{self.col_index[c]}] != {self._vexpr(c)}" for c in rhs
                )
                em.line(f"if {differs}:")
                with em.indent():
                    em.line("if _conf is None:")
                    with em.indent():
                        em.line("_conf = set()")
                    em.line("_conf.add(_m)")
        em.line("if _conf:")
        with em.indent():
            em.line("for _r in _conf:")
            with em.indent():
                em.fault_check("codegen.insert.fd_evict", guard="_fa")
                em.line("self._remove_row(_r, _j)")

    def _emit_store_walk(self, node: DecompNode, inst_expr: str, shared_emitted: set) -> None:
        em = self.em
        if node.is_unit:  # Unit root: the instance is the residual itself.
            em.fault_check("codegen.insert.store", guard="_fa")
            em.line("_j.append((5, self, self._root))")
            em.line(f"self._root = {self._residual_expr(node, self._vexpr)}")
            return
        for idx, e in enumerate(node.edges):
            cvar = self._gensym("c")
            em.line(f"{cvar} = {self._container_expr(node, inst_expr, idx)}")
            kexpr = self._key_expr(e, self._vexpr)
            if self._is_shared(e.child):
                self._emit_shared_store(e, cvar, kexpr, shared_emitted)
            elif e.child.is_unit:
                residual = self._residual_expr(e.child, self._vexpr)
                em.fault_check("codegen.insert.store", guard="_fa")
                self._emit_access_count(e, cvar)
                if _strategy(e) == "list":
                    em.line(f"_l_put_j({cvar}, {kexpr}, {residual}, _j)")
                else:
                    # The uncounted .get captures the displaced residual (if
                    # any) for the rollback block.
                    em.line(f"_j.append((0, {cvar}, {kexpr}, {cvar}.get({kexpr}, _MISS)))")
                    em.line(f"{cvar}[{kexpr}] = {residual}")
            else:
                nvar = self._gensym("n")
                self._emit_get(e, nvar, cvar, kexpr)
                em.line(f"if {nvar} is _MISS:")
                with em.indent():
                    em.line(f"{nvar} = {self._node_literal(e.child)}")
                    if _strategy(e) == "list":
                        em.line(f"{cvar}.append([{kexpr}, {nvar}])")
                        em.line(f"_j.append((4, {cvar}))")
                    else:
                        em.line(f"{cvar}[{kexpr}] = {nvar}")
                        em.line(f"_j.append((1, {cvar}, {kexpr}))")
                self._emit_store_walk(e.child, nvar, shared_emitted)

    def _emit_shared_store(self, e: MapEdge, cvar: str, kexpr: str, shared_emitted: set) -> None:
        """Get-or-create the shared child's cell (once per insert) and link
        it into this parent container only when freshly created — a registry
        hit from an earlier insert is already linked into every parent, so
        no duplicate search is ever emitted (the intrusive O(1) link)."""
        em = self.em
        j = self.shared_index[id(e.child)]
        descend = False
        if j not in shared_emitted:
            shared_emitted.add(j)
            em.line(f"_b{j} = {self._bk_expr(e.child, self._vexpr)}")
            em.line(f"_sc{j} = self._s{j}.get(_b{j})")
            em.line(f"_sn{j} = _sc{j} is None")
            em.line(f"if _sn{j}:")
            with em.indent():
                em.fault_check("codegen.insert.registry", guard="_fa")
                em.line(f"_sc{j} = {self._cell_literal(e.child)}")
                em.line(f"self._s{j}[_b{j}] = _sc{j}")
                em.line(f"_j.append((1, self._s{j}, _b{j}))")
            if e.child.is_unit and e.child.unit_columns:
                em.line(f"_j.append((2, _sc{j}, _sc{j}[0]))")
                em.line(f"_sc{j}[0] = {self._residual_expr(e.child, self._vexpr)}")
            elif e.child.is_unit:
                em.line(f"_j.append((2, _sc{j}, _sc{j}[0]))")
                em.line(f"_sc{j}[0] = True")
            descend = not e.child.is_unit
        em.line(f"if _sn{j}:")
        with em.indent():
            em.fault_check("codegen.insert.link_shared", guard="_fa")
            if _strategy(e) == "list":
                em.line("if en: _C.accesses += 1")
                em.line(f"{cvar}.append([{kexpr}, _sc{j}])")
                em.line(f"_j.append((4, {cvar}))")
            else:
                self._emit_access_count(e, cvar, op="link")
                em.line(f"{cvar}[{kexpr}] = _sc{j}")
                em.line(f"_j.append((1, {cvar}, {kexpr}))")
        if descend:
            self._emit_store_walk(e.child, f"_sc{j}", shared_emitted)

    def _emit_remove_walk(self, node: DecompNode, inst_expr: str, shared_emitted: set) -> None:
        em = self.em
        if node.is_unit:  # Unit root.
            cond = self._residual_condition(node, "self._root", self._vexpr)
            em.line(f"if {cond}:")
            with em.indent():
                em.fault_check("codegen.remove.unlink", guard="_fa")
                em.line("_j.append((5, self, self._root))")
                em.line("self._root = _MISS")
                em.line("removed = True")
            return
        for idx, e in enumerate(node.edges):
            cvar = self._gensym("c")
            em.line(f"{cvar} = {self._container_expr(node, inst_expr, idx)}")
            kexpr = self._key_expr(e, self._vexpr)
            if self._is_shared(e.child):
                # The hit was decided once against the registry (_sh flags,
                # see _emit_remove_row); each parent just unlinks — O(1) on
                # intrusive branches, no per-branch victim scan.
                j = self.shared_index[id(e.child)]
                if e.child.is_unit:
                    em.line(f"if _sh{j}:")
                    with em.indent():
                        self._emit_unlink(e, cvar, kexpr, probe_paid=False)
                        em.line("removed = True")
                else:
                    if j not in shared_emitted:
                        shared_emitted.add(j)
                        em.line(f"if _sh{j}:")
                        with em.indent():
                            self._emit_remove_walk(e.child, f"_sc{j}", shared_emitted)
                            em.line(f"_se{j} = {self._emptiness_expr(e.child, f'_sc{j}')}")
                    em.line(f"if _sh{j} and _se{j}:")
                    with em.indent():
                        self._emit_unlink(e, cvar, kexpr, probe_paid=False)
            elif e.child.is_unit:
                uvar = self._gensym("u")
                self._emit_get(e, uvar, cvar, kexpr)
                em.line(f"if {self._residual_condition(e.child, uvar, self._vexpr)}:")
                with em.indent():
                    self._emit_unlink(e, cvar, kexpr)
                    em.line("removed = True")
            else:
                nvar = self._gensym("n")
                self._emit_get(e, nvar, cvar, kexpr)
                em.line(f"if {nvar} is not _MISS:")
                with em.indent():
                    self._emit_remove_walk(e.child, nvar, shared_emitted)
                    em.line(f"if {self._emptiness_expr(e.child, nvar)}:")
                    with em.indent():
                        self._emit_unlink(e, cvar, kexpr)

    # -- top-level generation ----------------------------------------------------

    def generate(self) -> str:
        em = self.em
        subsets = self._pattern_subsets()
        plans = {
            subset: plan_query(
                self.decomposition, subset, sizes=self.sizes, spec=self.spec
            )
            for subset in subsets
        }
        self.resid_safe = residual_update_columns(self.decomposition, self.spec)
        self.batch_subsets = [
            subset for subset in subsets if self._is_batch_removable(subset, plans[subset])
        ]
        self.has_range = self._range_path() is not None
        self._emit_module_header()
        self._emit_class_header(subsets, plans)
        with em.indent():
            self._emit_init()
            self._emit_coercers()
            self._emit_insert()
            self._emit_insert_row()
            self._emit_remove()
            self._emit_remove_row()
            self._emit_update()
            if self.resid_safe:
                self._emit_update_in_place()
            self._emit_query()
            self._emit_query_range()
            method_names = {}
            for subset in subsets:
                method_names[subset] = self._emit_query_method(subset, plans[subset])
            rm_names = {}
            for subset in self.batch_subsets:
                rm_names[subset] = self._emit_batch_remove(subset, plans[subset])
            for index in range(len(self.paths)):
                self._emit_rows_path(index)
            self._emit_inspection()
        self._emit_dispatch(subsets, method_names, rm_names)
        #: Per-class metadata consumed by the static verifier
        #: (``repro.analysis.emitted``): the dispatch masks the compiler
        #: actually planned for, which fault sites it emitted, and the plan
        #: behind every specialised query method.  Attached to the compiled
        #: class as ``__repro_meta__``.
        self.meta = {
            "class_name": self.class_name,
            "columns": list(self.cols),
            "layout": self.decomposition.describe(),
            "masks": sorted(self._mask(s) for s in subsets),
            "batch_masks": sorted(self._mask(s) for s in self.batch_subsets),
            "has_range": self.has_range,
            "resid_safe": sorted(self.resid_safe),
            "shared_nodes": len(self.shared_nodes),
            "fault_sites": sorted(em.fault_sites),
            "queries": {
                self._mask(s): {
                    "method": method_names[s],
                    "vmethod": f"_qv_{self._mask(s)}",
                    "pattern": sorted(s),
                    "plan": plans[s].describe(),
                }
                for s in subsets
            },
        }
        return em.source()

    def _emit_module_header(self) -> None:
        em = self.em
        em.docstring(
            f"Generated by repro.codegen for decomposition "
            f"{self.decomposition.name!r}: {self.decomposition.describe()}\n"
            f"Do not edit; regenerate with repro.codegen.generate_source()."
        )
        em.lines(
            "",
            *(
                ["from bisect import bisect_left as _bl, bisect_right as _br"]
                if self.has_range
                else []
            ),
            "from operator import itemgetter as _itemgetter",
            "",
            "from repro.core.errors import FunctionalDependencyError, WellFormednessError",
            "from repro.core.fd import FunctionalDependency",
            "from repro.core.interface import RelationInterface",
            "from repro.core.relation import Relation",
            "from repro.core.spec import RelationSpec",
            "from repro.core.tuples import Tuple",
            "from repro.structures.base import COUNTER as _C",
            "from repro.core.values import value_sort_key as _VSK, values_sort_key as _row_key",
            "from repro.faults import FAULTS as _F",
            "",
            "_MISS = object()",
            "_ig0 = _itemgetter(0)",
            "_ig1 = _itemgetter(1)",
            f"_COLS = ({', '.join(repr(c) for c in self.cols)},)",
            "_COLSET = frozenset(_COLS)",
            "_COLINDEX = {c: i for i, c in enumerate(_COLS)}",
            "_COLBIT = {c: 1 << i for i, c in enumerate(_COLS)}",
            "_RS = frozenset(("
            + "".join(f"{c!r}, " for c in sorted(self.resid_safe))
            + "))",
        )
        fd_literals = ", ".join(
            f"FunctionalDependency({sorted(fd.lhs)!r}, {sorted(fd.rhs)!r})"
            for fd in self.spec.fds
        )
        em.line(
            f"_SPEC = RelationSpec({list(self.cols)!r}, fds=[{fd_literals}], "
            f"name={self.spec.name!r})"
        )
        em.lines(
            "",
            "",
            "class _L(list):",
            "    \"\"\"Entry list of a list-strategy container, with a side index.",
            "",
            "    The list of ``[key, value]`` entries is the structure being",
            "    modelled — instrumented probes walk it and charge one access",
            "    per visited entry, exactly like the hand-written list",
            "    container.  ``idx`` maps key -> entry and is maintained by",
            "    every mutation; it only serves the *uncounted* fast paths",
            "    taken when the counter is disabled, so it can never change",
            "    what an instrumented run observes.\"\"\"",
            "    __slots__ = ('idx',)",
            "    def __init__(self):",
            "        list.__init__(self)",
            "        self.idx = {}",
            "",
            "",
            "# List-layout helpers.  Each has an instrumented walk charging",
            "# exactly one access per visited entry (hit included, full length",
            "# on a miss) and an index-backed fast path for when the counter is",
            "# off; both maintain the side index.",
            "def _l_get(c, k):",
            "    if _C.enabled:",
            "        n = 0",
            "        for e in c:",
            "            n += 1",
            "            if e[0] == k:",
            "                _C.accesses += n",
            "                return e[1]",
            "        _C.accesses += n",
            "        return _MISS",
            "    e = c.idx.get(k)",
            "    return _MISS if e is None else e[1]",
            "",
            "",
            "def _l_put(c, k, v):",
            "    if _C.enabled:",
            "        n = 0",
            "        for e in c:",
            "            n += 1",
            "            if e[0] == k:",
            "                _C.accesses += n",
            "                e[1] = v",
            "                return",
            "        _C.accesses += n",
            "    else:",
            "        e = c.idx.get(k)",
            "        if e is not None:",
            "            e[1] = v",
            "            return",
            "    e = [k, v]",
            "    c.append(e)",
            "    c.idx[k] = e",
            "",
            "",
            "def _l_del(c, k):",
            "    if _C.enabled:",
            "        n = 0",
            "        for i, e in enumerate(c):",
            "            n += 1",
            "            if e[0] == k:",
            "                _C.accesses += n",
            "                del c.idx[k]",
            "                c[i] = c[-1]",
            "                c.pop()",
            "                return True",
            "        _C.accesses += n",
            "        return False",
            "    e = c.idx.pop(k, None)",
            "    if e is None:",
            "        return False",
            "    c[c.index(e)] = c[-1]",
            "    c.pop()",
            "    return True",
            "",
            "",
            "# Journal-aware list helpers: identical probing and counting to",
            "# _l_put/_l_del, plus one uncounted journal append per mutation so",
            "# the emitted rollback blocks can restore the entry exactly.",
            "def _l_put_j(c, k, v, j):",
            "    if _C.enabled:",
            "        n = 0",
            "        for e in c:",
            "            n += 1",
            "            if e[0] == k:",
            "                _C.accesses += n",
            "                j.append((7, e, e[1]))",
            "                e[1] = v",
            "                return",
            "        _C.accesses += n",
            "    else:",
            "        e = c.idx.get(k)",
            "        if e is not None:",
            "            j.append((7, e, e[1]))",
            "            e[1] = v",
            "            return",
            "    e = [k, v]",
            "    c.append(e)",
            "    c.idx[k] = e",
            "    j.append((4, c))",
            "",
            "",
            "def _l_del_j(c, k, j):",
            "    if _C.enabled:",
            "        n = 0",
            "        for i, e in enumerate(c):",
            "            n += 1",
            "            if e[0] == k:",
            "                _C.accesses += n",
            "                del c.idx[k]",
            "                c[i] = c[-1]",
            "                c.pop()",
            "                j.append((3, c, e))",
            "                return True",
            "        _C.accesses += n",
            "        return False",
            "    e = c.idx.pop(k, None)",
            "    if e is None:",
            "        return False",
            "    c[c.index(e)] = c[-1]",
            "    c.pop()",
            "    j.append((3, c, e))",
            "    return True",
            "",
            "",
            "def _undo(j):",
            "    \"\"\"Replay a mutator's undo journal newest-first.",
            "",
            "    Entries are (kind, ...) tuples appended by the emitted",
            "    rollback-aware mutators; replaying them in reverse restores",
            "    the pre-operation state exactly.  Never charges the counter:",
            "    it only runs on the exception path.\"\"\"",
            "    for x in reversed(j):",
            "        k = x[0]",
            "        if k == 0:  # dict entry: restore old value (_MISS = absent)",
            "            if x[3] is _MISS:",
            "                x[1].pop(x[2], None)",
            "            else:",
            "                x[1][x[2]] = x[3]",
            "        elif k == 1:  # fresh dict entry: delete",
            "            x[1].pop(x[2], None)",
            "        elif k == 2:  # shared unit cell: restore residual",
            "            x[1][0] = x[2]",
            "        elif k == 3:  # deleted list entry: relink",
            "            x[1].append(x[2])",
            "            x[1].idx[x[2][0]] = x[2]",
            "        elif k == 4:  # appended list entry: unlink",
            "            e = x[1].pop()",
            "            x[1].idx.pop(e[0], None)",
            "        elif k == 5:  # unit root: restore",
            "            x[1]._root = x[2]",
            "        elif k == 6:  # row count: restore delta",
            "            x[1]._count += x[2]",
            "        elif k == 7:  # list entry value: restore",
            "            x[1][1] = x[2]",
            "    del j[:]",
            "",
            "",
        )

    def _emit_class_header(self, subsets: Sequence[FrozenSet[str]], plans: Dict) -> None:
        em = self.em
        em.line(f"class {self.class_name}(RelationInterface):")
        lines = [
            f"Compiled representation of {self.spec.name!r} stored as "
            f"{self.decomposition.describe()}.",
            "",
            "Rows are value tuples over the sorted columns "
            + "(" + ", ".join(self.cols) + ").",
            "Pattern dispatch (built at compile time):",
        ]
        for subset in subsets:
            pattern = "{" + ", ".join(sorted(subset)) + "}"
            lines.append(f"  {pattern or '{}'}: {plans[subset].describe()}")
        with em.indent():
            em.docstring("\n".join(lines))
            em.line()

    def _emit_init(self) -> None:
        em = self.em
        root = self.decomposition.root
        literal = "_MISS" if root.is_unit else self._node_literal(root)
        with em.block(f"def __init__(self, enforce_fds={self.enforce_fds_default!r}):"):
            em.line("self.spec = _SPEC")
            em.line("self.enforce_fds = enforce_fds")
            em.line(f"self._root = {literal}")
            em.line("self._count = 0")
            em.line("self._proj_cache = {}")
            em.line("self._t_cache = {}")
            if self.has_range:
                # The ordered-root range cache: a sorted (sort_key, key)
                # snapshot rebuilt lazily whenever the mutation stamp moved.
                em.line("self._mut = 0")
                em.line("self._rord = []")
                em.line("self._rkeys = []")
                em.line("self._rset = None")
                em.line("self._rord_mut = -1")
            for j, node in enumerate(self.shared_nodes):
                bound = ", ".join(self.shared_bound_cols[id(node)])
                em.line(f"self._s{j} = {{}}  # shared node registry ({{{bound}}} binding -> cell)")
        em.line()

    def _emit_coercers(self) -> None:
        em = self.em
        with em.block("def _full_values(self, tup):"):
            em.line("if type(tup) is Tuple:")
            with em.indent():
                # Tuple items are stored sorted by column, matching _COLS:
                # a positional column check replaces the dict round-trip.
                em.line("items = tup._items")
                shape = " and ".join(
                    [f"len(items) == {len(self.cols)}"]
                    + [f"items[{i}][0] == {c!r}" for i, c in enumerate(self.cols)]
                )
                em.line(f"if {shape}:")
                with em.indent():
                    em.line(
                        "return "
                        + self._tuple_literal(
                            [f"items[{i}][1]" for i in range(len(self.cols))]
                        )
                    )
                em.line("d = dict(items)")
            em.line("elif tup is None:")
            with em.indent():
                em.line("d = {}")
            em.line("else:")
            with em.indent():
                em.line("d = Tuple(tup).as_dict()")
            em.line(f"if len(d) != {len(self.cols)} or not _COLSET.issuperset(d):")
            with em.indent():
                em.line("_SPEC.check_full_tuple(Tuple(d))")
            em.line("return " + self._tuple_literal([f"d[{c!r}]" for c in self.cols]))
        em.line()
        with em.block("def _pattern_dict(self, pattern, role):"):
            em.line("if pattern is None:")
            with em.indent():
                em.line("return {}")
            em.line("if type(pattern) is Tuple:")
            with em.indent():
                em.line("d = dict(pattern._items)")
            em.line("else:")
            with em.indent():
                em.line("d = Tuple(pattern).as_dict()")
            em.line("if not _COLSET.issuperset(d):")
            with em.indent():
                em.line("_SPEC.check_partial_tuple(Tuple(d), role=role)")
            em.line("return d")
        em.line()

    def _fd_query_call(self, lhs: FrozenSet[str], val: Callable[[str], str]) -> str:
        mask = self._mask(lhs)
        payload = ", ".join(val(c) for c in sorted(lhs))
        return f"self._qv_{mask}({payload})"

    def _emit_insert(self) -> None:
        em = self.em
        with em.block("def insert(self, tup):"):
            em.line("row = self._full_values(tup)")
            fds = list(self.spec.fds)
            if fds:
                em.line("if self.enforce_fds:")
                with em.indent():
                    em.line(f"{self._row_unpack()} = row")
                    for fd in fds:
                        rhs = sorted(fd.rhs)
                        em.line(f"for _m in {self._fd_query_call(fd.lhs, self._vexpr)}:")
                        with em.indent():
                            check = " or ".join(
                                f"_m[{self.col_index[c]}] != {self._vexpr(c)}" for c in rhs
                            )
                            em.line(f"if {check}:")
                            with em.indent():
                                em.line(
                                    "raise FunctionalDependencyError("
                                    '"inserting %r would violate %s" % (tup, '
                                    f"{_fd_text(fd)!r}))"
                                )
            em.line("self._insert_row(row)")
        em.line()

    def _emit_insert_row(self) -> None:
        em = self.em
        self._reset_symbols()
        with em.block("def _insert_row(self, row, _j=None):"):
            em.docstring(
                "Insert a full row; returns whether it was new.  When FDs "
                "are not enforced, rows FD-conflicting with the new row are "
                "first removed from every branch (last-writer-wins, per the "
                "RelationInterface contract).  Strongly exception safe: "
                "every link, registry entry and eviction is journalled into "
                "_j and undone in reverse if any step fails; pass a caller's "
                "journal to enlist in an enclosing operation's rollback."
            )
            em.line("en = _C.enabled")
            em.line("_fa = _F.active")
            em.line(f"{self._row_unpack()} = row")
            self._emit_presence_check(["return False"])
            if self.has_range:
                # Stamp before mutating: a rollback leaves the stamp moved,
                # which only over-invalidates the range cache (never serves
                # stale keys).
                em.line("self._mut += 1")
            em.line("_own = _j is None")
            em.line("if _own:")
            with em.indent():
                em.line("_j = []")
            em.line("try:")
            with em.indent():
                if list(self.spec.fds):
                    em.line("if not self.enforce_fds:")
                    with em.indent():
                        self._emit_fd_eviction()
                self._emit_store_walk(self.decomposition.root, "self._root", set())
            em.line("except BaseException:")
            with em.indent():
                em.line("if _own:")
                with em.indent():
                    em.line("_undo(_j)")
                em.line("raise")
            em.line("self._count += 1")
            em.line("if not _own:")
            with em.indent():
                em.line("_j.append((6, self, -1))")
            em.line("return True")
        em.line()

    def _emit_remove(self) -> None:
        em = self.em
        with em.block("def remove(self, pattern=None):"):
            em.line("p = self._pattern_dict(pattern, 'removal pattern')")
            if self.batch_subsets:
                em.line("h = _RM.get(frozenset(p))")
                em.line("if h is not None:")
                with em.indent():
                    em.line("h(self, p)")
                    em.line("return")
            # One journal across the victims: a failure mid-removal relinks
            # the rows already removed, so the operation is all-or-nothing.
            em.line("_j = []")
            em.line("try:")
            with em.indent():
                em.line("for r in list(self._query_rows(p)):")
                with em.indent():
                    em.line("self._remove_row(r, _j)")
            em.line("except BaseException:")
            with em.indent():
                em.line("_undo(_j)")
                em.line("raise")
        em.line()

    def _is_batch_removable(self, subset: FrozenSet[str], plan) -> bool:
        """A pattern takes the fused remove path when its plan is a pure
        lookup chain (no scans, no join) whose bound pattern columns plus
        the target leaf's residual pin every column — at most one victim,
        reached by the same probes the query generator would pay."""
        if isinstance(plan, JoinPlan):
            return False
        if not all(isinstance(s, LookupStep) for s in plan.steps):
            return False
        covered = frozenset(subset) | frozenset(plan.path.leaf.unit_columns)
        return covered >= frozenset(self.cols)

    def _emit_batch_remove(self, subset: FrozenSet[str], plan) -> str:
        """The fused single-victim removal: walk the lookup chain once
        (identical probes to the query generator) and remove in place —
        no victim list, no generator frames, bit-identical access counts."""
        em = self.em
        mask = self._mask(subset)
        name = f"_rm_{mask}"
        self._reset_symbols()
        with em.block(f"def {name}(self, p):"):
            pattern = "{" + ", ".join(sorted(subset)) + "}"
            em.docstring(
                f"Fused remove for pattern {pattern or '{}'}: the lookup "
                f"chain pins at most one victim, removed without "
                f"materialising it through the query path first."
            )
            em.line("en = _C.enabled")
            em.line("_fa = _F.active")
            pvars = {}
            for col in sorted(subset):
                var = f"p{self.col_index[col]}"
                em.line(f"{var} = p[{col!r}]")
                pvars[col] = var
            exprs, opened_loops = self._emit_chain(
                plan.path, plan.steps, pvars, in_loop=False
            )
            assert not opened_loops
            em.fault_check("codegen.remove.batch", guard="_fa")
            em.line("_j = []")
            em.line("try:")
            with em.indent():
                row = self._tuple_literal([exprs[c] for c in self.cols])
                em.line(f"self._remove_row({row}, _j)")
            em.line("except BaseException:")
            with em.indent():
                em.line("_undo(_j)")
                em.line("raise")
        em.line()
        return name

    def _emit_remove_row(self) -> None:
        em = self.em
        self._reset_symbols()
        with em.block("def _remove_row(self, row, _j=None):"):
            em.docstring(
                "Remove a full row from every branch, pruning empty "
                "sub-instances.  Shared nodes are resolved once against "
                "their registry; every parent then unlinks the same object "
                "(O(1) per intrusive branch).  Strongly exception safe via "
                "the same journal discipline as _insert_row."
            )
            em.line("en = _C.enabled")
            em.line("_fa = _F.active")
            em.line(f"{self._row_unpack()} = row")
            em.line("removed = False")
            if self.has_range:
                em.line("self._mut += 1")
            em.line("_own = _j is None")
            em.line("if _own:")
            with em.indent():
                em.line("_j = []")
            for j, node in enumerate(self.shared_nodes):
                em.line(f"_b{j} = {self._bk_expr(node, self._vexpr)}")
                em.line(f"_sc{j} = self._s{j}.get(_b{j})")
                if node.is_unit:
                    if node.unit_columns:
                        em.line(
                            f"_sh{j} = _sc{j} is not None and _sc{j}[0] == "
                            f"{self._residual_expr(node, self._vexpr)}"
                        )
                    else:
                        em.line(f"_sh{j} = _sc{j} is not None")
                else:
                    em.line(f"_sh{j} = _sc{j} is not None")
                    em.line(f"_se{j} = False")
            em.line("try:")
            with em.indent():
                self._emit_remove_walk(self.decomposition.root, "self._root", set())
                for j, node in enumerate(self.shared_nodes):
                    guard = f"_sh{j}" if node.is_unit else f"_sh{j} and _se{j}"
                    em.line(f"if {guard}:")
                    with em.indent():
                        em.fault_check("codegen.remove.registry_pop", guard="_fa")
                        em.line(f"_j.append((0, self._s{j}, _b{j}, _sc{j}))")
                        em.line(f"self._s{j}.pop(_b{j}, None)")
            em.line("except BaseException:")
            with em.indent():
                em.line("if _own:")
                with em.indent():
                    em.line("_undo(_j)")
                em.line("raise")
            em.line("if removed:")
            with em.indent():
                em.line("self._count -= 1")
                em.line("if not _own:")
                with em.indent():
                    em.line("_j.append((6, self, 1))")
            em.line("return removed")
        em.line()

    def _emit_update(self) -> None:
        em = self.em
        cols = self.cols
        with em.block("def update(self, pattern, changes):"):
            em.line("p = self._pattern_dict(pattern, 'update pattern')")
            em.line("ch = self._pattern_dict(changes, 'update changes')")
            em.line("if not ch:")
            with em.indent():
                em.line("return")
            if self.resid_safe:
                em.line("if _RS.issuperset(ch):")
                with em.indent():
                    em.line("return self._update_in_place(p, ch)")
            em.line("_fa = _F.active")
            em.line("victims = list(self._query_rows(p))")
            em.line("if not victims:")
            with em.indent():
                em.line("return")
            merged = self._tuple_literal(
                [f"ch.get({c!r}, r[{i}])" for i, c in enumerate(cols)]
            )
            em.line(f"merged = [{merged} for r in victims]")
            fds = list(self.spec.fds)
            if fds:
                em.line("if self.enforce_fds:")
                with em.indent():
                    em.line("vic = set(victims)")
                    for fd in fds:
                        self._emit_update_fd_check(fd)
            em.line("if not self.enforce_fds:")
            with em.indent():
                # Canonical re-insertion order so colliding merges resolve
                # to the same winner in every tier (RelationInterface).
                em.line("merged.sort(key=_row_key)")
            # One journal across the whole remove-then-reinsert sequence: a
            # failure anywhere restores every victim and unwinds every
            # reinserted row — the update happens entirely or not at all.
            em.line("_j = []")
            em.line("try:")
            with em.indent():
                em.line("for r in victims:")
                with em.indent():
                    em.line("self._remove_row(r, _j)")
                em.line("for m in merged:")
                with em.indent():
                    em.fault_check("codegen.update.reinsert", guard="_fa")
                    em.line("self._insert_row(m, _j)")
            em.line("except BaseException:")
            with em.indent():
                em.line("_undo(_j)")
                em.line("raise")
        em.line()

    def _emit_update_fd_check(self, fd) -> None:
        """The reachable-group FD check: merged rows must agree within each
        left-hand-side group, both among themselves and with the untouched
        rows already stored under that group."""
        em = self.em
        lhs = sorted(fd.lhs)
        rhs = sorted(fd.rhs)
        gvar = self._gensym("g")

        def row_proj(var: str, columns: List[str]) -> str:
            if not columns:
                return "None"
            if len(columns) == 1:
                return f"{var}[{self.col_index[columns[0]]}]"
            return "(" + ", ".join(f"{var}[{self.col_index[c]}]" for c in columns) + ")"

        em.line(f"{gvar} = {{}}")
        em.line("for m in merged:")
        with em.indent():
            em.line(f"lk = {row_proj('m', lhs)}")
            em.line(f"rv = {row_proj('m', rhs)}")
            em.line(f"prev = {gvar}.get(lk, _MISS)")
            em.line("if prev is _MISS:")
            with em.indent():
                em.line(f"{gvar}[lk] = rv")
            em.line("elif prev != rv:")
            with em.indent():
                em.line(
                    "raise FunctionalDependencyError("
                    '"update with pattern %r would merge tuples into conflicting '
                    f'values for %s" % (pattern, {_fd_text(fd)!r}))'
                )
        em.line(f"for lk, rv in {gvar}.items():")
        with em.indent():
            if len(lhs) == 1:
                lhs_vals = {lhs[0]: "lk"}
            else:
                lhs_vals = {c: f"lk[{j}]" for j, c in enumerate(lhs)}
            em.line(f"for _x in {self._fd_query_call(fd.lhs, lambda c: lhs_vals[c])}:")
            with em.indent():
                em.line("if _x in vic:")
                with em.indent():
                    em.line("continue")
                em.line(f"if {row_proj('_x', rhs)} != rv:")
                with em.indent():
                    em.line(
                        "raise FunctionalDependencyError("
                        '"update with pattern %r and changes %r would violate '
                        f'%s" % (pattern, changes, {_fd_text(fd)!r}))'
                    )

    def _emit_update_in_place(self) -> None:
        em = self.em
        # One walk per distinct leaf holding an updatable column; a shared
        # leaf is rewritten once through its registry cell (every parent
        # container already points at the same object).
        resid_paths: List[Path] = []
        seen_leaves: set = set()
        for path in self.paths:
            if not (frozenset(path.leaf.unit_columns) & self.resid_safe):
                continue
            if id(path.leaf) in seen_leaves:
                continue
            seen_leaves.add(id(path.leaf))
            resid_paths.append(path)
        self._reset_symbols()
        with em.block("def _update_in_place(self, p, ch):"):
            em.docstring(
                "In-place update of residual-only columns.  Every changed "
                "column lives outside all container keys and is FD-inert "
                "(_RS membership), so victims keep their position in every "
                "container and each relevant leaf residual is rewritten "
                "where it lives — no remove, no re-insert, no FD re-check. "
                "Journalled like the other mutators for strong exception "
                "safety."
            )
            em.line("en = _C.enabled")
            em.line("_fa = _F.active")
            em.line("victims = list(self._query_rows(p))")
            em.line("if not victims:")
            with em.indent():
                em.line("return")
            for k, path in enumerate(resid_paths):
                touched = sorted(frozenset(path.leaf.unit_columns) & self.resid_safe)
                cond = " or ".join(f"{c!r} in ch" for c in touched)
                em.line(f"t{k} = {cond}")
            em.line("_j = []")
            em.line("try:")
            with em.indent():
                em.line("for r in victims:")
                with em.indent():
                    em.line(f"{self._row_unpack()} = r")
                    for c in sorted(self.resid_safe):
                        i = self.col_index[c]
                        em.line(f"w{i} = ch.get({c!r}, v{i})")
                    em.fault_check("codegen.update.in_place", guard="_fa")
                    for k, path in enumerate(resid_paths):
                        em.line(f"if t{k}:")
                        with em.indent():
                            self._emit_resid_write(path)
            em.line("except BaseException:")
            with em.indent():
                em.line("_undo(_j)")
                em.line("raise")
        em.line()

    def _emit_resid_write(self, path: Path) -> None:
        """Emit the walk rewriting one leaf's residual in place for the
        victim bound in ``v<i>``/``w<i>`` locals.  Shared leaves resolve
        through the registry (the record pointer, uncounted as everywhere
        else); otherwise the walk starts at the deepest shared ancestor's
        cell when there is one, and pays the same per-container probe costs
        a lookup would."""
        em = self.em
        leaf = path.leaf

        def val_new(c: str) -> str:
            if c in self.resid_safe:
                return f"w{self.col_index[c]}"
            return self._vexpr(c)

        residual = self._residual_expr(leaf, val_new)
        if self._is_shared(leaf):
            j = self.shared_index[id(leaf)]
            cvar = self._gensym("u")
            em.line(f"{cvar} = self._s{j}.get({self._bk_expr(leaf, self._vexpr)})")
            em.line(f"if {cvar} is not None:")
            with em.indent():
                em.line(f"_j.append((2, {cvar}, {cvar}[0]))")
                em.line(f"{cvar}[0] = {residual}")
            return
        if not path.edges:  # unit root: the instance is the residual.
            em.line("_j.append((5, self, self._root))")
            em.line(f"self._root = {residual}")
            return
        deepest = -1
        for d in range(len(path.edges) - 1):
            if self._is_shared(path.edges[d].child):
                deepest = d
        opened = 0
        if deepest >= 0:
            shared_node = path.edges[deepest].child
            j = self.shared_index[id(shared_node)]
            svar = self._gensym("n")
            em.line(f"{svar} = self._s{j}.get({self._bk_expr(shared_node, self._vexpr)})")
            em.line(f"if {svar} is not None:")
            em.push()
            opened += 1
            current = svar
            node = shared_node
            start = deepest + 1
        else:
            current = "self._root"
            node = self.decomposition.root
            start = 0
        for d in range(start, len(path.edges)):
            e = path.edges[d]
            idx = path.edge_indices[d]
            cvar = self._gensym("c")
            em.line(f"{cvar} = {self._container_expr(node, current, idx)}")
            kexpr = self._key_expr(e, self._vexpr)
            if d == len(path.edges) - 1:
                if _strategy(e) == "list":
                    em.line(f"_l_put_j({cvar}, {kexpr}, {residual}, _j)")
                else:
                    self._emit_access_count(e, cvar)
                    em.line(f"_j.append((0, {cvar}, {kexpr}, {cvar}.get({kexpr}, _MISS)))")
                    em.line(f"{cvar}[{kexpr}] = {residual}")
            else:
                nvar = self._gensym("n")
                self._emit_get(e, nvar, cvar, kexpr)
                em.line(f"if {nvar} is not _MISS:")
                em.push()
                opened += 1
                node = e.child
                current = nvar
        em.pop(opened)

    def _emit_query(self) -> None:
        em = self.em
        with em.block("def query(self, pattern=None, output=None):"):
            # Fast path for Tuple patterns (the common caller): the sorted
            # _items pairs give the dispatch mask and the positional
            # arguments directly — no dict build, no frozenset, no
            # per-column loads inside the generator.
            em.line("if type(pattern) is Tuple:")
            with em.indent():
                em.line("items = pattern._items")
                # One dict probe on the sorted column tuple replaces the
                # per-column mask loop after the first sighting of each
                # pattern shape; 0 marks shapes served by the fallback.
                em.line("h = _VCOLS.get(tuple(map(_ig0, items)))")
                em.line("if h is None:")
                with em.indent():
                    em.line("m = 0")
                    em.line("for c, _ in items:")
                    with em.indent():
                        em.line("b = _COLBIT.get(c)")
                        em.line("if b is None:")
                        with em.indent():
                            em.line(
                                "_SPEC.check_partial_tuple(pattern, role='query pattern')"
                            )
                        em.line("m |= b")
                    em.line("h = _VPLANS.get(m, 0)")
                    em.line("_VCOLS[tuple(map(_ig0, items))] = h")
                em.line("if h:")
                with em.indent():
                    em.line("rows = h(self, *map(_ig1, items))")
                em.line("else:")
                with em.indent():
                    em.line("rows = self._q_fallback(dict(items))")
            em.line("else:")
            with em.indent():
                em.line("p = self._pattern_dict(pattern, 'query pattern')")
                em.line("rows = self._query_rows(p)")
            em.line("if output is None:")
            with em.indent():
                # Interned full-row boundary: one dict probe per row in the
                # steady state instead of a Tuple construction.  The memo is
                # a pure value->Tuple map, so entries for rows no longer
                # stored are merely unused, never wrong.  map() keeps the
                # all-hits path entirely in C; the Python loop only runs to
                # fill cache misses.
                em.line("if type(rows) is not list:")
                with em.indent():
                    em.line("rows = list(rows)")
                em.line("tc = self._t_cache")
                em.line("res = list(map(tc.get, rows))")
                em.line("if None in res:")
                with em.indent():
                    em.line("if len(tc) > 131072:")
                    with em.indent():
                        em.line("tc.clear()")
                    em.line("mk = Tuple.from_sorted_items")
                    em.line("for i, t in enumerate(res):")
                    with em.indent():
                        em.line("if t is None:")
                        with em.indent():
                            em.line("r = rows[i]")
                            em.line("t = mk(zip(_COLS, r))")
                            em.line("tc[r] = t")
                            em.line("res[i] = t")
                em.line("return res")
            # The projection cache is keyed by the raw ``output`` value (when
            # hashable) so repeat queries skip column validation entirely;
            # only values that already passed validation are ever cached.
            em.line("try:")
            with em.indent():
                em.line("cached = self._proj_cache.get(output)")
            em.line("except TypeError:")
            with em.indent():
                em.line("cached = None")
            em.line("if cached is None:")
            with em.indent():
                em.line("wanted = _SPEC.check_output_columns(output)")
                em.line("cached = self._proj_cache.get(wanted)")
                em.line("if cached is None:")
                with em.indent():
                    em.line("out_cols = tuple(sorted(wanted))")
                    em.line("idxs = tuple(_COLINDEX[c] for c in out_cols)")
                    em.line("getter = _itemgetter(*idxs) if len(idxs) > 1 else None")
                    em.line("cached = (out_cols, idxs, getter, {})")
                    em.line("self._proj_cache[wanted] = cached")
                em.line("try:")
                with em.indent():
                    em.line("self._proj_cache[output] = cached")
                em.line("except TypeError:")
                with em.indent():
                    em.line("pass")
            em.line("out_cols, idxs, getter, interned = cached")
            em.line("if getter is not None:")
            with em.indent():
                em.line("seen = set(map(getter, rows))")
            em.line("else:")
            with em.indent():
                em.line("i0 = idxs[0]")
                em.line("seen = {(r[i0],) for r in rows}")
            em.line("mk = Tuple.from_sorted_items")
            em.line("res = []")
            em.line("ap = res.append")
            em.line("for vals in seen:")
            with em.indent():
                em.line("t = interned.get(vals)")
                em.line("if t is None:")
                with em.indent():
                    em.line("t = mk(zip(out_cols, vals))")
                    em.line("interned[vals] = t")
                em.line("ap(t)")
            em.line("return res")
        em.line()
        with em.block("def _query_rows(self, p):"):
            em.line("if not p:")
            with em.indent():
                em.line("return self._qv_0()")
            em.line("handler = _PLANS.get(frozenset(p))")
            em.line("if handler is None:")
            with em.indent():
                em.line("return self._q_fallback(p)")
            em.line("return handler(self, p)")
        em.line()
        with em.block("def _q_fallback(self, p):"):
            em.docstring("Scan-and-filter fallback for patterns with no specialised method.")
            em.line("crit = [(_COLINDEX[c], v) for c, v in p.items()]")
            em.line("for r in self._q_0({}):")
            with em.indent():
                em.line("ok = True")
                em.line("for i, v in crit:")
                with em.indent():
                    em.line("if r[i] != v:")
                    with em.indent():
                        em.line("ok = False")
                        em.line("break")
                em.line("if ok:")
                with em.indent():
                    em.line("yield r")
        em.line()

    def _range_path(self) -> "Optional[tuple]":
        """The ``(path, root edge)`` serving ordered range scans, if any.

        Qualifies when a full-coverage path starts with an **ordered**
        single-column root edge — the layouts whose modelled structure (a
        balanced tree) genuinely supports a bounded range descent.  Other
        layouts inherit the :class:`RelationInterface` fallback (a filtered
        full scan), keeping the counted asymptotics honest.
        """
        for path in self.paths:
            if not path.edges:  # Unit-root layout: no container to range over.
                continue
            e0 = path.edges[0]
            if (
                len(e0.key) == 1
                and e0.structure_class().ORDERED
                and path.covered == frozenset(self.cols)
            ):
                return path, e0
        return None

    def _emit_query_range(self) -> None:
        choice = self._range_path()
        if choice is None:
            return
        path, e0 = choice
        em = self.em
        col = next(iter(e0.key))
        root = self.decomposition.root
        cexpr = self._container_expr(root, "self._root", path.edge_indices[0])
        self._reset_symbols()
        with em.block("def _range_rows(self, lo, hi):"):
            em.docstring(
                f"Rows with {col!r} in [lo, hi], ascending (group ties by "
                "row sort key).  Charged as the modelled tree's bounded "
                "descent — the boundary probes plus one in-order successor "
                "hop per in-range entry — like every tree-strategy probe "
                "is charged the modelled log2(n), not the dict's O(1).  "
                "Served from a sorted key snapshot rebuilt lazily when the "
                "mutation stamp moved (bisected bounds, physical O(log n + "
                "k) between mutations); the charges are identical either "
                "way — the cache is a constant-factor device, not a "
                "counted-cost one."
            )
            em.line("en = _C.enabled")
            em.line(f"c0 = {cexpr}")
            em.line("if en:")
            with em.indent():
                em.line("_C.scans += 1")
                em.line("_C.accesses += max(1, len(c0).bit_length())")
            em.line("if self._rord_mut != self._mut:")
            with em.indent():
                # Repair the snapshot from the key-set diff when few keys
                # moved (the common churn shape: remove + re-insert of the
                # same keys leaves the diff empty); rebuild wholesale only
                # when the diff is a sizeable fraction of the container.
                em.line("_ck = set(c0)")
                em.line("_old = self._rset")
                em.line("if _old is None or len(_ck ^ _old) * 8 > len(_ck):")
                with em.indent():
                    em.line("_o = [(_VSK(_k), _k) for _k in _ck]")
                    em.line("_o.sort(key=_itemgetter(0))")
                    em.line("self._rord = _o")
                    em.line("self._rkeys = [_p[0] for _p in _o]")
                em.line("else:")
                with em.indent():
                    em.line("_o = self._rord")
                    em.line("_ks = self._rkeys")
                    em.line("for _k in _old - _ck:")
                    with em.indent():
                        em.line("_ix = _bl(_ks, _VSK(_k))")
                        em.line("while _o[_ix][1] != _k:")
                        with em.indent():
                            em.line("_ix += 1")
                        em.line("del _o[_ix]")
                        em.line("del _ks[_ix]")
                    em.line("for _k in _ck - _old:")
                    with em.indent():
                        em.line("_kk = _VSK(_k)")
                        em.line("_ix = _bl(_ks, _kk)")
                        em.line("_o.insert(_ix, (_kk, _k))")
                        em.line("_ks.insert(_ix, _kk)")
                em.line("self._rset = _ck")
                em.line("self._rord_mut = self._mut")
            em.line("_o = self._rord")
            em.line("_i = _bl(self._rkeys, _VSK(lo)) if lo is not None else 0")
            em.line("_z = _br(self._rkeys, _VSK(hi)) if hi is not None else len(_o)")
            em.line("if _z < _i:")
            with em.indent():
                em.line("_z = _i")
            em.line("if en: _C.accesses += _z - _i")
            em.line("out = []")
            em.line("for _x in range(_i, _z):")
            em.push()
            em.line("k0 = _o[_x][1]")
            em.line("n0 = c0[k0]")
            em.line("grp = []")
            em.line("ap = grp.append")
            steps = [
                ScanStep(e, i)
                for e, i in zip(path.edges[1:], path.edge_indices[1:])
            ]
            exprs, opened = self._emit_chain(
                path, steps, {col: "k0"}, in_loop=True, start=(e0.child, "n0")
            )
            em.line("ap(" + self._tuple_literal([exprs[c] for c in self.cols]) + ")")
            em.pop(opened)
            em.line("if len(grp) > 1:")
            em.push()
            em.line("grp.sort(key=_row_key)")
            em.pop(1)
            em.line("out.extend(grp)")
            em.pop(1)
            em.line("return out")
        em.line()
        with em.block("def query_range(self, column, lo=None, hi=None):"):
            em.docstring(
                f"Ordered range scan over {col!r} served by the "
                f"{e0.structure!r} root index; other columns take the "
                "interface's filtered-scan fallback."
            )
            em.line(f"if column != {col!r}:")
            with em.indent():
                em.line("return RelationInterface.query_range(self, column, lo, hi)")
            em.line("rows = self._range_rows(lo, hi)")
            em.line("tc = self._t_cache")
            em.line("mk = Tuple.from_sorted_items")
            em.line("res = []")
            em.line("ap = res.append")
            em.line("for r in rows:")
            with em.indent():
                em.line("t = tc.get(r)")
                em.line("if t is None:")
                with em.indent():
                    em.line("t = mk(zip(_COLS, r))")
                    em.line("tc[r] = t")
                em.line("ap(t)")
            em.line("return res")
        em.line()

    def _emit_inspection(self) -> None:
        em = self.em
        with em.block("def to_relation(self):"):
            em.line(
                "return Relation(_COLS, "
                "[Tuple.from_sorted_items(zip(_COLS, r)) for r in self._rows_path_0()])"
            )
        em.line()
        with em.block("def checkpoint(self):"):
            em.line("return self.to_relation()")
        em.line()
        with em.block("def check_well_formed(self):"):
            em.docstring(
                "Branch agreement and count consistency (the compiled "
                "counterpart of Figure 5's instance well-formedness)."
            )
            em.line("rows = set(self._rows_path_0())")
            for index in range(1, len(self.paths)):
                path = self.paths[index]
                ovar = f"other{index}"
                em.line(f"{ovar} = set(self._rows_path_{index}())")
                if path.covered == frozenset(self.cols):
                    expected = "rows"
                else:
                    # A key-projection branch holds the projection of the
                    # primary branch's rows onto its own columns.
                    proj = self._tuple_literal(
                        [f"r[{self.col_index[c]}]" for c in sorted(path.covered)]
                    )
                    expected = f"{{{proj} for r in rows}}"
                em.line(f"if {ovar} != {expected}:")
                with em.indent():
                    em.line(
                        "raise WellFormednessError("
                        f'"branches 0 and {index} disagree on %d row(s)" '
                        f"% len({ovar} ^ {expected}))"
                    )
            em.line("if len(rows) != self._count:")
            with em.indent():
                em.line(
                    "raise WellFormednessError("
                    '"stored rows (%d) disagree with the maintained count (%d)" '
                    "% (len(rows), self._count))"
                )
            self._emit_sharing_checks()
        em.line()
        with em.block("def __len__(self):"):
            em.line("return self._count")
        em.line()
        with em.block("def __repr__(self):"):
            em.line(
                'return "%s(size=%d)" % (type(self).__name__, self._count)'
            )
        em.line()

    def _routes_to(self, target: DecompNode) -> List[List[tuple]]:
        """Every route (list of ``(source node, edge, edge index)`` steps)
        from the root to *target*, in deterministic pre-order."""
        routes: List[List[tuple]] = []

        def walk(node: DecompNode, acc: List[tuple]) -> None:
            for idx, e in enumerate(node.edges):
                step = acc + [(node, e, idx)]
                if e.child is target:
                    routes.append(step)
                if not e.child.is_unit:
                    walk(e.child, step)

        walk(self.decomposition.root, [])
        return routes

    def _emit_sharing_checks(self) -> None:
        """The compiled sharing invariant: each shared node's registry must
        hold exactly the bindings the rows imply, and every parent route
        must reach the registry's own cell object (identity, not equality)."""
        em = self.em
        for j, node in enumerate(self.shared_nodes):
            bound_cols = self.shared_bound_cols[id(node)]
            bpos = {c: i for i, c in enumerate(bound_cols)}
            proj = self._tuple_literal([f"r[{self.col_index[c]}]" for c in bound_cols])
            em.line(f"if set(self._s{j}) != {{{proj} for r in rows}}:")
            with em.indent():
                em.line(
                    "raise WellFormednessError("
                    f'"shared node registry {j} disagrees with the stored rows")'
                )
            for route_index, route in enumerate(self._routes_to(node)):
                em.line(f"for _b, _cell in self._s{j}.items():")
                with em.indent():
                    current = "self._root"
                    for source, e, idx in route:
                        cexpr = self._container_expr(source, current, idx)
                        key_cols = sorted(e.key)
                        if len(key_cols) == 1:
                            kexpr = f"_b[{bpos[key_cols[0]]}]"
                        else:
                            kexpr = self._tuple_literal(
                                [f"_b[{bpos[c]}]" for c in key_cols]
                            )
                        wvar = self._gensym("w")
                        if _strategy(e) == "list":
                            em.line(f"{wvar} = _l_get({cexpr}, {kexpr})")
                        else:
                            em.line(f"{wvar} = {cexpr}.get({kexpr}, _MISS)")
                        em.line(f"if {wvar} is _MISS:")
                        with em.indent():
                            em.line(
                                "raise WellFormednessError("
                                f'"shared node {j} binding %r is missing from '
                                f'parent route {route_index}" % (_b,))'
                            )
                        current = wvar
                    em.line(f"if {current} is not _cell:")
                    with em.indent():
                        em.line(
                            "raise WellFormednessError("
                            f'"sharing invariant violated: parent route '
                            f'{route_index} of shared node {j} holds a different '
                            f'object for binding %r" % (_b,))'
                        )

    def _emit_dispatch(
        self,
        subsets: Sequence[FrozenSet[str]],
        method_names: Dict[FrozenSet[str], str],
        rm_names: Dict[FrozenSet[str], str],
    ) -> None:
        em = self.em
        em.line()
        em.line("_PLANS = {")
        with em.indent():
            for subset in subsets:
                if subset:
                    literal = "frozenset((" + ", ".join(repr(c) for c in sorted(subset)) + ",))"
                else:
                    literal = "frozenset()"
                em.line(f"{literal}: {self.class_name}.{method_names[subset]},")
        em.line("}")
        # The pre-bound positional dispatch: an int bitmask (computed from a
        # pattern's columns in one pass) selects the specialised generator,
        # resolved once here at class-creation time.
        em.line("_VPLANS = {")
        with em.indent():
            for subset in subsets:
                em.line(f"{self._mask(subset)}: {self.class_name}._qv_{self._mask(subset)},")
        em.line("}")
        # Pattern-shape memo for query(): sorted column tuple -> resolved
        # generator (0 = fallback shapes), filled on first sighting.
        em.line("_VCOLS = {}")
        if rm_names:
            em.line("_RM = {")
            with em.indent():
                for subset in self.batch_subsets:
                    if subset:
                        literal = (
                            "frozenset((" + ", ".join(repr(c) for c in sorted(subset)) + ",))"
                        )
                    else:
                        literal = "frozenset()"
                    em.line(f"{literal}: {self.class_name}.{rm_names[subset]},")
            em.line("}")


def _fd_text(fd) -> str:
    return repr(fd)


def generate_source(
    spec: RelationSpec,
    decomposition: Union[Decomposition, str],
    class_name: Optional[str] = None,
    enforce_fds_default: bool = True,
    sizes: Optional[Mapping[MapEdge, float]] = None,
) -> str:
    """Generate the source of a standalone compiled relation class.

    The decomposition must be adequate for *spec*
    (:class:`~repro.core.errors.AdequacyError` otherwise).  The returned
    module source depends only on stable ``repro`` entry points and can be
    written to a file, imported, diffed, or inspected.
    ``enforce_fds_default`` becomes the generated constructor's default FD
    mode — the autotuner compiles winners tuned on FD-off traces with an
    FD-off default, so the class runs its own workload out of the box.
    *sizes* are optional per-edge container-size estimates the compile-time
    plan table is ranked against (the autotuner passes its trace-derived
    estimates, so workload-profitable join plans are compiled in).  They
    are keyed by :class:`MapEdge` *identity*, so they only make sense for a
    :class:`Decomposition` the caller already holds — combining them with a
    layout string (which would be re-parsed into fresh edge objects, making
    every size lookup miss silently) is rejected.
    """
    return generate_source_and_meta(
        spec, decomposition, class_name, enforce_fds_default, sizes
    )[0]


def generate_source_and_meta(
    spec: RelationSpec,
    decomposition: Union[Decomposition, str],
    class_name: Optional[str] = None,
    enforce_fds_default: bool = True,
    sizes: Optional[Mapping[MapEdge, float]] = None,
) -> "tuple[str, Dict[str, object]]":
    """Like :func:`generate_source`, also returning the compiler's metadata.

    The metadata dict records what the compiler *intended* to emit — the
    dispatch masks it planned, the fault sites it placed, the plan behind
    every specialised query method — and is what
    :mod:`repro.analysis.emitted` cross-checks the emitted source against
    (and what :func:`compile_relation` attaches as ``__repro_meta__``).
    """
    if isinstance(decomposition, str):
        if sizes is not None:
            raise DecompositionError(
                "sizes are keyed by MapEdge identity and cannot be combined "
                "with a layout string (re-parsing would create fresh edge "
                "objects and every size estimate would silently miss); parse "
                "the layout first and pass the Decomposition whose edges the "
                "sizes were computed for"
            )
        decomposition = parse_decomposition(decomposition)
    class_name = class_name or _default_class_name(decomposition.name)
    compiler = _RelationCompiler(
        spec, decomposition, class_name, enforce_fds_default, sizes
    )
    source = compiler.generate()
    return source, compiler.meta


#: Generated-class cache: ``compile_relation`` is pure in
#: ``(spec, canonical shape, class name, FD default)``, so repeated
#: compilations — autotuner replays, benchmark reruns, repeated
#: ``synthesize`` calls — reuse the class instead of re-generating and
#: re-``exec``-ing the module.  Structure aliases collapse (``btree`` and
#: ``avl`` layouts share one entry) because the canonical shape does.
_CLASS_CACHE: Dict[tuple, type] = {}
_CACHE_STATS = {"hits": 0, "misses": 0}
#: Guards ``_CLASS_CACHE`` / ``_CACHE_STATS``: a ``LiveRelation`` re-tune can
#: compile a new backing class on one thread while another thread calls
#: ``clear_codegen_cache()`` or ``codegen_cache_stats()``.  Generation and
#: ``exec`` of the module happen *outside* the lock (they are slow and touch
#: no shared state); the insert re-checks the key so concurrent same-key
#: compiles still resolve to a single shared class object.
_CACHE_LOCK = threading.RLock()


def _cache_key(
    spec: RelationSpec,
    decomposition: Decomposition,
    class_name: str,
    enforce_fds_default: bool,
    sizes: Optional[Mapping[MapEdge, float]],
) -> tuple:
    fd_key = tuple(
        sorted((tuple(sorted(fd.lhs)), tuple(sorted(fd.rhs))) for fd in spec.fds)
    )
    shape = format_decomposition(decomposition.root, canonical_structure_name)
    if sizes is None:
        size_key: tuple = ()
    else:
        # Per-edge size classes in deterministic pre-order: two compiles
        # whose size estimates bucket identically share a plan table.
        size_key = tuple(
            size_class(sizes.get(e, 0.0))
            for node in decomposition.nodes()
            for e in node.edges
        )
    return (
        tuple(sorted(spec.columns)),
        fd_key,
        spec.name,
        shape,
        class_name,
        enforce_fds_default,
        size_key,
    )


def codegen_cache_stats() -> Dict[str, int]:
    """Hit/miss/size counters of the generated-class cache (test hook)."""
    with _CACHE_LOCK:
        return {
            "hits": _CACHE_STATS["hits"],
            "misses": _CACHE_STATS["misses"],
            "size": len(_CLASS_CACHE),
        }


def clear_codegen_cache() -> None:
    """Drop every cached generated class and reset the hit/miss counters.

    Thread-safe: safe to call while another thread is inside
    :func:`compile_relation` (e.g. a ``LiveRelation`` hot-swap compiling its
    new backing class) — the in-flight compile simply re-registers its class
    in the now-empty cache.
    """
    with _CACHE_LOCK:
        _CLASS_CACHE.clear()
        _CACHE_STATS["hits"] = 0
        _CACHE_STATS["misses"] = 0


def compile_relation(
    spec: RelationSpec,
    decomposition: Union[Decomposition, str],
    class_name: Optional[str] = None,
    enforce_fds_default: bool = True,
    sizes: Optional[Mapping[MapEdge, float]] = None,
) -> type:
    """Compile *decomposition* for *spec* into a relation class.

    The returned class implements
    :class:`~repro.core.interface.RelationInterface` and is interchangeable
    with :class:`~repro.core.reference.ReferenceRelation` and
    :class:`~repro.decomposition.relation.DecomposedRelation`; construct
    instances with ``cls(enforce_fds=True)``.  The generated module source
    is attached as ``cls.__repro_source__`` (``cls.__source__`` remains as
    an alias), the compiler's metadata as ``cls.__repro_meta__``, the
    originating objects as ``cls.SPEC`` and ``cls.DECOMPOSITION``, and the
    source is registered with :mod:`linecache` so tracebacks from emitted
    code show real generated lines.

    Classes are cached by ``(spec, canonical_shape(decomposition),
    class name, FD default, size classes)`` — a repeated compilation
    returns the same class object (see :func:`codegen_cache_stats`), with
    ``SPEC`` and ``DECOMPOSITION`` refreshed to the caller's objects
    (shape-equal by construction).  Because the class is shared, metadata
    attributes callers hang on it — including ``TUNING`` from
    :func:`repro.autotuner.synthesize` — always reflect the **most
    recent** compile; the generated behaviour itself is identical for
    every key-equal call.  As with :func:`generate_source`, *sizes* are
    rejected when the decomposition is given as a string.
    """
    if isinstance(decomposition, str):
        if sizes is not None:
            raise DecompositionError(
                "sizes are keyed by MapEdge identity and cannot be combined "
                "with a layout string; parse the layout first and pass the "
                "Decomposition whose edges the sizes were computed for"
            )
        decomposition = parse_decomposition(decomposition)
    class_name = class_name or _default_class_name(decomposition.name)
    key = _cache_key(spec, decomposition, class_name, enforce_fds_default, sizes)
    with _CACHE_LOCK:
        cached = _CLASS_CACHE.get(key)
        if cached is not None:
            _CACHE_STATS["hits"] += 1
            cached.SPEC = spec  # type: ignore[attr-defined]
            cached.DECOMPOSITION = decomposition  # type: ignore[attr-defined]
            return cached
        _CACHE_STATS["misses"] += 1
    # Generate and exec outside the lock: slow, and touches no shared state.
    source, meta = generate_source_and_meta(
        spec, decomposition, class_name, enforce_fds_default, sizes
    )
    module_name = f"repro.codegen.generated_{next(_generated_modules)}"
    filename = f"<{module_name}>"
    meta["module"] = module_name
    meta["filename"] = filename
    namespace: Dict[str, object] = {"__name__": module_name}
    exec(compile(source, filename, "exec"), namespace)
    cls = namespace[class_name]
    cls.__source__ = source  # type: ignore[attr-defined]
    cls.__repro_source__ = source  # type: ignore[attr-defined]
    cls.__repro_meta__ = meta  # type: ignore[attr-defined]
    cls.SPEC = spec  # type: ignore[attr-defined]
    cls.DECOMPOSITION = decomposition  # type: ignore[attr-defined]
    # Register the generated module with linecache so tracebacks (and
    # inspect.getsource) raised inside emitted mutators show the real
    # generated lines instead of blank ``<repro.codegen.generated_N>``
    # frames.  A ``None`` mtime marks the entry immune to
    # ``linecache.checkcache`` eviction (the idiom IPython uses for cells).
    linecache.cache[filename] = (len(source), None, source.splitlines(True), filename)
    with _CACHE_LOCK:
        # Re-check: a concurrent same-key compile may have won the race;
        # adopt its class so key-equal calls keep returning one object.
        winner = _CLASS_CACHE.setdefault(key, cls)
        if winner is not cls:
            winner.SPEC = spec  # type: ignore[attr-defined]
            winner.DECOMPOSITION = decomposition  # type: ignore[attr-defined]
    return winner  # type: ignore[return-value]
