"""The compiled representation tier (the paper's code generator, in Python).

RELC's headline result is that *synthesized* representations are compiled —
the C++ generator emits specialised member functions for each decomposition.
This package is the reproduction's equivalent on top of the Python stack:

* :func:`generate_source` — emit the source of a standalone relation class
  specialised to one ``(RelationSpec, Decomposition)`` pair: unrolled
  insert/remove paths over plain dicts/lists, and per-pattern query methods
  generated from query plans behind a compile-time dispatch table;
* :func:`compile_relation` — generate, ``exec`` and return the class, ready
  to instantiate and use interchangeably with
  :class:`~repro.core.reference.ReferenceRelation` and
  :class:`~repro.decomposition.relation.DecomposedRelation`.

The three tiers trade generality for speed:

=============  ==================================  =========================
Tier           Implementation                      Cost per operation
=============  ==================================  =========================
reference      set of tuples, defining equations   O(n) scans everywhere
interpreted    ``DecomposedRelation``              plan cache + DAG walking
compiled       ``compile_relation(spec, d)()``     straight-line specialised
=============  ==================================  =========================

``benchmarks/`` drives all three through identical traces and records the
resulting throughput and operation counts in ``BENCH_5.json``.
"""

from .compiler import (
    MAX_ENUMERATED_COLUMNS,
    clear_codegen_cache,
    codegen_cache_stats,
    compile_relation,
    generate_source,
    generate_source_and_meta,
)

__all__ = [
    "MAX_ENUMERATED_COLUMNS",
    "clear_codegen_cache",
    "codegen_cache_stats",
    "compile_relation",
    "generate_source",
    "generate_source_and_meta",
]
