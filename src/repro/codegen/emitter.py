"""A tiny indentation-aware source emitter used by the relation compiler.

The compiler builds Python source line by line while walking the
decomposition DAG; :class:`Emitter` keeps the indentation bookkeeping out of
the generation logic so the emission code reads like the code it produces.
"""

from __future__ import annotations

from contextlib import contextmanager
from typing import Iterator, List, Set

__all__ = ["Emitter"]

INDENT = "    "


class Emitter:
    """Accumulates source lines with managed indentation."""

    def __init__(self) -> None:
        self._lines: List[str] = []
        self._depth = 0
        #: Every fault site named by a :meth:`fault_check` emitted through
        #: this emitter — the ground truth for the static verifier's
        #: site round-trip check (``repro.analysis``), recorded in the
        #: compiled class's ``__repro_meta__``.
        self.fault_sites: Set[str] = set()

    def line(self, text: str = "") -> None:
        """Append one line at the current indentation (blank lines unindented)."""
        if text:
            self._lines.append(INDENT * self._depth + text)
        else:
            self._lines.append("")

    def lines(self, *texts: str) -> None:
        for text in texts:
            self.line(text)

    @contextmanager
    def indent(self) -> Iterator[None]:
        """Indent one level for the duration of the ``with`` block."""
        self._depth += 1
        try:
            yield
        finally:
            self._depth -= 1

    def push(self) -> None:
        """Indent one level until a matching :meth:`pop`.

        Used when the emitted structure (e.g. nested scan loops along a
        query plan) outlives any single Python ``with`` block in the
        generator itself.
        """
        self._depth += 1

    def pop(self, levels: int = 1) -> None:
        """Undo *levels* :meth:`push` calls."""
        self._depth -= levels

    def block(self, header: str) -> "_Block":
        """Emit *header* and return a context manager indenting its body."""
        self.line(header)
        return _Block(self)

    def fault_check(self, site: str, injector: str = "_F", guard: str = "") -> None:
        """Emit a guarded fault-injection probe for *site*.

        Two lines — ``if <injector>.active: <injector>.check(<site>)`` — the
        same inert-by-default shape the hand-written tiers use: one
        attribute read when no plan is armed, and never a counted access.
        A *guard* expression replaces the ``.active`` attribute read when
        the caller has already hoisted it into a local (safe because
        ``check`` is a no-op for any site other than the armed one, and a
        fault can only arm or disarm between top-level operations).
        """
        self.fault_sites.add(site)
        self.line(f"if {guard or injector + '.active'}:")
        with self.indent():
            self.line(f"{injector}.check({site!r})")

    def docstring(self, text: str) -> None:
        """Emit *text* as a (multi-line safe) docstring at current depth."""
        safe = text.replace("\\", "\\\\").replace('"""', '\\"\\"\\"')
        if "\n" in safe or safe.endswith('"'):
            self.line('"""' + safe)
            self.line('"""')
        else:
            self.line('"""' + safe + '"""')

    def source(self) -> str:
        return "\n".join(self._lines) + "\n"


class _Block:
    def __init__(self, emitter: Emitter) -> None:
        self._emitter = emitter

    def __enter__(self) -> Emitter:
        self._emitter._depth += 1
        return self._emitter

    def __exit__(self, *exc_info: object) -> None:
        self._emitter._depth -= 1
