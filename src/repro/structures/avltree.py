"""Ordered map implemented as an AVL tree (``btree``).

Mirrors ``std::map`` / ``boost::intrusive::set`` in the paper's container
library: a balanced binary search tree with O(log n) lookup, insertion and
removal, and in-order (key-sorted) iteration.  Keys are ordered by
``Tuple.sort_key``, which totally orders tuples with identical columns.
"""

from __future__ import annotations

from typing import Any, Iterator, Optional, Tuple as PyTuple

from ..core.tuples import Tuple
from ..faults import FAULTS
from .base import COUNTER, MISSING, AssociativeContainer, log2_cost

__all__ = ["AVLTreeMap"]


class _AVLNode:
    """An AVL tree node holding one key/value entry."""

    __slots__ = ("key", "sort_key", "value", "left", "right", "height")

    def __init__(self, key: Tuple, value: Any):
        self.key = key
        self.sort_key = key.sort_key()
        self.value = value
        self.left: Optional["_AVLNode"] = None
        self.right: Optional["_AVLNode"] = None
        self.height = 1


def _height(node: Optional[_AVLNode]) -> int:
    return node.height if node is not None else 0


def _update_height(node: _AVLNode) -> None:
    node.height = 1 + max(_height(node.left), _height(node.right))


def _balance_factor(node: _AVLNode) -> int:
    return _height(node.left) - _height(node.right)


def _rotate_right(node: _AVLNode) -> _AVLNode:
    pivot = node.left
    assert pivot is not None
    node.left = pivot.right
    pivot.right = node
    _update_height(node)
    _update_height(pivot)
    return pivot


def _rotate_left(node: _AVLNode) -> _AVLNode:
    pivot = node.right
    assert pivot is not None
    node.right = pivot.left
    pivot.left = node
    _update_height(node)
    _update_height(pivot)
    return pivot


def _rebalance(node: _AVLNode) -> _AVLNode:
    _update_height(node)
    balance = _balance_factor(node)
    if balance > 1:
        assert node.left is not None
        if _balance_factor(node.left) < 0:
            node.left = _rotate_left(node.left)
        return _rotate_right(node)
    if balance < -1:
        assert node.right is not None
        if _balance_factor(node.right) > 0:
            node.right = _rotate_right(node.right)
        return _rotate_left(node)
    return node


class AVLTreeMap(AssociativeContainer):
    """Balanced ordered map keyed by tuple sort order.

    Registered as ``"avl"`` (what the container actually is); the historical
    name ``"btree"`` — the paper's generic "balanced tree" — remains usable
    everywhere as a registry alias, so existing decomposition strings keep
    parsing.
    """

    NAME = "avl"
    ORDERED = True
    INTRUSIVE = False
    CODEGEN_STRATEGY = "tree"

    __slots__ = ("_root", "_size")

    def __init__(self) -> None:
        self._root: Optional[_AVLNode] = None
        self._size = 0

    @classmethod
    def estimate_accesses(cls, n: float) -> float:
        return log2_cost(n)

    # -- interface ---------------------------------------------------------------

    def insert(self, key: Tuple, value: Any) -> None:
        if FAULTS.active:
            FAULTS.check("structures.avl.insert")
        COUNTER.count_insert()
        self._root = self._insert(self._root, key, key.sort_key(), value)

    def _insert(self, node: Optional[_AVLNode], key: Tuple, sort_key: PyTuple, value: Any) -> _AVLNode:
        if node is None:
            COUNTER.count_allocation()
            self._size += 1
            return _AVLNode(key, value)
        COUNTER.count_access()
        if sort_key == node.sort_key and key == node.key:
            node.value = value
            return node
        if sort_key < node.sort_key or (sort_key == node.sort_key and repr(key) < repr(node.key)):
            node.left = self._insert(node.left, key, sort_key, value)
        else:
            node.right = self._insert(node.right, key, sort_key, value)
        return _rebalance(node)

    def lookup(self, key: Tuple) -> Any:
        if FAULTS.active:
            FAULTS.check("structures.avl.lookup")
        COUNTER.count_lookup()
        sort_key = key.sort_key()
        node = self._root
        while node is not None:
            COUNTER.count_access()
            if sort_key == node.sort_key and key == node.key:
                return node.value
            if sort_key < node.sort_key or (sort_key == node.sort_key and repr(key) < repr(node.key)):
                node = node.left
            else:
                node = node.right
        return MISSING

    def remove(self, key: Tuple) -> bool:
        if FAULTS.active:
            FAULTS.check("structures.avl.remove")
        COUNTER.count_removal()
        before = self._size
        self._root = self._remove(self._root, key, key.sort_key())
        return self._size < before

    def _remove(self, node: Optional[_AVLNode], key: Tuple, sort_key: PyTuple) -> Optional[_AVLNode]:
        if node is None:
            return None
        COUNTER.count_access()
        if sort_key == node.sort_key and key == node.key:
            self._size -= 1
            if node.left is None:
                return node.right
            if node.right is None:
                return node.left
            # Replace with the in-order successor.
            successor = node.right
            while successor.left is not None:
                COUNTER.count_access()
                successor = successor.left
            node.key, node.sort_key, node.value = successor.key, successor.sort_key, successor.value
            node.right = self._remove_min(node.right)
            return _rebalance(node)
        if sort_key < node.sort_key or (sort_key == node.sort_key and repr(key) < repr(node.key)):
            node.left = self._remove(node.left, key, sort_key)
        else:
            node.right = self._remove(node.right, key, sort_key)
        return _rebalance(node)

    def _remove_min(self, node: _AVLNode) -> Optional[_AVLNode]:
        if node.left is None:
            return node.right
        node.left = self._remove_min(node.left)
        return _rebalance(node)

    def items(self) -> Iterator[PyTuple[Tuple, Any]]:
        COUNTER.count_scan()
        yield from self._in_order(self._root)

    def items_range(
        self, lo: Optional[Tuple] = None, hi: Optional[Tuple] = None
    ) -> Iterator[PyTuple[Tuple, Any]]:
        """In-order iteration over ``lo ≤ key ≤ hi`` by bounded descent.

        Subtrees wholly outside the bounds are pruned, so only the two
        boundary paths and the in-range entries are visited: O(log n + k)
        counted accesses — the operation the cost model's ``ORDERED`` flag
        promises and the generic fallback (a filtered full sort) cannot
        deliver.
        """
        COUNTER.count_scan()
        lo_key = lo.sort_key() if lo is not None else None
        hi_key = hi.sort_key() if hi is not None else None
        yield from self._range(self._root, lo_key, hi_key)

    def _range(
        self, node: Optional[_AVLNode], lo_key: Optional[PyTuple], hi_key: Optional[PyTuple]
    ) -> Iterator[PyTuple[Tuple, Any]]:
        if node is None:
            return
        COUNTER.count_access()
        above_lo = lo_key is None or lo_key <= node.sort_key
        below_hi = hi_key is None or node.sort_key <= hi_key
        if above_lo:
            yield from self._range(node.left, lo_key, hi_key)
            if below_hi:
                yield node.key, node.value
        if below_hi:
            yield from self._range(node.right, lo_key, hi_key)

    def _in_order(self, node: Optional[_AVLNode]) -> Iterator[PyTuple[Tuple, Any]]:
        if node is None:
            return
        yield from self._in_order(node.left)
        COUNTER.count_access()
        yield node.key, node.value
        yield from self._in_order(node.right)

    def __len__(self) -> int:
        return self._size

    # -- diagnostics ----------------------------------------------------------------

    def check_invariants(self) -> bool:
        """Verify the AVL balance and ordering invariants (used by tests)."""

        def check(node: Optional[_AVLNode]) -> PyTuple[bool, int]:
            if node is None:
                return True, 0
            ok_left, height_left = check(node.left)
            ok_right, height_right = check(node.right)
            balanced = abs(height_left - height_right) <= 1
            ordered = True
            if node.left is not None and node.left.sort_key > node.sort_key:
                ordered = False
            if node.right is not None and node.right.sort_key < node.sort_key:
                ordered = False
            return (
                ok_left and ok_right and balanced and ordered,
                1 + max(height_left, height_right),
            )

        ok, _ = check(self._root)
        return ok
