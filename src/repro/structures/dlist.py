"""Doubly-linked list containers (non-intrusive and intrusive).

``dlist`` is the paper's unordered doubly-linked list of key/value pairs
(``std::list`` in the C++ implementation); ``ilist`` is the intrusive
variant (``boost::intrusive::list``), where the link fields live inside the
stored value so that an entry can be unlinked in constant time given the
value alone — the property that makes shared decompositions such as
decomposition 5 of Figure 12 cheap to update.

Lookup is linear, insertion is constant time (at the head), iteration is in
insertion order.
"""

from __future__ import annotations

from typing import Any, Iterator, Optional, Tuple as PyTuple

from ..core.tuples import Tuple
from ..faults import FAULTS
from .base import COUNTER, MISSING, AssociativeContainer

__all__ = ["DListMap", "IntrusiveListMap"]


class _ListNode:
    """A doubly-linked list node holding one key/value entry."""

    __slots__ = ("key", "value", "prev", "next")

    def __init__(self, key: Tuple, value: Any):
        self.key = key
        self.value = value
        self.prev: Optional["_ListNode"] = None
        self.next: Optional["_ListNode"] = None


class DListMap(AssociativeContainer):
    """Unordered doubly-linked list of key/value pairs (``dlist``)."""

    NAME = "dlist"
    ORDERED = False
    INTRUSIVE = False
    CODEGEN_STRATEGY = "list"
    FAULT_OPS = ("insert", "insert_unique", "lookup", "remove")

    __slots__ = ("_head", "_tail", "_size")

    def __init__(self) -> None:
        self._head: Optional[_ListNode] = None
        self._tail: Optional[_ListNode] = None
        self._size = 0

    @classmethod
    def estimate_accesses(cls, n: float) -> float:
        return max(1.0, float(n) / 2.0)

    # -- internal helpers ---------------------------------------------------------

    def _find(self, key: Tuple) -> Optional[_ListNode]:
        node = self._head
        while node is not None:
            COUNTER.count_access()
            if node.key == key:
                return node
            node = node.next
        return None

    def _link_back(self, node: _ListNode) -> None:
        node.prev = self._tail
        node.next = None
        if self._tail is None:
            self._head = node
        else:
            self._tail.next = node
        self._tail = node
        self._size += 1

    def _unlink(self, node: _ListNode) -> None:
        if node.prev is None:
            self._head = node.next
        else:
            node.prev.next = node.next
        if node.next is None:
            self._tail = node.prev
        else:
            node.next.prev = node.prev
        node.prev = node.next = None
        self._size -= 1

    # -- interface ------------------------------------------------------------------

    def insert(self, key: Tuple, value: Any) -> None:
        if FAULTS.active:
            FAULTS.check("structures.dlist.insert")
        COUNTER.count_insert()
        existing = self._find(key)
        if existing is not None:
            existing.value = value
            return
        COUNTER.count_allocation()
        self._link_back(_ListNode(key, value))

    def insert_unique(self, key: Tuple, value: Any) -> None:
        """Constant-time append of a key the caller guarantees is new.

        ``push_back`` without the duplicate scan — legal exactly when the
        key is proven fresh (the shared-node registry's case), and what
        keeps the interpreted tier's access counts comparable to the
        compiled lowering, which links new shared cells in O(1)."""
        if FAULTS.active:
            FAULTS.check("structures.dlist.insert_unique")
        COUNTER.count_insert()
        COUNTER.count_allocation()
        COUNTER.count_access()
        self._link_back(_ListNode(key, value))

    def lookup(self, key: Tuple) -> Any:
        if FAULTS.active:
            FAULTS.check("structures.dlist.lookup")
        COUNTER.count_lookup()
        node = self._find(key)
        return MISSING if node is None else node.value

    def remove(self, key: Tuple) -> bool:
        if FAULTS.active:
            FAULTS.check("structures.dlist.remove")
        COUNTER.count_removal()
        node = self._find(key)
        if node is None:
            return False
        self._unlink(node)
        return True

    def items(self) -> Iterator[PyTuple[Tuple, Any]]:
        COUNTER.count_scan()
        node = self._head
        while node is not None:
            COUNTER.count_access()
            yield node.key, node.value
            node = node.next

    def __len__(self) -> int:
        return self._size


class IntrusiveListMap(AssociativeContainer):
    """Intrusive doubly-linked list (``ilist``).

    The link node for each entry is stored on the value object itself (in a
    per-container slot of the value's ``intrusive_links`` dictionary), so
    :meth:`remove_value` unlinks in O(1) without searching.  Values that lack
    an ``intrusive_links`` attribute are still accepted — the container then
    keeps the link node in a private side table, degrading removal-by-value
    to a constant-time dictionary lookup, which preserves behaviour for
    plain-value tests.
    """

    NAME = "ilist"
    ORDERED = False
    INTRUSIVE = True
    CODEGEN_STRATEGY = "intrusive"
    FAULT_OPS = ("insert", "insert_unique", "lookup", "remove", "remove_value")

    __slots__ = ("_head", "_tail", "_size", "_side_links")

    def __init__(self) -> None:
        self._head: Optional[_ListNode] = None
        self._tail: Optional[_ListNode] = None
        self._size = 0
        self._side_links: dict = {}

    @classmethod
    def estimate_accesses(cls, n: float) -> float:
        return max(1.0, float(n) / 2.0)

    @classmethod
    def unlink_cost(cls, n: float) -> float:
        # The defining property: given the value, unlinking is O(1).
        return 1.0

    # -- link bookkeeping -------------------------------------------------------------
    #
    # Values opting in to intrusive storage expose an ``intrusive_links``
    # attribute (``None`` until first linked — the container creates the
    # per-value dict on demand); everything else is tracked in a side table
    # keyed by ``id(value)``, preserving behaviour for plain values.

    def _store_link(self, value: Any, node: _ListNode) -> None:
        try:
            links = value.intrusive_links
        except AttributeError:
            self._side_links[id(value)] = node
            return
        if links is None:
            links = {}
            value.intrusive_links = links
        links[id(self)] = node

    def _load_link(self, value: Any) -> Optional[_ListNode]:
        try:
            links = value.intrusive_links
        except AttributeError:
            return self._side_links.get(id(value))
        if links is None:
            return None
        return links.get(id(self))

    def _drop_link(self, value: Any) -> None:
        try:
            links = value.intrusive_links
        except AttributeError:
            self._side_links.pop(id(value), None)
            return
        if links is not None:
            links.pop(id(self), None)

    # -- internal list plumbing ----------------------------------------------------------

    def _find(self, key: Tuple) -> Optional[_ListNode]:
        node = self._head
        while node is not None:
            COUNTER.count_access()
            if node.key == key:
                return node
            node = node.next
        return None

    def _link_back(self, node: _ListNode) -> None:
        node.prev = self._tail
        node.next = None
        if self._tail is None:
            self._head = node
        else:
            self._tail.next = node
        self._tail = node
        self._size += 1

    def _unlink(self, node: _ListNode) -> None:
        if node.prev is None:
            self._head = node.next
        else:
            node.prev.next = node.next
        if node.next is None:
            self._tail = node.prev
        else:
            node.next.prev = node.prev
        node.prev = node.next = None
        self._size -= 1

    # -- interface ---------------------------------------------------------------------

    def insert(self, key: Tuple, value: Any) -> None:
        if FAULTS.active:
            FAULTS.check("structures.ilist.insert")
        COUNTER.count_insert()
        existing = self._find(key)
        if existing is not None:
            self._drop_link(existing.value)
            existing.value = value
            self._store_link(value, existing)
            return
        COUNTER.count_allocation()
        node = _ListNode(key, value)
        self._link_back(node)
        self._store_link(value, node)

    def insert_unique(self, key: Tuple, value: Any) -> None:
        """Constant-time link of a key the caller guarantees is new.

        No search for an existing entry — the intrusive counterpart of
        ``push_back``; decomposition instances call this when the shared
        registry proves the binding is fresh."""
        if FAULTS.active:
            FAULTS.check("structures.ilist.insert_unique")
        COUNTER.count_insert()
        COUNTER.count_allocation()
        COUNTER.count_access()
        node = _ListNode(key, value)
        self._link_back(node)
        self._store_link(value, node)

    def lookup(self, key: Tuple) -> Any:
        if FAULTS.active:
            FAULTS.check("structures.ilist.lookup")
        COUNTER.count_lookup()
        node = self._find(key)
        return MISSING if node is None else node.value

    def remove(self, key: Tuple) -> bool:
        if FAULTS.active:
            FAULTS.check("structures.ilist.remove")
        COUNTER.count_removal()
        node = self._find(key)
        if node is None:
            return False
        self._drop_link(node.value)
        self._unlink(node)
        return True

    def remove_value(self, key: Tuple, value: Any) -> bool:
        """Constant-time unlink given the stored value."""
        if FAULTS.active:
            FAULTS.check("structures.ilist.remove_value")
        COUNTER.count_removal()
        node = self._load_link(value)
        if node is None or (node.prev is None and node.next is None and self._head is not node):
            return False
        COUNTER.count_access()
        self._drop_link(value)
        self._unlink(node)
        return True

    def items(self) -> Iterator[PyTuple[Tuple, Any]]:
        COUNTER.count_scan()
        node = self._head
        while node is not None:
            COUNTER.count_access()
            yield node.key, node.value
            node = node.next

    def __len__(self) -> int:
        return self._size
