"""The associative-container interface and its cost model.

Map decompositions ``C --ψ--> v`` are implemented by a data structure ψ
drawn from an extensible library of primitives, all of which implement a
common key→value associative-map interface (Section 3.1 and Section 6 of the
paper).  This module defines that interface (:class:`AssociativeContainer`),
the per-structure cost model ``m_ψ(n)`` used by the query planner's cost
estimator, and a light-weight operation counter used by the autotuner's
deterministic cost metric.

Keys are :class:`repro.core.Tuple` values (projections of a tuple onto the
map's key columns); values are arbitrary Python objects — in practice the
node instances of a decomposition instance.
"""

from __future__ import annotations

import abc
import math
from typing import Any, Iterator, List, Optional, Tuple as PyTuple

from ..core.tuples import Tuple

__all__ = ["AssociativeContainer", "OperationCounter", "COUNTER", "MISSING"]


class _Missing:
    """Sentinel distinguishing "no entry" from a stored ``None`` value."""

    _instance: Optional["_Missing"] = None

    def __new__(cls) -> "_Missing":
        if cls._instance is None:
            cls._instance = super().__new__(cls)
        return cls._instance

    def __repr__(self) -> str:
        return "<MISSING>"

    def __bool__(self) -> bool:
        return False


MISSING = _Missing()


class OperationCounter:
    """Counts primitive container operations.

    The counter approximates "memory accesses": each probe of a list node,
    hash bucket, or tree node counts as one access.  The autotuner can use
    the counter as a deterministic, machine-independent cost metric, and
    tests use it to verify asymptotic claims (e.g. that hash lookups touch
    O(1) entries while list lookups touch O(n)).
    """

    __slots__ = ("enabled", "accesses", "lookups", "inserts", "removals", "scans", "allocations")

    def __init__(self) -> None:
        self.enabled = False
        self.reset()

    def reset(self) -> None:
        self.accesses = 0
        self.lookups = 0
        self.inserts = 0
        self.removals = 0
        self.scans = 0
        self.allocations = 0

    def snapshot(self) -> dict:
        return {
            "accesses": self.accesses,
            "lookups": self.lookups,
            "inserts": self.inserts,
            "removals": self.removals,
            "scans": self.scans,
            "allocations": self.allocations,
        }

    # The hot path is guarded by ``enabled`` so uninstrumented runs stay fast.

    def count_access(self, amount: int = 1) -> None:
        if self.enabled:
            self.accesses += amount

    def count_lookup(self) -> None:
        if self.enabled:
            self.lookups += 1

    def count_insert(self) -> None:
        if self.enabled:
            self.inserts += 1

    def count_removal(self) -> None:
        if self.enabled:
            self.removals += 1

    def count_scan(self) -> None:
        if self.enabled:
            self.scans += 1

    def count_allocation(self) -> None:
        if self.enabled:
            self.allocations += 1

    # -- context manager -------------------------------------------------------

    def __enter__(self) -> "OperationCounter":
        self.reset()
        self.enabled = True
        return self

    def __exit__(self, *exc_info: Any) -> None:
        self.enabled = False


#: The library-wide counter used by all containers.
COUNTER = OperationCounter()


class AssociativeContainer(abc.ABC):
    """Abstract key→value associative map.

    Concrete subclasses must define:

    * ``NAME`` — the identifier used in decompositions (``htable``, ``dlist``, ...),
    * ``ORDERED`` — whether iteration follows the key ordering,
    * ``INTRUSIVE`` — whether values are linked into the container so that
      :meth:`remove_value` is constant time,
    * :meth:`estimate_accesses` — the cost model ``m_ψ(n)``,
    * the core operations below.
    """

    #: Identifier used in decompositions and mapping files.
    NAME: str = "abstract"
    #: Whether iteration follows key order.
    ORDERED: bool = False
    #: Whether the structure supports O(1) removal given the stored value.
    INTRUSIVE: bool = False
    #: How the code generator (:mod:`repro.codegen`) lowers this structure:
    #: ``"hash"`` — a Python dict with O(1) probes; ``"tree"`` — a dict whose
    #: probes are charged ``log2(n)`` accesses (matching the cost model of a
    #: balanced tree); ``"list"`` — a plain list of entries with genuinely
    #: linear search, so compiled list layouts keep their real asymptotics;
    #: ``"intrusive"`` — a dict charged like an intrusive linked list: key
    #: *searches* cost ``n`` accesses (an unordered list cannot probe), but
    #: linking a known-new entry and unlinking a held entry cost 1.
    #: Structures registered by users default to ``"hash"``.
    CODEGEN_STRATEGY: str = "hash"
    #: The operations instrumented with :mod:`repro.faults` checks.  The
    #: registry registers one named injection site per entry
    #: (``structures.<NAME>.<op>``) when the class is registered, so the
    #: chaos suite's sweep surface tracks the container library
    #: automatically.  Subclasses that instrument extra operations
    #: (``insert_unique``, ``remove_value``) extend this tuple.
    FAULT_OPS: "PyTuple[str, ...]" = ("insert", "lookup", "remove")

    #: No per-instance dict at the base: concrete containers declare their
    #: own slots, and instances stay as small as the node records they
    #: model.  (User-registered structures may still opt out by omitting
    #: ``__slots__`` in their subclass.)
    __slots__ = ()

    # -- cost model --------------------------------------------------------------

    @classmethod
    def estimate_accesses(cls, n: float) -> float:
        """``m_ψ(n)``: expected memory accesses to look up a key among *n* entries."""
        raise NotImplementedError

    @classmethod
    def scan_cost(cls, n: float) -> float:
        """Expected accesses to iterate over all *n* entries (default: ``n``)."""
        return max(1.0, float(n))

    @classmethod
    def unlink_cost(cls, n: float) -> float:
        """Expected accesses to remove an entry whose *value* the caller
        already holds (default: the entry must still be found by key, so the
        lookup cost).  Intrusive structures override this with ``O(1)`` —
        the property that makes shared decompositions cheap to update."""
        return cls.estimate_accesses(n)

    # -- core operations -----------------------------------------------------------

    @abc.abstractmethod
    def insert(self, key: Tuple, value: Any) -> None:
        """Insert or overwrite the entry for *key*."""

    @abc.abstractmethod
    def lookup(self, key: Tuple) -> Any:
        """Return the value stored under *key*, or :data:`MISSING`."""

    @abc.abstractmethod
    def remove(self, key: Tuple) -> bool:
        """Remove the entry for *key*; return ``True`` if it existed."""

    @abc.abstractmethod
    def items(self) -> Iterator[PyTuple[Tuple, Any]]:
        """Iterate over ``(key, value)`` pairs."""

    @abc.abstractmethod
    def __len__(self) -> int:
        """Number of entries."""

    # -- derived operations ----------------------------------------------------------

    def remove_value(self, key: Tuple, value: Any) -> bool:
        """Remove the entry holding *value* (hint: stored under *key*).

        Non-intrusive containers fall back to a key-based removal; intrusive
        containers override this with a constant-time unlink.
        """
        return self.remove(key)

    def insert_unique(self, key: Tuple, value: Any) -> None:
        """Insert an entry the caller guarantees is not already present.

        Non-intrusive containers fall back to :meth:`insert` (which may
        search for an existing entry); intrusive containers override this
        with a constant-time link.  Decomposition instances use it when the
        shared-node registry proves a key is new to every parent container.
        """
        self.insert(key, value)

    def items_range(
        self, lo: "Optional[Tuple]" = None, hi: "Optional[Tuple]" = None
    ) -> Iterator[PyTuple[Tuple, Any]]:
        """Iterate ``(key, value)`` pairs with ``lo ≤ key ≤ hi`` in key-sort
        order (both bounds inclusive; ``None`` leaves that side unbounded).

        The default filters a fully-sorted scan — O(n log n) accesses —
        which is correct for any container; :class:`ordered <AVLTreeMap>`
        structures override it with a bounded descent that touches only
        the boundary paths and the entries in range (O(log n + k)).
        """
        lo_key = lo.sort_key() if lo is not None else None
        hi_key = hi.sort_key() if hi is not None else None
        for key, value in self.sorted_items():
            sort_key = key.sort_key()
            if lo_key is not None and sort_key < lo_key:
                continue
            if hi_key is not None and sort_key > hi_key:
                break
            yield key, value

    def keys(self) -> Iterator[Tuple]:
        for key, _ in self.items():
            yield key

    def values(self) -> Iterator[Any]:
        for _, value in self.items():
            yield value

    def get(self, key: Tuple, default: Any = None) -> Any:
        found = self.lookup(key)
        return default if found is MISSING else found

    def __contains__(self, key: object) -> bool:
        if not isinstance(key, Tuple):
            return False
        return self.lookup(key) is not MISSING

    def __bool__(self) -> bool:
        return len(self) > 0

    def __iter__(self) -> Iterator[Tuple]:
        return self.keys()

    def is_empty(self) -> bool:
        return len(self) == 0

    def clear(self) -> None:
        """Remove every entry (default: repeated removal)."""
        for key in list(self.keys()):
            self.remove(key)

    def sorted_items(self) -> List[PyTuple[Tuple, Any]]:
        """Items sorted by key (deterministic order for tests and display)."""
        return sorted(self.items(), key=lambda kv: kv[0].sort_key())

    def __repr__(self) -> str:
        entries = ", ".join(f"{k!r}: ..." for k, _ in self.sorted_items())
        return f"{type(self).__name__}({{{entries}}})"


def log2_cost(n: float) -> float:
    """Helper shared by tree-like structures: ``log2(n) + 1`` accesses."""
    return math.log2(n) + 1.0 if n > 1 else 1.0
