"""Primitive container library used by map decompositions.

All containers implement the :class:`AssociativeContainer` key→value map
interface and expose a cost model ``m_ψ(n)`` used by the query planner.
The library mirrors the paper's C++ container set:

=============  =================================  ==========================
Name           Paper counterpart                  Characteristics
=============  =================================  ==========================
``dlist``      ``std::list``                      unordered list, O(n) lookup
``ilist``      ``boost::intrusive::list``         intrusive list, O(1) unlink
``htable``     ``boost::unordered_map``           hash table, O(1) lookup
``btree``      ``std::map`` / intrusive ``set``   AVL tree, O(log n), ordered
``vector``     ``std::vector``                    array of pairs, O(n) lookup
``ivector``    dense ``std::vector`` index        O(1) lookup for small ints
=============  =================================  ==========================
"""

from .avltree import AVLTreeMap
from .base import COUNTER, MISSING, AssociativeContainer, OperationCounter
from .dlist import DListMap, IntrusiveListMap
from .htable import HashTableMap
from .registry import (
    STRUCTURE_REGISTRY,
    default_structure_names,
    get_structure,
    register_structure,
    size_class,
    structure_cost,
    structure_names,
)
from .vector import IndexedVectorMap, VectorMap

__all__ = [
    "AVLTreeMap",
    "AssociativeContainer",
    "COUNTER",
    "DListMap",
    "HashTableMap",
    "IndexedVectorMap",
    "IntrusiveListMap",
    "MISSING",
    "OperationCounter",
    "STRUCTURE_REGISTRY",
    "VectorMap",
    "default_structure_names",
    "get_structure",
    "register_structure",
    "size_class",
    "structure_cost",
    "structure_names",
]
