"""Vector containers.

Two array-backed containers mirror ``std::vector`` in the paper's library:

* :class:`VectorMap` — a dynamic array of key/value pairs with linear lookup
  and constant-time append.  Suitable for maps with a small number of keys
  (the paper's example maps the two process states to sub-relations).
* :class:`IndexedVectorMap` — a dense array indexed directly by a
  single-column small non-negative integer key, with constant-time lookup.
  This is what a C programmer would write for e.g. per-CPU or per-state
  tables; it falls back to :class:`VectorMap` behaviour if a key is not a
  small integer.
"""

from __future__ import annotations

from typing import Any, Iterator, List, Optional, Tuple as PyTuple

from ..core.tuples import Tuple
from ..faults import FAULTS
from .base import COUNTER, MISSING, AssociativeContainer

__all__ = ["VectorMap", "IndexedVectorMap"]


class VectorMap(AssociativeContainer):
    """Dynamic array of key/value pairs (``vector``)."""

    NAME = "vector"
    ORDERED = False
    INTRUSIVE = False
    CODEGEN_STRATEGY = "list"
    FAULT_OPS = ("insert", "insert_unique", "lookup", "remove")

    __slots__ = ("_entries", "_size")

    def __init__(self) -> None:
        self._entries: List[Optional[PyTuple[Tuple, Any]]] = []
        self._size = 0

    @classmethod
    def estimate_accesses(cls, n: float) -> float:
        # Linear probe, but with a smaller constant than a linked list
        # because the entries are contiguous.
        return max(1.0, float(n) / 4.0)

    def _find_index(self, key: Tuple) -> int:
        for index, entry in enumerate(self._entries):
            if entry is None:
                continue
            COUNTER.count_access()
            if entry[0] == key:
                return index
        return -1

    def insert(self, key: Tuple, value: Any) -> None:
        if FAULTS.active:
            FAULTS.check("structures.vector.insert")
        COUNTER.count_insert()
        index = self._find_index(key)
        if index >= 0:
            self._entries[index] = (key, value)
            return
        COUNTER.count_allocation()
        self._entries.append((key, value))
        self._size += 1

    def insert_unique(self, key: Tuple, value: Any) -> None:
        """Constant-time append of a key the caller guarantees is new (no
        duplicate scan) — used by shared-node registries, and what keeps
        interpreted access counts comparable to the compiled lowering."""
        if FAULTS.active:
            FAULTS.check("structures.vector.insert_unique")
        COUNTER.count_insert()
        COUNTER.count_allocation()
        COUNTER.count_access()
        self._entries.append((key, value))
        self._size += 1

    def lookup(self, key: Tuple) -> Any:
        if FAULTS.active:
            FAULTS.check("structures.vector.lookup")
        COUNTER.count_lookup()
        index = self._find_index(key)
        return MISSING if index < 0 else self._entries[index][1]  # type: ignore[index]

    def remove(self, key: Tuple) -> bool:
        if FAULTS.active:
            FAULTS.check("structures.vector.remove")
        COUNTER.count_removal()
        index = self._find_index(key)
        if index < 0:
            return False
        # Swap-remove to keep the array dense.
        last = len(self._entries) - 1
        self._entries[index] = self._entries[last]
        self._entries.pop()
        self._size -= 1
        return True

    def items(self) -> Iterator[PyTuple[Tuple, Any]]:
        COUNTER.count_scan()
        for entry in self._entries:
            if entry is not None:
                COUNTER.count_access()
                yield entry

    def __len__(self) -> int:
        return self._size


class IndexedVectorMap(AssociativeContainer):
    """Dense array indexed by a small non-negative integer key (``ivector``).

    The key must be a single-column tuple whose value is a non-negative
    integer below :attr:`MAX_DENSE_KEY`; other keys are stored in a sparse
    overflow map so that behaviour is always correct even when the key
    domain is unsuitable for dense indexing.
    """

    NAME = "ivector"
    ORDERED = False
    INTRUSIVE = False

    #: Largest key stored densely; beyond this the overflow map is used.
    MAX_DENSE_KEY = 1 << 20

    __slots__ = ("_dense", "_dense_keys", "_overflow", "_size")

    def __init__(self) -> None:
        self._dense: List[Any] = []
        self._dense_keys: List[Optional[Tuple]] = []
        self._overflow: dict = {}
        self._size = 0

    @classmethod
    def estimate_accesses(cls, n: float) -> float:
        return 1.0

    @classmethod
    def _dense_index(cls, key: Tuple) -> Optional[int]:
        if len(key) != 1:
            return None
        value = next(iter(key.values()))
        if isinstance(value, bool) or not isinstance(value, int):
            return None
        if 0 <= value < cls.MAX_DENSE_KEY:
            return value
        return None

    def _grow(self, index: int) -> None:
        while len(self._dense) <= index:
            self._dense.append(MISSING)
            self._dense_keys.append(None)

    def insert(self, key: Tuple, value: Any) -> None:
        if FAULTS.active:
            FAULTS.check("structures.ivector.insert")
        COUNTER.count_insert()
        index = self._dense_index(key)
        if index is None:
            if key not in self._overflow:
                self._size += 1
                COUNTER.count_allocation()
            self._overflow[key] = value
            return
        self._grow(index)
        COUNTER.count_access()
        if self._dense[index] is MISSING:
            self._size += 1
            COUNTER.count_allocation()
        self._dense[index] = value
        self._dense_keys[index] = key

    def lookup(self, key: Tuple) -> Any:
        if FAULTS.active:
            FAULTS.check("structures.ivector.lookup")
        COUNTER.count_lookup()
        index = self._dense_index(key)
        if index is None:
            COUNTER.count_access()
            return self._overflow.get(key, MISSING)
        if index >= len(self._dense):
            return MISSING
        COUNTER.count_access()
        return self._dense[index]

    def remove(self, key: Tuple) -> bool:
        if FAULTS.active:
            FAULTS.check("structures.ivector.remove")
        COUNTER.count_removal()
        index = self._dense_index(key)
        if index is None:
            if key in self._overflow:
                del self._overflow[key]
                self._size -= 1
                return True
            return False
        if index >= len(self._dense) or self._dense[index] is MISSING:
            return False
        COUNTER.count_access()
        self._dense[index] = MISSING
        self._dense_keys[index] = None
        self._size -= 1
        return True

    def items(self) -> Iterator[PyTuple[Tuple, Any]]:
        COUNTER.count_scan()
        for index, value in enumerate(self._dense):
            if value is not MISSING:
                COUNTER.count_access()
                key = self._dense_keys[index]
                assert key is not None
                yield key, value
        for key, value in self._overflow.items():
            COUNTER.count_access()
            yield key, value

    def __len__(self) -> int:
        return self._size
