"""Registry of container implementations.

The set of data structures usable in a decomposition is extensible
(Section 3.1): "any data structure implementing a common interface may be
used".  New containers are added by subclassing
:class:`repro.structures.AssociativeContainer` and calling
:func:`register_structure`.
"""

from __future__ import annotations

from typing import Dict, List, Type

from ..core.errors import DecompositionError
from ..faults import register_site
from .avltree import AVLTreeMap
from .base import AssociativeContainer
from .dlist import DListMap, IntrusiveListMap
from .htable import HashTableMap
from .vector import IndexedVectorMap, VectorMap

__all__ = [
    "register_structure",
    "register_alias",
    "get_structure",
    "canonical_structure_name",
    "structure_names",
    "structure_cost",
    "size_class",
    "default_structure_names",
    "STRUCTURE_REGISTRY",
    "STRUCTURE_ALIASES",
]

STRUCTURE_REGISTRY: Dict[str, Type[AssociativeContainer]] = {}

#: Alternative names resolving to a registered structure.  ``btree`` is the
#: paper's generic "balanced tree"; the library's implementation is an AVL
#: tree registered as ``avl``, and the alias keeps every existing
#: decomposition string (and mapping file) parsing unchanged.
STRUCTURE_ALIASES: Dict[str, str] = {}


def register_structure(cls: Type[AssociativeContainer]) -> Type[AssociativeContainer]:
    """Register a container class under its ``NAME``; usable as a decorator."""
    name = cls.NAME
    if not name or name == "abstract":
        raise DecompositionError(f"container class {cls.__name__} must define a NAME")
    existing = STRUCTURE_REGISTRY.get(name)
    if existing is not None and existing is not cls:
        raise DecompositionError(
            f"container name {name!r} already registered by {existing.__name__}"
        )
    alias_target = STRUCTURE_ALIASES.get(name)
    if alias_target is not None and STRUCTURE_REGISTRY.get(alias_target) is not cls:
        raise DecompositionError(
            f"container name {name!r} already registered as an alias for {alias_target!r}"
        )
    STRUCTURE_REGISTRY[name] = cls
    # Thread the fault-injection surface through the registry: one named
    # site per instrumented container operation, so user-registered
    # structures join the chaos suite's sweep with no further wiring.
    for op in cls.FAULT_OPS:
        register_site(f"structures.{name}.{op}")
    return cls


def register_alias(alias: str, canonical: str) -> None:
    """Make *alias* resolve to the registered structure *canonical*."""
    if canonical not in STRUCTURE_REGISTRY:
        known = ", ".join(sorted(STRUCTURE_REGISTRY))
        raise DecompositionError(
            f"cannot alias {alias!r} to unregistered structure {canonical!r} "
            f"(registered structures: {known})"
        )
    existing = STRUCTURE_REGISTRY.get(alias)
    if existing is not None and existing is not STRUCTURE_REGISTRY[canonical]:
        raise DecompositionError(
            f"alias {alias!r} collides with the registered structure of the same name"
        )
    STRUCTURE_ALIASES[alias] = canonical


def canonical_structure_name(name: str) -> str:
    """Resolve aliases (``btree`` → ``avl``); canonical names pass through.

    The autotuner deduplicates candidate decompositions by canonical shape,
    so a layout written with ``btree`` and one written with ``avl`` count as
    the same candidate.
    """
    resolved = STRUCTURE_ALIASES.get(name, name)
    if resolved not in STRUCTURE_REGISTRY:
        known = ", ".join(sorted(STRUCTURE_REGISTRY) + sorted(STRUCTURE_ALIASES))
        raise DecompositionError(f"unknown data structure {name!r}; known structures: {known}")
    return resolved


def get_structure(name: str) -> Type[AssociativeContainer]:
    """Look up a container class by name or alias (``htable``, ``avl``, ...)."""
    return STRUCTURE_REGISTRY[canonical_structure_name(name)]


def structure_names() -> List[str]:
    """All registered structure names, sorted."""
    return sorted(STRUCTURE_REGISTRY)


def structure_cost(name: str, n: float, operation: str = "lookup") -> float:
    """Cost-model hook by structure *name*: expected accesses for *operation*.

    ``operation`` is ``"lookup"`` (the per-key cost ``m_ψ(n)``), ``"scan"``
    (full iteration) or ``"unlink"`` (removal of an entry whose value the
    caller already holds — O(1) for intrusive structures, the lookup cost
    otherwise).  The query planner's step costs
    (:mod:`repro.decomposition.plan`) go through this entry point, so
    user-registered containers participate in cost estimation with no
    further wiring; the autotuner (see ROADMAP) will use it the same way.
    """
    cls = get_structure(name)
    if operation == "lookup":
        return cls.estimate_accesses(n)
    if operation == "scan":
        return cls.scan_cost(n)
    if operation == "unlink":
        return cls.unlink_cost(n)
    raise DecompositionError(
        f"unknown cost operation {operation!r}; use 'lookup', 'scan' or 'unlink'"
    )


def size_class(n: float) -> int:
    """The power-of-two bucket of a container size (``0, 1, 2, 4, 8, ...``).

    Live cost-based planning re-ranks query plans only when a container's
    *size class* changes rather than on every mutation: costs estimated from
    ``n`` and from ``1.9 n`` never differ enough to flip an index-vs-scan
    choice under the ``m_ψ(n)`` cost models, so plans are cached per size
    class.  ``DecomposedRelation`` compares the per-edge size-class
    signature of its instance on each planning request and invalidates its
    plan cache when the signature moves.
    """
    return int(n).bit_length() if n > 0 else 0


def default_structure_names() -> List[str]:
    """The structures the autotuner considers by default.

    ``ivector`` is excluded because it only differs from ``htable`` in
    constant factors for integer keys, which keeps the autotuner's search
    space aligned with the paper's (list / tree / hash / vector).

    The returned names are validated against :data:`STRUCTURE_REGISTRY` at
    call time, so a renamed or unregistered container fails loudly here
    rather than surfacing later as an unknown-structure error deep inside
    decomposition construction.
    """
    names = ["dlist", "ilist", "avl", "htable", "vector"]
    unregistered = [name for name in names if name not in STRUCTURE_REGISTRY]
    if unregistered:
        known = ", ".join(sorted(STRUCTURE_REGISTRY))
        raise DecompositionError(
            f"default structure names {unregistered!r} are not registered "
            f"(registered structures: {known}); update default_structure_names() "
            f"to match the container library"
        )
    return names


for _cls in (DListMap, IntrusiveListMap, HashTableMap, AVLTreeMap, VectorMap, IndexedVectorMap):
    register_structure(_cls)

register_alias("btree", "avl")
