"""A separate-chaining hash table (``htable``).

This mirrors ``boost::unordered_map`` in the paper's container library.  The
implementation is a genuine hash table — its own bucket array, chaining, and
load-factor-driven resizing — rather than a wrapper over ``dict``, so that
the operation counter reflects realistic per-probe costs and so the
structure can serve as a template for users adding their own containers.
"""

from __future__ import annotations

from typing import Any, Iterator, List, Optional, Tuple as PyTuple

from ..core.tuples import Tuple
from ..faults import FAULTS
from .base import COUNTER, MISSING, AssociativeContainer

__all__ = ["HashTableMap"]


class _Entry:
    """A single chained hash-table entry."""

    __slots__ = ("hash_value", "key", "value", "next")

    def __init__(self, hash_value: int, key: Tuple, value: Any):
        self.hash_value = hash_value
        self.key = key
        self.value = value
        self.next: Optional["_Entry"] = None


class HashTableMap(AssociativeContainer):
    """Hash table with separate chaining and automatic resizing."""

    NAME = "htable"
    ORDERED = False
    INTRUSIVE = False

    #: Resize when size / buckets exceeds this factor.
    MAX_LOAD_FACTOR = 0.75
    #: Initial number of buckets.
    INITIAL_BUCKETS = 8

    __slots__ = ("_buckets", "_size")

    def __init__(self, initial_buckets: int = INITIAL_BUCKETS) -> None:
        if initial_buckets < 1:
            initial_buckets = self.INITIAL_BUCKETS
        self._buckets: List[Optional[_Entry]] = [None] * initial_buckets
        self._size = 0

    @classmethod
    def estimate_accesses(cls, n: float) -> float:
        return 1.0

    # -- internals -----------------------------------------------------------------

    def _bucket_index(self, hash_value: int, bucket_count: Optional[int] = None) -> int:
        count = bucket_count if bucket_count is not None else len(self._buckets)
        return hash_value % count

    def _find(self, key: Tuple) -> Optional[_Entry]:
        hash_value = hash(key)
        entry = self._buckets[self._bucket_index(hash_value)]
        while entry is not None:
            COUNTER.count_access()
            if entry.hash_value == hash_value and entry.key == key:
                return entry
            entry = entry.next
        return None

    def _maybe_resize(self) -> None:
        if self._size / len(self._buckets) <= self.MAX_LOAD_FACTOR:
            return
        new_count = len(self._buckets) * 2
        new_buckets: List[Optional[_Entry]] = [None] * new_count
        for head in self._buckets:
            entry = head
            while entry is not None:
                next_entry = entry.next
                index = self._bucket_index(entry.hash_value, new_count)
                entry.next = new_buckets[index]
                new_buckets[index] = entry
                COUNTER.count_access()
                entry = next_entry
        self._buckets = new_buckets

    # -- interface -------------------------------------------------------------------

    def insert(self, key: Tuple, value: Any) -> None:
        if FAULTS.active:
            FAULTS.check("structures.htable.insert")
        COUNTER.count_insert()
        existing = self._find(key)
        if existing is not None:
            existing.value = value
            return
        COUNTER.count_allocation()
        hash_value = hash(key)
        index = self._bucket_index(hash_value)
        entry = _Entry(hash_value, key, value)
        entry.next = self._buckets[index]
        self._buckets[index] = entry
        self._size += 1
        self._maybe_resize()

    def lookup(self, key: Tuple) -> Any:
        if FAULTS.active:
            FAULTS.check("structures.htable.lookup")
        COUNTER.count_lookup()
        entry = self._find(key)
        return MISSING if entry is None else entry.value

    def remove(self, key: Tuple) -> bool:
        if FAULTS.active:
            FAULTS.check("structures.htable.remove")
        COUNTER.count_removal()
        hash_value = hash(key)
        index = self._bucket_index(hash_value)
        entry = self._buckets[index]
        previous: Optional[_Entry] = None
        while entry is not None:
            COUNTER.count_access()
            if entry.hash_value == hash_value and entry.key == key:
                if previous is None:
                    self._buckets[index] = entry.next
                else:
                    previous.next = entry.next
                entry.next = None
                self._size -= 1
                return True
            previous, entry = entry, entry.next
        return False

    def items(self) -> Iterator[PyTuple[Tuple, Any]]:
        COUNTER.count_scan()
        for head in self._buckets:
            entry = head
            while entry is not None:
                COUNTER.count_access()
                yield entry.key, entry.value
                entry = entry.next

    def __len__(self) -> int:
        return self._size

    # -- diagnostics ------------------------------------------------------------------

    @property
    def bucket_count(self) -> int:
        return len(self._buckets)

    @property
    def load_factor(self) -> float:
        return self._size / len(self._buckets)
