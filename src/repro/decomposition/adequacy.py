"""The adequacy judgement (Section 3.2, Figure 6).

A decomposition is *adequate* for a specification ``(C, ∆)`` when every
relation over ``C`` satisfying ``∆`` is representable by some instance of
the decomposition — i.e. the abstraction function α is surjective onto the
FD-satisfying relations.  Concretely this reproduction checks:

* **column justification** — for every leaf reachable with bound columns
  ``B`` and unit columns ``U``, the covered set ``B ∪ U`` mentions only
  specification columns; the decomposition as a whole (the root's
  coverage) mentions every one.  A branch need **not** cover every column:
  a *key-projection branch* stores only a key subset of the columns (e.g.
  a ``dst``-keyed index over the edge keys ``{src, dst}`` of a graph whose
  weights live in the ``src``-keyed primary), and queries reassemble full
  tuples with a cross-branch join plan validated by the Figure 8 FD-closure
  rule (:mod:`repro.decomposition.plan`).
* **FD justification** — ``∆ ⊢fd B → U``: a unit stores at most one tuple
  per binding of ``B``, so the decomposition structurally enforces the
  dependency ``B → U``.  Adequacy demands that this enforced dependency is
  *justified* by (entailed by) the specification's FDs — otherwise there
  are ∆-satisfying relations the decomposition cannot hold.
* **branch keyness** — ``∆ ⊢fd (B ∪ U) → C``: every path's covered column
  set must be a key.  A branch then stores one entry per represented
  tuple (its projection is a bijection), which is what lets the mutators
  insert and remove per-branch projections without reference counting and
  makes all-common-column join plans sound.
* **primary-branch completeness** — at every branching node, the first
  edge's coverage must contain every sibling edge's coverage.  The
  leftmost root-to-leaf walk therefore reads full tuples, which keeps the
  abstraction function α, iteration, and the compiled tier's primary-path
  enumeration single-branch reads; key-projection branches are secondary
  by construction.
* **shared-node typing** — a node reached through several parent edges
  (the paper's shared sub-nodes) must be reached with *one* bound column
  set, so it has a single type ``B ▷ C`` and instances can materialise one
  object per ``B``-binding.

The checks run over a traversal memoised on ``(node, bound)`` pairs
(:meth:`Decomposition.node_bounds`), so shared nodes are visited once per
distinct bound set — no exponential blowup when branches converge.

:func:`enforced_fds` exposes the dependencies a decomposition enforces by
construction, which the differential tests use to cross-check the theorem
that well-formed instances always abstract to FD-satisfying relations.
"""

from __future__ import annotations

from typing import List

from ..core.columns import format_columns
from ..core.errors import AdequacyError
from ..core.fd import FDSet, FunctionalDependency
from ..core.spec import RelationSpec
from .model import Decomposition

__all__ = ["check_adequacy", "is_adequate", "adequacy_problems", "enforced_fds"]


def _leaf_typings(decomposition: Decomposition) -> List[tuple]:
    """Every distinct ``(leaf node, bound columns)`` pair, deterministically.

    Built from the memoised :meth:`Decomposition.node_bounds` traversal:
    a shared leaf reachable from several branches with the same bound set
    contributes one entry, not one per root-to-leaf path.
    """
    bounds = decomposition.node_bounds()
    return [
        (node, bound)
        for node in decomposition.nodes()
        if node.is_unit
        for bound in bounds.get(id(node), [])
    ]


def adequacy_problems(decomposition: Decomposition, spec: RelationSpec) -> List[str]:
    """Return a human-readable list of reasons the decomposition is not
    adequate for *spec* (empty when it is adequate)."""
    problems: List[str] = []
    names = decomposition.node_names()
    bounds = decomposition.node_bounds()
    coverage = decomposition.node_coverage()
    for node in decomposition.shared_nodes():
        entries = bounds.get(id(node), [])
        if len(entries) > 1:
            rendered = ", ".join(format_columns(b) for b in entries)
            problems.append(
                f"shared node {names[id(node)]} ({node!r}) is reached with "
                f"{len(entries)} different bound column sets ({rendered}); a "
                f"shared sub-node must have a single type B ▷ C, i.e. every "
                f"path to it must bind the same columns"
            )
    root_coverage = coverage[id(decomposition.root)]
    missing_everywhere = spec.columns - root_coverage
    if missing_everywhere:
        problems.append(
            f"no branch mentions columns {format_columns(missing_everywhere)}: "
            f"the decomposition cannot represent them at all"
        )
    for node in decomposition.nodes():
        if len(node.edges) < 2:
            continue
        primary = decomposition.edge_coverage(node.edges[0])
        for index, e in enumerate(node.edges[1:], start=1):
            extra = decomposition.edge_coverage(e) - primary
            if extra:
                problems.append(
                    f"branching node {names[id(node)]}: its first branch covers "
                    f"{format_columns(primary)} but branch {index} additionally "
                    f"covers {format_columns(extra)}; the first (primary) branch "
                    f"must cover every sibling's columns so the leftmost walk "
                    f"reads full tuples (order key-projection branches after "
                    f"the primary)"
                )
    for leaf, bound in _leaf_typings(decomposition):
        where = (
            f"leaf {names[id(leaf)]} (unit{format_columns(leaf.unit_columns)} "
            f"reached with bound columns {format_columns(bound)})"
        )
        covered = bound | leaf.unit_columns
        extra = covered - spec.columns
        if extra:
            problems.append(
                f"{where} mentions columns {format_columns(extra)} "
                f"outside the specification columns {format_columns(spec.columns)}"
            )
            continue
        if not spec.fds.entails(bound, leaf.unit_columns):
            reason = (
                "are not a key"
                if covered == spec.columns
                else "do not determine the unit columns"
            )
            problems.append(
                f"{where} enforces the dependency "
                f"{format_columns(bound)} → {format_columns(leaf.unit_columns)}, "
                f"which the specification's FDs do not justify (the bound columns "
                f"{format_columns(bound)} {reason}); the decomposition cannot "
                f"represent every relation satisfying {spec.fds!r}"
            )
            continue
        if not spec.fds.is_key(covered, spec.columns):
            problems.append(
                f"{where} covers only {format_columns(covered)}, which is not a "
                f"key of the specification: distinct tuples would collapse to "
                f"one branch entry, so neither per-branch mutation nor a "
                f"cross-branch join plan can be sound (a key-projection branch "
                f"must cover a key)"
            )
    return problems


def check_adequacy(decomposition: Decomposition, spec: RelationSpec) -> None:
    """Raise :class:`AdequacyError` unless *decomposition* is adequate for *spec*."""
    problems = adequacy_problems(decomposition, spec)
    if problems:
        raise AdequacyError(
            f"decomposition {decomposition.name!r} is not adequate for "
            f"specification {spec.name!r}:\n  - " + "\n  - ".join(problems)
        )


def is_adequate(decomposition: Decomposition, spec: RelationSpec) -> bool:
    """Decide the adequacy judgement without raising."""
    return not adequacy_problems(decomposition, spec)


def enforced_fds(decomposition: Decomposition) -> FDSet:
    """The functional dependencies the decomposition enforces structurally.

    Each leaf reached with bound columns ``B`` holding unit columns ``U``
    contributes ``B → U`` (a unit holds one tuple per binding).  Leaves with
    no unit columns contribute nothing — a pure presence marker enforces no
    dependency.  A shared leaf contributes its dependency once, not once
    per converging branch.
    """
    seen = set()
    fds = []
    for leaf, bound in _leaf_typings(decomposition):
        if not leaf.unit_columns:
            continue
        key = (bound, leaf.unit_columns)
        if key in seen:
            continue
        seen.add(key)
        fds.append(FunctionalDependency(bound, leaf.unit_columns))
    return FDSet(fds)
