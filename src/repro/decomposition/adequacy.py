"""The adequacy judgement (Section 3.2, Figure 6).

A decomposition is *adequate* for a specification ``(C, ∆)`` when every
relation over ``C`` satisfying ``∆`` is representable by some instance of
the decomposition — i.e. the abstraction function α is surjective onto the
FD-satisfying relations.  Concretely this reproduction checks, for every
leaf reachable with bound columns ``B`` and unit columns ``U``:

* **column justification** — ``B ∪ U = C``: every root-to-leaf path
  mentions every specification column exactly once and no others.
  (Requiring *every* branch to cover all columns is slightly stricter than
  the paper; branches may instead converge on a **shared sub-node** that
  holds the residual columns — see below.)
* **FD justification** — ``∆ ⊢fd B → U``: a unit stores at most one tuple
  per binding of ``B``, so the decomposition structurally enforces the
  dependency ``B → U``.  Adequacy demands that this enforced dependency is
  *justified* by (entailed by) the specification's FDs — otherwise there
  are ∆-satisfying relations the decomposition cannot hold.  Since
  ``B ∪ U = C`` this is exactly the requirement that ``B`` is a key.
* **shared-node typing** — a node reached through several parent edges
  (the paper's shared sub-nodes, e.g. the scheduler's process records
  reached from both the ``ns, pid`` index and the per-``state`` lists)
  must be reached with *one* bound column set, so it has a single type
  ``B ▷ C`` and instances can materialise one object per ``B``-binding.

The checks run over a traversal memoised on ``(node, bound)`` pairs
(:meth:`Decomposition.node_bounds`), so shared nodes are visited once per
distinct bound set — no exponential blowup when branches converge.

:func:`enforced_fds` exposes the dependencies a decomposition enforces by
construction, which the differential tests use to cross-check the theorem
that well-formed instances always abstract to FD-satisfying relations.
"""

from __future__ import annotations

from typing import List

from ..core.columns import format_columns
from ..core.errors import AdequacyError
from ..core.fd import FDSet, FunctionalDependency
from ..core.spec import RelationSpec
from .model import Decomposition

__all__ = ["check_adequacy", "is_adequate", "adequacy_problems", "enforced_fds"]


def _leaf_typings(decomposition: Decomposition) -> List[tuple]:
    """Every distinct ``(leaf node, bound columns)`` pair, deterministically.

    Built from the memoised :meth:`Decomposition.node_bounds` traversal:
    a shared leaf reachable from several branches with the same bound set
    contributes one entry, not one per root-to-leaf path.
    """
    bounds = decomposition.node_bounds()
    return [
        (node, bound)
        for node in decomposition.nodes()
        if node.is_unit
        for bound in bounds.get(id(node), [])
    ]


def adequacy_problems(decomposition: Decomposition, spec: RelationSpec) -> List[str]:
    """Return a human-readable list of reasons the decomposition is not
    adequate for *spec* (empty when it is adequate)."""
    problems: List[str] = []
    names = decomposition.node_names()
    bounds = decomposition.node_bounds()
    for node in decomposition.shared_nodes():
        entries = bounds.get(id(node), [])
        if len(entries) > 1:
            rendered = ", ".join(format_columns(b) for b in entries)
            problems.append(
                f"shared node {names[id(node)]} ({node!r}) is reached with "
                f"{len(entries)} different bound column sets ({rendered}); a "
                f"shared sub-node must have a single type B ▷ C, i.e. every "
                f"path to it must bind the same columns"
            )
    for leaf, bound in _leaf_typings(decomposition):
        where = (
            f"leaf {names[id(leaf)]} (unit{format_columns(leaf.unit_columns)} "
            f"reached with bound columns {format_columns(bound)})"
        )
        covered = bound | leaf.unit_columns
        extra = covered - spec.columns
        if extra:
            problems.append(
                f"{where} mentions columns {format_columns(extra)} "
                f"outside the specification columns {format_columns(spec.columns)}"
            )
        missing = spec.columns - covered
        if missing:
            problems.append(
                f"{where} does not justify columns "
                f"{format_columns(missing)}: every root-to-leaf path must bind or "
                f"store every specification column"
            )
        if not extra and not missing and not spec.fds.entails(bound, leaf.unit_columns):
            problems.append(
                f"{where} enforces the dependency "
                f"{format_columns(bound)} → {format_columns(leaf.unit_columns)}, "
                f"which the specification's FDs do not justify (the bound columns "
                f"{format_columns(bound)} are not a key); the decomposition cannot "
                f"represent every relation satisfying {spec.fds!r}"
            )
    return problems


def check_adequacy(decomposition: Decomposition, spec: RelationSpec) -> None:
    """Raise :class:`AdequacyError` unless *decomposition* is adequate for *spec*."""
    problems = adequacy_problems(decomposition, spec)
    if problems:
        raise AdequacyError(
            f"decomposition {decomposition.name!r} is not adequate for "
            f"specification {spec.name!r}:\n  - " + "\n  - ".join(problems)
        )


def is_adequate(decomposition: Decomposition, spec: RelationSpec) -> bool:
    """Decide the adequacy judgement without raising."""
    return not adequacy_problems(decomposition, spec)


def enforced_fds(decomposition: Decomposition) -> FDSet:
    """The functional dependencies the decomposition enforces structurally.

    Each leaf reached with bound columns ``B`` holding unit columns ``U``
    contributes ``B → U`` (a unit holds one tuple per binding).  Leaves with
    no unit columns contribute nothing — a pure presence marker enforces no
    dependency.  A shared leaf contributes its dependency once, not once
    per converging branch.
    """
    seen = set()
    fds = []
    for leaf, bound in _leaf_typings(decomposition):
        if not leaf.unit_columns:
            continue
        key = (bound, leaf.unit_columns)
        if key in seen:
            continue
        seen.add(key)
        fds.append(FunctionalDependency(bound, leaf.unit_columns))
    return FDSet(fds)
