"""The adequacy judgement (Section 3.2, Figure 6).

A decomposition is *adequate* for a specification ``(C, ∆)`` when every
relation over ``C`` satisfying ``∆`` is representable by some instance of
the decomposition — i.e. the abstraction function α is surjective onto the
FD-satisfying relations.  Concretely this reproduction checks, for every
root-to-leaf path with bound columns ``B`` and leaf unit columns ``U``:

* **column justification** — ``B ∪ U = C``: the path mentions every
  specification column exactly once and no others.  (Requiring *every*
  branch to cover all columns is slightly stricter than the paper, which
  also admits branches that share a sub-node holding the residual columns;
  node sharing across branches is a planned follow-up, see ROADMAP.)
* **FD justification** — ``∆ ⊢fd B → U``: a unit stores at most one tuple
  per binding of ``B``, so the decomposition structurally enforces the
  dependency ``B → U``.  Adequacy demands that this enforced dependency is
  *justified* by (entailed by) the specification's FDs — otherwise there
  are ∆-satisfying relations the decomposition cannot hold.  Since
  ``B ∪ U = C`` this is exactly the requirement that ``B`` is a key.

:func:`enforced_fds` exposes the dependencies a decomposition enforces by
construction, which the differential tests use to cross-check the theorem
that well-formed instances always abstract to FD-satisfying relations.
"""

from __future__ import annotations

from typing import List

from ..core.columns import format_columns
from ..core.errors import AdequacyError
from ..core.fd import FDSet, FunctionalDependency
from ..core.spec import RelationSpec
from .model import Decomposition

__all__ = ["check_adequacy", "is_adequate", "adequacy_problems", "enforced_fds"]


def adequacy_problems(decomposition: Decomposition, spec: RelationSpec) -> List[str]:
    """Return a human-readable list of reasons the decomposition is not
    adequate for *spec* (empty when it is adequate)."""
    problems: List[str] = []
    for path in decomposition.paths():
        covered = path.covered
        extra = covered - spec.columns
        if extra:
            problems.append(
                f"path `{path.describe()}` mentions columns {format_columns(extra)} "
                f"outside the specification columns {format_columns(spec.columns)}"
            )
        missing = spec.columns - covered
        if missing:
            problems.append(
                f"path `{path.describe()}` does not justify columns "
                f"{format_columns(missing)}: every root-to-leaf path must bind or "
                f"store every specification column"
            )
        if not extra and not missing and not spec.fds.entails(path.bound, path.leaf.unit_columns):
            problems.append(
                f"path `{path.describe()}` enforces the dependency "
                f"{format_columns(path.bound)} → {format_columns(path.leaf.unit_columns)}, "
                f"which the specification's FDs do not justify (the bound columns "
                f"{format_columns(path.bound)} are not a key); the decomposition cannot "
                f"represent every relation satisfying {spec.fds!r}"
            )
    return problems


def check_adequacy(decomposition: Decomposition, spec: RelationSpec) -> None:
    """Raise :class:`AdequacyError` unless *decomposition* is adequate for *spec*."""
    problems = adequacy_problems(decomposition, spec)
    if problems:
        raise AdequacyError(
            f"decomposition {decomposition.name!r} is not adequate for "
            f"specification {spec.name!r}:\n  - " + "\n  - ".join(problems)
        )


def is_adequate(decomposition: Decomposition, spec: RelationSpec) -> bool:
    """Decide the adequacy judgement without raising."""
    return not adequacy_problems(decomposition, spec)


def enforced_fds(decomposition: Decomposition) -> FDSet:
    """The functional dependencies the decomposition enforces structurally.

    Each leaf with bound columns ``B`` and unit columns ``U`` contributes
    ``B → U`` (a unit holds one tuple per binding).  Leaves with no unit
    columns contribute nothing — a pure presence marker enforces no
    dependency.
    """
    fds = [
        FunctionalDependency(path.bound, path.leaf.unit_columns)
        for path in decomposition.paths()
        if path.leaf.unit_columns
    ]
    return FDSet(fds)
