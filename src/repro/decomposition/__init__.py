"""Decompositions (Section 3): describing relations as container hierarchies.

This package implements the middle layer of the paper — the bridge between
relational specifications (:mod:`repro.core`) and primitive containers
(:mod:`repro.structures`):

* :mod:`~repro.decomposition.model` — the decomposition DAG
  (:class:`Decomposition`, :class:`DecompNode`, :class:`MapEdge`) and the
  :func:`unit` / :func:`edge` construction helpers;
* :mod:`~repro.decomposition.parser` — the textual notation,
  e.g. ``"ns, pid -> htable {state, cpu}"``;
* :mod:`~repro.decomposition.adequacy` — the adequacy judgement of
  Section 3.2 (:func:`check_adequacy`, :func:`is_adequate`);
* :mod:`~repro.decomposition.instance` — populated instances, the
  abstraction function α, and instance well-formedness (Figure 5);
* :mod:`~repro.decomposition.plan` — the recursive query-plan IR: chain
  plans, cross-branch joins and Figure 8 FD-validity
  (:func:`plan_query`, :func:`execute_plan`, :func:`validate_plan`);
* :mod:`~repro.decomposition.relation` — :class:`DecomposedRelation`, the
  relational interface over all of the above.
"""

from .adequacy import adequacy_problems, check_adequacy, enforced_fds, is_adequate
from .instance import DecompositionInstance, NodeInstance
from .model import Decomposition, DecompNode, MapEdge, Path, edge, format_decomposition, unit
from .parser import parse_decomposition, tokenize
from .plan import (
    JoinPlan,
    LookupStep,
    PlanWitness,
    QueryPlan,
    ResidualFilter,
    ScanStep,
    converging_plans,
    execute_plan,
    path_steps,
    plan_query,
    validate_plan,
)
from .relation import DecomposedRelation

__all__ = [
    "Decomposition",
    "DecompNode",
    "DecomposedRelation",
    "DecompositionInstance",
    "JoinPlan",
    "LookupStep",
    "MapEdge",
    "NodeInstance",
    "Path",
    "PlanWitness",
    "QueryPlan",
    "ResidualFilter",
    "ScanStep",
    "adequacy_problems",
    "check_adequacy",
    "converging_plans",
    "edge",
    "enforced_fds",
    "execute_plan",
    "format_decomposition",
    "is_adequate",
    "parse_decomposition",
    "path_steps",
    "plan_query",
    "tokenize",
    "unit",
    "validate_plan",
]
