"""Parser for the textual decomposition notation.

Decompositions (and the specs they serve) are small enough to be pleasant
to write as strings, mirroring the paper's graphical notation::

    ns, pid -> htable {state, cpu}

is a hash table keyed by ``{ns, pid}`` whose entries are unit leaves
holding ``{state, cpu}``.  Maps chain by juxtaposition::

    ns -> htable pid -> btree {state, cpu}

and a node with several outgoing edges (a branching decomposition) is a
``;``-separated list in square brackets::

    [ns, pid -> htable {state, cpu} ; state -> htable (ns, pid -> dlist {cpu})]

Parentheses group a sub-decomposition where precedence would otherwise be
ambiguous; ``{}`` is the empty unit (a pure presence marker); ``#`` starts
a comment running to end of line.

**Node sharing** (the paper's shared sub-nodes, Section 3): a node that
several branches point at is written once, as a named definition in a
trailing ``where`` clause, and referenced as ``@name``::

    [ns, pid -> htable (state -> htable @rec)
     ; state -> htable (ns, pid -> ilist @rec)] where @rec = {cpu}

Every ``@name`` reference resolves to the *same* node object, so the
parsed decomposition is a genuine DAG: instances materialise one shared
child per binding, reachable from every parent edge.  A definition may
reference names defined before it (the formatter emits definitions
innermost-first); ``where`` is reserved at the top level.

The grammar::

    text    := node [ 'where' binding (';' binding)* ]
    binding := '@' IDENT '=' node
    node    := unit | branch | '(' node ')' | edge | '@' IDENT
    unit    := '{' [ cols ] '}'
    branch  := '[' node (';' node)* ']'
    edge    := cols '->' IDENT node
    cols    := IDENT (',' IDENT)*

:func:`parse_decomposition` returns a validated
:class:`~repro.decomposition.model.Decomposition`;
:meth:`Decomposition.describe` renders back into this notation (and
``parse(format(d))`` preserves sharing by object identity).
"""

from __future__ import annotations

import re
from typing import List, NamedTuple, Optional

from ..core.errors import ParseError
from .model import Decomposition, DecompNode, MapEdge

__all__ = ["parse_decomposition", "tokenize"]


class Token(NamedTuple):
    kind: str
    text: str
    line: int
    column: int


_TOKEN_RE = re.compile(
    r"""
    (?P<ws>[ \t]+)
  | (?P<comment>\#[^\n]*)
  | (?P<newline>\n)
  | (?P<arrow>->)
  | (?P<ident>[A-Za-z_][A-Za-z0-9_]*)
  | (?P<punct>[{}\[\](),;@=])
    """,
    re.VERBOSE,
)


def tokenize(text: str) -> List[Token]:
    """Split *text* into tokens, tracking line/column for error reporting."""
    tokens: List[Token] = []
    line, line_start = 1, 0
    position = 0
    while position < len(text):
        match = _TOKEN_RE.match(text, position)
        if match is None:
            raise ParseError(
                f"unexpected character {text[position]!r}",
                line=line,
                column=position - line_start + 1,
            )
        kind = match.lastgroup or ""
        value = match.group()
        column = position - line_start + 1
        if kind == "newline":
            line += 1
            line_start = match.end()
        elif kind not in ("ws", "comment"):
            tokens.append(Token(kind, value, line, column))
        position = match.end()
    return tokens


class _Parser:
    def __init__(self, tokens: List[Token], text: str, env: Optional[dict] = None):
        self.tokens = tokens
        self.text = text
        self.position = 0
        #: Named nodes from the ``where`` clause, shared by reference.
        self.env: dict = env if env is not None else {}

    # -- token plumbing --------------------------------------------------------

    def peek(self) -> Optional[Token]:
        if self.position < len(self.tokens):
            return self.tokens[self.position]
        return None

    def advance(self) -> Token:
        token = self.peek()
        if token is None:
            raise ParseError("unexpected end of decomposition text")
        self.position += 1
        return token

    def expect(self, kind: str, text: Optional[str] = None) -> Token:
        token = self.peek()
        wanted = text if text is not None else kind
        if token is None:
            raise ParseError(f"expected {wanted!r} but the text ended")
        if token.kind != kind or (text is not None and token.text != text):
            raise ParseError(
                f"expected {wanted!r} but found {token.text!r}",
                line=token.line,
                column=token.column,
            )
        return self.advance()

    def at_punct(self, text: str) -> bool:
        token = self.peek()
        return token is not None and token.kind == "punct" and token.text == text

    # -- grammar ---------------------------------------------------------------

    def parse_node(self) -> DecompNode:
        token = self.peek()
        if token is None:
            raise ParseError("expected a decomposition node but the text ended")
        if self.at_punct("{"):
            return self.parse_unit()
        if self.at_punct("["):
            return self.parse_branch()
        if self.at_punct("("):
            self.advance()
            node = self.parse_node()
            self.expect("punct", ")")
            return node
        if self.at_punct("@"):
            return self.parse_reference()
        if token.kind == "ident":
            return self.parse_edge()
        raise ParseError(
            f"expected a unit '{{...}}', a branch '[...]', a '@name' reference, "
            f"or key columns, but found {token.text!r}",
            line=token.line,
            column=token.column,
        )

    def parse_reference(self) -> DecompNode:
        at = self.expect("punct", "@")
        name = self.expect("ident").text
        node = self.env.get(name)
        if node is None:
            known = ", ".join(sorted(self.env)) or "none defined yet"
            raise ParseError(
                f"reference to undefined shared node '@{name}' (known names: "
                f"{known}; a 'where' definition may only reference names "
                f"defined before it)",
                line=at.line,
                column=at.column,
            )
        return node

    def parse_unit(self) -> DecompNode:
        self.expect("punct", "{")
        names: List[str] = []
        if not self.at_punct("}"):
            names.append(self.expect("ident").text)
            while self.at_punct(","):
                self.advance()
                names.append(self.expect("ident").text)
        self.expect("punct", "}")
        return DecompNode(unit_columns=names)

    def parse_branch(self) -> DecompNode:
        opening = self.expect("punct", "[")
        edges: List[MapEdge] = []
        while True:
            node = self.parse_node()
            if node.is_unit:
                raise ParseError(
                    "a branch groups map edges; a unit leaf cannot be a branch "
                    "alternative",
                    line=opening.line,
                    column=opening.column,
                )
            edges.extend(node.edges)
            if self.at_punct(";"):
                self.advance()
                continue
            break
        self.expect("punct", "]")
        return DecompNode(edges=edges)

    def parse_edge(self) -> DecompNode:
        names = [self.expect("ident").text]
        while self.at_punct(","):
            self.advance()
            names.append(self.expect("ident").text)
        arrow = self.peek()
        if arrow is None or arrow.kind != "arrow":
            where = arrow if arrow is not None else self.tokens[self.position - 1]
            raise ParseError(
                f"expected '->' after key columns {', '.join(names)}",
                line=where.line,
                column=where.column,
            )
        self.advance()
        structure = self.expect("ident").text
        child = self.parse_node()
        return DecompNode(edges=(MapEdge(names, structure, child),))


def _split_where(tokens: List[Token]) -> "tuple[List[Token], Optional[List[Token]]]":
    """Split *tokens* at the first bracket-depth-zero ``where`` keyword.

    Returns ``(main_tokens, definition_tokens)``; the second element is
    ``None`` when the text has no ``where`` clause (as opposed to an empty
    clause, which is an error).  ``where`` is a reserved word at the top
    level of the notation.
    """
    depth = 0
    for index, token in enumerate(tokens):
        if token.kind == "punct" and token.text in "([{":
            depth += 1
        elif token.kind == "punct" and token.text in ")]}":
            depth -= 1
        elif token.kind == "ident" and token.text == "where" and depth == 0:
            return tokens[:index], tokens[index + 1 :]
    return tokens, None


def _parse_definitions(tokens: List[Token], text: str) -> dict:
    """Parse the ``where`` clause: ``@name = node (';' @name = node)*``.

    Each definition is parsed with the environment built so far, so
    definitions may reference earlier names (the formatter emits them
    innermost-first).  Returns the name → node environment.
    """
    if not tokens:
        raise ParseError("'where' must be followed by at least one '@name = ...' definition")
    env: dict = {}
    parser = _Parser(tokens, text, env)
    while True:
        at = parser.expect("punct", "@")
        name = parser.expect("ident").text
        if name in env:
            raise ParseError(
                f"shared node '@{name}' is defined twice in the 'where' clause",
                line=at.line,
                column=at.column,
            )
        parser.expect("punct", "=")
        env[name] = parser.parse_node()
        if parser.at_punct(";"):
            parser.advance()
            continue
        break
    leftover = parser.peek()
    if leftover is not None:
        raise ParseError(
            f"unexpected trailing text in the 'where' clause starting at "
            f"{leftover.text!r}",
            line=leftover.line,
            column=leftover.column,
        )
    return env


def parse_decomposition(text: str, name: str = "decomposition") -> Decomposition:
    """Parse the textual decomposition notation into a :class:`Decomposition`.

    ``@name`` references resolve to the node objects defined in the
    trailing ``where`` clause — every reference to one name yields the
    *same* :class:`~repro.decomposition.model.DecompNode` object, so shared
    sub-nodes survive parsing by identity.

    Raises:
        ParseError: on malformed text (with line/column information).
        DecompositionError: when the parsed shape is structurally invalid
            (unknown structure name, re-bound columns, ...).
    """
    tokens = tokenize(text)
    if not tokens:
        raise ParseError("empty decomposition text")
    main_tokens, definition_tokens = _split_where(tokens)
    if not main_tokens:
        raise ParseError("expected a decomposition node before 'where'")
    env = (
        _parse_definitions(definition_tokens, text)
        if definition_tokens is not None
        else {}
    )
    parser = _Parser(main_tokens, text, env)
    root = parser.parse_node()
    leftover = parser.peek()
    if leftover is not None:
        raise ParseError(
            f"unexpected trailing text starting at {leftover.text!r}",
            line=leftover.line,
            column=leftover.column,
        )
    return Decomposition(root, name=name)
