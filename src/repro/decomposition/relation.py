"""``DecomposedRelation`` — the relational interface over a decomposition.

This is the paper's synthesized representation as an interpreter: the five
relational operations of Section 2 executed against a
:class:`~repro.decomposition.instance.DecompositionInstance` through query
plans.  It is interchangeable with
:class:`~repro.core.reference.ReferenceRelation` — the randomized
differential tests in ``tests/test_differential.py`` drive both through
identical operation sequences and assert ``α`` agrees after every step
(Theorem 5's dynamic counterpart).
"""

from __future__ import annotations

from typing import Dict, Iterable, List, Mapping, Union

from ..core.columns import ColumnSet, columns
from ..core.errors import FunctionalDependencyError, IntegrityError
from ..core.interface import RelationInterface, coerce_tuple
from ..core.relation import Relation
from ..core.spec import RelationSpec
from ..core.tuples import Tuple
from .instance import DecompositionInstance
from .model import Decomposition
from .parser import parse_decomposition
from .plan import (
    AnyPlan,
    LookupStep,
    QueryPlan,
    execute_plan,
    plan_query,
    residual_update_columns,
)

__all__ = ["DecomposedRelation"]


class DecomposedRelation(RelationInterface):
    """A mutable relation stored according to a decomposition.

    Parameters:
        spec: the relational specification ``(C, ∆)``.
        decomposition: a :class:`Decomposition` or a string in the textual
            notation of :mod:`repro.decomposition.parser`; it must be
            adequate for *spec* (:class:`~repro.core.errors.AdequacyError`
            is raised otherwise).
        enforce_fds: when ``True`` (default), ``insert`` and ``update``
            raise :class:`~repro.core.errors.FunctionalDependencyError`
            rather than perform an FD-violating operation, mirroring
            :class:`~repro.core.reference.ReferenceRelation`.  When
            ``False``, an FD-violating insert silently evicts the
            conflicting tuples (last-writer-wins, in every branch) — the
            structural behaviour of the representation, which can only
            hold FD-satisfying relations; see
            :class:`~repro.core.interface.RelationInterface` for the
            cross-tier contract.  The eviction is driven by the
            specification's FDs, not only by unit-binding collisions:
            a fully-bound layout (empty units) has no structural
            collisions, yet must still agree with the other tiers.
    """

    def __init__(
        self,
        spec: RelationSpec,
        decomposition: Union[Decomposition, str],
        enforce_fds: bool = True,
    ):
        if isinstance(decomposition, str):
            decomposition = parse_decomposition(decomposition)
        self.spec = spec
        self.decomposition = decomposition
        self.enforce_fds = enforce_fds
        self.instance = DecompositionInstance(decomposition, spec)
        self._plan_cache: Dict[ColumnSet, AnyPlan] = {}
        self._plan_signature = self.instance.size_signature()
        self._plan_version = self.instance._version
        #: Columns ``update`` may rewrite in place (fixed per layout).
        self._resid_safe = residual_update_columns(decomposition, spec)

    # -- planning ---------------------------------------------------------------

    def plan_for(self, pattern_columns: Union[str, Iterable[str], ColumnSet]) -> AnyPlan:
        """The (cached) plan used for patterns over *pattern_columns*.

        Plans are chosen against the instance's *live* container sizes
        (:meth:`DecompositionInstance.edge_sizes`) and cached per size-class
        signature: when any container's size class changes (crosses a power
        of two), the cache is invalidated and subsequent patterns are
        re-planned — so index-vs-scan choices track the data actually
        stored, not the symbolic :data:`~repro.decomposition.plan.DEFAULT_COST_SIZE`.

        The signature itself is only recomputed when the instance's
        mutation stamp has moved since the last call — a run of queries
        with no intervening mutation resolves its plans with two attribute
        reads and one dict probe.
        """
        version = self.instance._version
        if version != self._plan_version:
            self._plan_version = version
            signature = self.instance.size_signature()
            if signature != self._plan_signature:
                self._plan_cache.clear()
                self._plan_signature = signature
        key = columns(pattern_columns)
        plan = self._plan_cache.get(key)
        if plan is None:
            plan = plan_query(
                self.decomposition,
                key,
                sizes=self.instance.edge_sizes(),
                spec=self.spec,
            )
            self._plan_cache[key] = plan
        return plan

    def _matches(self, pattern: Tuple) -> List[Tuple]:
        """All full tuples extending *pattern* (deduplicated)."""
        plan = self.plan_for(pattern.columns)
        return list(dict.fromkeys(execute_plan(plan, self.instance, pattern)))

    # -- the five operations ----------------------------------------------------

    def insert(self, tup: Union[Tuple, Mapping]) -> None:
        tup = coerce_tuple(tup)
        self.spec.check_full_tuple(tup)
        if self._matches(tup):
            return  # Already present: insert is idempotent.
        if self.enforce_fds:
            for fd in self.spec.fds:
                for existing in self._matches(tup.project(fd.lhs)):
                    if existing.project(fd.rhs) != tup.project(fd.rhs):
                        raise FunctionalDependencyError(
                            f"inserting {tup!r} would violate {fd!r}"
                        )
        else:
            evicted = self._evict_fd_conflicts(tup)
            try:
                self.instance.insert_tuple(tup)
            except BaseException as exc:
                self._undo_ops([("rem", t) for t in evicted], exc)
                raise
            return
        self.instance.insert_tuple(tup)

    def _undo_ops(self, done: List, cause: BaseException) -> None:
        """Invert the completed sub-operations of a failed relational op.

        ``insert_tuple``/``remove_tuple`` are each individually atomic (they
        roll themselves back on failure), so restoring the operation as a
        whole means inverting the *completed* calls in reverse order.  A
        failure while inverting leaves the relation inconsistent and is
        reported as :class:`~repro.core.errors.IntegrityError` with the
        original failure as ``__cause__`` (injected faults are one-shot, so
        this path is unreachable under the fault harness).
        """
        try:
            for kind, tup in reversed(done):
                if kind == "rem":
                    self.instance.insert_tuple(tup)
                else:
                    self.instance.remove_tuple(tup)
        except BaseException:
            raise IntegrityError(
                "rollback of a failed relational operation could not restore "
                "the previous state; the relation may be corrupt"
            ) from cause

    def _evict_fd_conflicts(self, tup: Tuple) -> List[Tuple]:
        """Remove every stored tuple FD-conflicting with *tup* (the
        last-writer-wins semantics of ``enforce_fds=False``); returns the
        evicted tuples so a failing caller can reinsert them.

        ``insert_tuple`` already displaces tuples sharing a *unit binding*,
        but that structural notion depends on the layout — a fully-bound
        decomposition has empty units and displaces nothing — so the
        eviction is done here against the specification's FDs, keeping all
        layouts and tiers in agreement.  Strongly exception safe: a failure
        mid-eviction reinserts the tuples already evicted, then propagates.
        """
        removed: List[Tuple] = []
        try:
            for fd in self.spec.fds:
                rhs_value = tup.project(fd.rhs)
                for existing in self._matches(tup.project(fd.lhs)):
                    if existing.project(fd.rhs) != rhs_value:
                        self.instance.remove_tuple(existing)
                        removed.append(existing)
        except BaseException as exc:
            self._undo_ops([("rem", t) for t in removed], exc)
            raise
        return removed

    def remove(self, pattern: Union[Tuple, Mapping, None] = None) -> None:
        """Remove every tuple extending *pattern*.

        Victims are found through the cheapest branch only (the plan chosen
        by :meth:`plan_for` — e.g. one hash lookup when the pattern binds a
        key); the other branches are never scanned for victims.  Per
        victim, ``remove_tuple`` unlinks the remaining branches directly:
        shared children resolve through the instance's registry and
        intrusive containers unlink in O(1), so a multi-branch removal on a
        shared layout costs O(1) per branch instead of a per-branch scan.
        """
        pattern = coerce_tuple(pattern)
        self.spec.check_partial_tuple(pattern, role="removal pattern")
        plan = self.plan_for(pattern.columns)
        if type(plan) is QueryPlan and all(
            type(step) is LookupStep for step in plan.steps
        ):
            # Fully-indexed pattern: every step is a keyed lookup, so the
            # descent reaches at most one unit leaf — remove the single
            # victim straight off the generator, with no victim list and no
            # outer journal (``remove_tuple`` is itself atomic).  The probe
            # sequence is identical to the materialising path.
            victim = next(execute_plan(plan, self.instance, pattern), None)
            if victim is not None:
                self.instance.remove_tuple(victim)
            return
        removed: List[Tuple] = []
        try:
            for victim in self._matches(pattern):
                self.instance.remove_tuple(victim)
                removed.append(victim)
        except BaseException as exc:
            self._undo_ops([("rem", t) for t in removed], exc)
            raise

    def update(self, pattern: Union[Tuple, Mapping], changes: Union[Tuple, Mapping]) -> None:
        pattern = coerce_tuple(pattern)
        changes = coerce_tuple(changes)
        self.spec.check_partial_tuple(pattern, role="update pattern")
        self.spec.check_partial_tuple(changes, role="update changes")
        if not changes.columns:
            return
        victims = self._matches(pattern)
        if not victims:
            return
        if changes.columns <= self._resid_safe:
            # Residual-only changes: no container key moves and no FD can
            # become violated (see ``residual_update_columns``), so the
            # victims are rewritten in place — state-identical to the
            # remove/re-insert below in both FD modes, without the churn.
            self.instance.update_residuals(victims, changes)
            return
        merged = [victim.merge(changes) for victim in victims]
        if self.enforce_fds:
            # Only FD groups containing a merged tuple can become violated:
            # untouched tuples keep their values and were mutually consistent
            # before the update.  Check each reachable group through indexed
            # queries instead of rescanning the whole relation.
            victim_set = set(victims)
            for fd in self.spec.fds:
                groups: Dict[Tuple, Tuple] = {}
                for tup in merged:
                    lhs_value = tup.project(fd.lhs)
                    rhs_value = tup.project(fd.rhs)
                    first = groups.setdefault(lhs_value, rhs_value)
                    if first != rhs_value:
                        raise FunctionalDependencyError(
                            f"update with pattern {pattern!r} and changes {changes!r} "
                            f"would merge tuples into conflicting values for {fd!r}"
                        )
                for lhs_value, rhs_value in groups.items():
                    for existing in self._matches(lhs_value):
                        if existing in victim_set:
                            continue
                        if existing.project(fd.rhs) != rhs_value:
                            raise FunctionalDependencyError(
                                f"update with pattern {pattern!r} and changes "
                                f"{changes!r} would violate {fd!r} against {existing!r}"
                            )
        done: List = []
        try:
            for victim in victims:
                self.instance.remove_tuple(victim)
                done.append(("rem", victim))
            if self.enforce_fds:
                for tup in merged:
                    # A merged tuple can coincide with a row that was already
                    # stored (and was not a victim); the insert is then a
                    # no-op and must NOT be journalled — undoing it would
                    # delete the pre-existing row.  The O(1) count delta
                    # tells the two cases apart without extra probes.
                    before = len(self.instance)
                    self.instance.insert_tuple(tup)
                    if len(self.instance) != before:
                        done.append(("ins", tup))
            else:
                # Canonical re-insertion order: colliding merges must resolve
                # to the same winner in every tier, independent of container
                # iteration order (see RelationInterface).
                for tup in sorted(dict.fromkeys(merged), key=Tuple.sort_key):
                    for evicted in self._evict_fd_conflicts(tup):
                        done.append(("rem", evicted))
                    before = len(self.instance)
                    self.instance.insert_tuple(tup)
                    if len(self.instance) != before:
                        done.append(("ins", tup))
        except BaseException as exc:
            self._undo_ops(done, exc)
            raise

    def query(
        self,
        pattern: Union[Tuple, Mapping, None] = None,
        output: Union[str, Iterable[str], None] = None,
    ) -> List[Tuple]:
        pattern = coerce_tuple(pattern)
        self.spec.check_partial_tuple(pattern, role="query pattern")
        if output is None:
            wanted = self.spec.columns
        else:
            wanted = self.spec.check_output_columns(output)
        results = {t.project(wanted) for t in self._matches(pattern)}
        return list(results)

    def query_range(self, column, lo=None, hi=None) -> List[Tuple]:
        """Ordered range scan over *column* (see :class:`RelationInterface`).

        When the root holds an **ordered** edge keyed by exactly *column*
        (e.g. ``ts -> avl ...``), the scan descends that container's
        :meth:`~repro.structures.base.AssociativeContainer.items_range`
        fast path — O(log n) boundary probes plus the in-range subtrees —
        instead of filtering a full scan.  Key groups arrive in ascending
        key order; each group is sorted by tuple sort key, matching the
        generic tier-independent ordering bit for bit.
        """
        wanted = self.spec.check_output_columns(column)
        root = self.instance.root
        for container, e in zip(root.containers, root.node.edges):
            if e.key == wanted and e.structure_class().ORDERED:
                lo_bound = Tuple({column: lo}) if lo is not None else None
                hi_bound = Tuple({column: hi}) if hi is not None else None
                results: List[Tuple] = []
                for key, child in container.items_range(lo_bound, hi_bound):
                    results.extend(
                        sorted(self.instance._iter(child, key), key=Tuple.sort_key)
                    )
                return results
        return super().query_range(column, lo, hi)

    # -- inspection -------------------------------------------------------------

    def to_relation(self) -> Relation:
        return self.instance.alpha()

    def checkpoint(self) -> Relation:
        """Alias of :meth:`to_relation`, used by differential tests."""
        return self.to_relation()

    def check_well_formed(self) -> None:
        """Check the underlying instance (delegates to Figure 5's rules)."""
        self.instance.check_well_formed()

    def __len__(self) -> int:
        """O(1): delegates to the instance's incremental tuple count."""
        return len(self.instance)

    def is_empty(self) -> bool:
        """O(1) via the incremental tuple count."""
        return self.instance.is_empty()

    def __repr__(self) -> str:
        return (
            f"DecomposedRelation(spec={self.spec.name!r}, "
            f"decomposition={self.decomposition.describe()!r}, size={len(self)})"
        )
