"""Decomposition instances: populated container hierarchies, α, well-formedness.

A :class:`DecompositionInstance` is the run-time object graph described by a
:class:`~repro.decomposition.model.Decomposition`: one
:class:`NodeInstance` per (node, binding) pair, each internal instance
holding one primitive container per outgoing edge, each leaf instance
holding at most one unit tuple.

**Node sharing** (Section 3): a decomposition node reached through several
parent edges materialises as *one* :class:`NodeInstance` per binding of its
bound columns, reachable from every parent container — the paper's
scheduler records, pointed at by both the ``ns, pid`` hash index and the
per-``state`` lists.  The instance keeps a per-shared-node registry mapping
bound-column bindings to their unique ``NodeInstance``; mutators use it to

* link a freshly created shared child into every parent container with
  :meth:`~repro.structures.base.AssociativeContainer.insert_unique`
  (constant time on intrusive containers — no duplicate search), and
* unlink an emptied shared child from every parent with
  :meth:`~repro.structures.base.AssociativeContainer.remove_value`
  (constant time on intrusive containers — no per-branch victim scan).

The registry itself is bookkeeping, not a container: it models the record
pointer real generated code would already hold, so registry probes are not
charged to the :class:`~repro.structures.base.OperationCounter` (the
compiled tier's registry is likewise uncounted, keeping the tiers
comparable).

Three pieces of the formal development live here:

* the **abstraction function** ``α`` (:meth:`DecompositionInstance.alpha`),
  which reads the represented relation back out of the containers;
* **instance well-formedness** (Figure 5,
  :meth:`DecompositionInstance.check_well_formed`): container keys must be
  valuations of their edge's key columns, unit tuples valuations of their
  leaf's unit columns, for branching nodes every outgoing edge must
  represent exactly the *projection* of the primary branch's tuples onto
  its own covered columns (full-coverage branches therefore agree
  exactly; a key-projection branch holds the key subset — see
  :mod:`repro.decomposition.adequacy`), and — the sharing invariant —
  every parent edge of a shared node must reference the *same* object for
  one binding;
* the primitive **mutators** ``insert_tuple`` / ``remove_tuple`` used by
  :class:`~repro.decomposition.relation.DecomposedRelation` to implement
  the relational operations.

The mutators take *full* tuples; pattern-based operations are resolved into
full tuples by query plans first (:mod:`repro.decomposition.plan`).
"""

from __future__ import annotations

from typing import Dict, Iterator, List, Optional, Set, Tuple as PyTuple

from ..core.columns import ColumnSet
from ..core.errors import IntegrityError, WellFormednessError
from ..core.relation import Relation
from ..core.spec import RelationSpec
from ..core.tuples import Tuple
from ..faults import FAULTS, register_site
from ..structures.base import MISSING, AssociativeContainer
from ..structures.registry import size_class
from .adequacy import check_adequacy
from .model import Decomposition, DecompNode, MapEdge

__all__ = ["NodeInstance", "DecompositionInstance"]

#: The interpreted mutators' interleaving points, one injection site each —
#: deliberately placed *after* some structural steps have been applied, so
#: an armed fault exercises the undo journal rather than the trivial
#: nothing-done-yet prefix.
for _site in (
    "instance.insert.unit",
    "instance.insert.registry",
    "instance.insert.link_shared",
    "instance.insert.child_create",
    "instance.remove.unit",
    "instance.remove.unlink_shared",
    "instance.remove.registry_pop",
    "instance.remove.prune",
    "instance.update.residual",
):
    register_site(_site)


class NodeInstance:
    """The run-time materialisation of one decomposition node for one binding."""

    __slots__ = ("node", "containers", "unit_value", "intrusive_links")

    def __init__(self, node: DecompNode):
        self.node = node
        #: One container per outgoing edge (empty for unit leaves), packed
        #: as a tuple — the set of edges is fixed by the decomposition, so
        #: the slot never changes shape after construction.
        self.containers: PyTuple[AssociativeContainer, ...] = tuple(
            e.structure_class()() for e in node.edges
        )
        #: The stored tuple of a unit leaf (``None`` when the leaf is empty).
        self.unit_value: Optional[Tuple] = None
        #: Link fields for intrusive parent containers (``ilist``), created
        #: on demand by the container — the in-object links that make
        #: removal-by-value O(1), per ``boost::intrusive``.
        self.intrusive_links: Optional[dict] = None

    def __repr__(self) -> str:
        if self.node.is_unit:
            return f"NodeInstance(unit={self.unit_value!r})"
        sizes = ", ".join(str(len(c)) for c in self.containers)
        return f"NodeInstance(containers=[{sizes}])"


class _OpContext:
    """Per-operation scratch state for DAG-aware mutator walks."""

    __slots__ = ("created", "visited", "removals", "resolved", "undo")

    def __init__(self) -> None:
        #: Undo journal: inverse operations recorded *after* each successful
        #: structural mutation, replayed in reverse if the operation fails
        #: mid-walk.  Entries are small tagged tuples (see
        #: ``DecompositionInstance._rollback``) so the happy path pays one
        #: list append per mutation and zero counted accesses.
        self.undo: List[PyTuple] = []
        #: ids of shared NodeInstances created by this operation — they
        #: still need linking into each parent container as the walk
        #: reaches it (a registry hit from an *earlier* operation is
        #: already linked everywhere, by well-formedness).
        self.created: Set[int] = set()
        #: ids of shared NodeInstances whose subtree this operation has
        #: already descended into (descend once, link/unlink per parent).
        self.visited: Set[int] = set()
        #: id(child) → (removed, now_empty) results memoised across the
        #: parents of a shared child during one removal.
        self.removals: Dict[int, "tuple[bool, bool]"] = {}
        #: (id(node), binding) → NodeInstance resolved during this removal.
        #: The first parent that empties a shared child pops its registry
        #: entry; later parents must still reach the same object to unlink
        #: it from their own containers.
        self.resolved: Dict["tuple[int, Tuple]", NodeInstance] = {}


class DecompositionInstance:
    """A populated instance of an adequate decomposition.

    Construction checks adequacy against *spec* (raising
    :class:`~repro.core.errors.AdequacyError` otherwise), so every instance
    in the system is an instance of an adequate decomposition — the
    precondition of the paper's soundness theorem.  Adequacy also
    guarantees every shared node has a single bound column set, which is
    what makes the per-shared-node registries below well-defined.
    """

    __slots__ = (
        "decomposition",
        "spec",
        "root",
        "_edges",
        "_tuple_count",
        "edge_entries",
        "edge_containers",
        "_shared_bound",
        "_shared",
        "_version",
    )

    def __init__(self, decomposition: Decomposition, spec: RelationSpec):
        check_adequacy(decomposition, spec)
        self.decomposition = decomposition
        self.spec = spec
        #: Every distinct edge, in deterministic pre-order — the index space
        #: of the live-size statistics below.
        self._edges: PyTuple[MapEdge, ...] = tuple(
            e for node in decomposition.nodes() for e in node.edges
        )
        #: ``id(node)`` → bound column set, for every shared node.
        self._shared_bound: Dict[int, ColumnSet] = {
            id(node): decomposition.shared_bound(node)
            for node in decomposition.shared_nodes()
        }
        self.root = NodeInstance(decomposition.root)
        self._reset_stats()

    def _reset_stats(self) -> None:
        """(Re-)initialise the incremental tuple count, per-edge sizes, and
        the shared-node registries."""
        self._tuple_count = 0
        #: Monotonic mutation stamp: bumped by every completed mutator call
        #: (and by :meth:`clear`).  ``DecomposedRelation.plan_for`` keys its
        #: cached size signature on it, so a run of queries with no
        #: intervening mutation recomputes no per-edge statistics.  Never
        #: reset — a cleared instance must still look *changed* to a caller
        #: holding an old stamp.
        self._version = getattr(self, "_version", 0) + 1
        #: Total entries across every container materialised for an edge.
        self.edge_entries: Dict[MapEdge, int] = {e: 0 for e in self._edges}
        #: Number of containers materialised for an edge.
        self.edge_containers: Dict[MapEdge, int] = {e: 0 for e in self._edges}
        for e in self.decomposition.root.edges:
            self.edge_containers[e] = 1
        #: ``id(node)`` → {binding → NodeInstance}: the unique sub-instance
        #: of each shared node per valuation of its bound columns.
        self._shared: Dict[int, Dict[Tuple, NodeInstance]] = {
            nid: {} for nid in self._shared_bound
        }

    # -- mutators ---------------------------------------------------------------

    def insert_tuple(self, tup: Tuple) -> None:
        """Insert a full tuple, materialising missing sub-instances.

        If a unit reached by the tuple's binding already holds a different
        residual value, the old tuple is first removed from *every* branch
        and then replaced (last-writer-wins) — the structural counterpart
        of an FD violation.  Removing first keeps branching decompositions
        consistent: overwriting in place would leave the displaced tuple's
        entries alive under sibling branches' keys.  Callers that must
        surface FD violations instead (``DecomposedRelation`` with
        ``enforce_fds=True``) check before calling.

        **Strong exception safety**: if any structural step fails (e.g. an
        injected fault inside a container mutator), every edge link,
        registry entry, unit write and bookkeeping delta already applied —
        including those of conflict evictions — is undone in reverse order,
        then the failure propagates: the instance is left exactly as before
        the call.  A failure *during* that rollback raises
        :class:`~repro.core.errors.IntegrityError` instead.
        """
        ctx = _OpContext()
        try:
            self._insert_with_evictions(tup, ctx)
        except BaseException as exc:
            self._rollback(ctx, exc)
            raise
        self._version += 1

    def _insert_with_evictions(self, tup: Tuple, ctx: _OpContext) -> None:
        for conflict in sorted(
            self._conflicts(self.root, tup, Tuple.empty()), key=Tuple.sort_key
        ):
            if conflict.columns == self.spec.columns:
                self._remove_journalled(conflict, ctx)
                continue
            # A conflict surfaced on a key-projection branch is only a
            # projection of its stored tuple; resolve it to the full
            # tuple(s) through the primary branch before removing.  Rare
            # path: DecomposedRelation evicts spec-FD conflicts before
            # calling insert_tuple, so this triggers only for direct
            # instance use.
            for victim in [t for t in self.iter_tuples() if t.extends(conflict)]:
                self._remove_journalled(victim, ctx)
        if self._insert(self.root, tup, ctx):
            self._tuple_count += 1

    def _remove_journalled(self, tup: Tuple, ctx: _OpContext) -> bool:
        """Remove *tup* appending inverse steps to *ctx*'s journal.

        The removal walk gets a fresh context (the DAG memoisation in
        ``removals``/``resolved`` is only valid within one walk) but shares
        the caller's undo journal, so a later failure in the enclosing
        operation also restores everything this eviction removed.
        """
        sub = _OpContext()
        sub.undo = ctx.undo
        removed, _ = self._remove(self.root, tup, sub)
        if removed:
            self._tuple_count -= 1
            ctx.undo.append(("count", 1))
        return removed

    def _conflicts(self, instance: NodeInstance, tup: Tuple, binding: Tuple) -> Set[Tuple]:
        """Existing tuples that share a unit binding with *tup* but differ."""
        node = instance.node
        if node.is_unit:
            if instance.unit_value is not None and instance.unit_value != tup.project(
                node.unit_columns
            ):
                return {binding.merge(instance.unit_value)}
            return set()
        found: Set[Tuple] = set()
        for container, e in zip(instance.containers, node.edges):
            key = tup.project(e.key)
            child = self._lookup_child(container, e, tup)
            if child is not MISSING:
                found |= self._conflicts(child, tup, binding.merge(key))
        return found

    def _lookup_child(self, container: AssociativeContainer, e: MapEdge, tup: Tuple):
        """The child instance *tup* reaches through edge *e*, or MISSING.

        Shared children resolve through the registry — the O(1) record
        pointer the paper's intrusive lowering holds — instead of a
        container probe (which would be a linear scan on list containers).
        """
        bound = self._shared_bound.get(id(e.child))
        if bound is not None:
            child = self._shared[id(e.child)].get(tup.project(bound))
            return MISSING if child is None else child
        return container.lookup(tup.project(e.key))

    def _insert(self, instance: NodeInstance, tup: Tuple, ctx: _OpContext) -> bool:
        """Insert below *instance*; return whether the tuple is new (judged
        on the primary branch — well-formed instances agree across branches)."""
        node = instance.node
        if node.is_unit:
            if FAULTS.active:
                FAULTS.check("instance.insert.unit")
            added = instance.unit_value is None
            ctx.undo.append(("unit", instance, instance.unit_value))
            instance.unit_value = tup.project(node.unit_columns)
            return added
        added = False
        for index, (container, e) in enumerate(zip(instance.containers, node.edges)):
            key = tup.project(e.key)
            bound = self._shared_bound.get(id(e.child))
            if bound is not None:
                registry = self._shared[id(e.child)]
                binding = tup.project(bound)
                child = registry.get(binding)
                if child is None:
                    if FAULTS.active:
                        FAULTS.check("instance.insert.registry")
                    child = NodeInstance(e.child)
                    registry[binding] = child
                    ctx.undo.append(("reg_del", registry, binding))
                    ctx.created.add(id(child))
                    for f in e.child.edges:
                        self.edge_containers[f] += 1
                        ctx.undo.append(("ec", f, -1))
                if id(child) in ctx.created:
                    # Fresh this operation: link into this parent too.  A
                    # registry hit from an earlier operation is already in
                    # every parent container (well-formedness), so no
                    # duplicate search is ever needed.
                    if FAULTS.active:
                        FAULTS.check("instance.insert.link_shared")
                    container.insert_unique(key, child)
                    ctx.undo.append(("unlink", container, key, child))
                    self.edge_entries[e] += 1
                    ctx.undo.append(("ee", e, -1))
                if id(child) not in ctx.visited:
                    ctx.visited.add(id(child))
                    child_added = self._insert(child, tup, ctx)
                else:
                    child_added = False  # Subtree already updated this op.
            else:
                child = container.lookup(key)
                if child is MISSING:
                    if FAULTS.active:
                        FAULTS.check("instance.insert.child_create")
                    child = NodeInstance(e.child)
                    container.insert(key, child)
                    ctx.undo.append(("rm", container, key))
                    self.edge_entries[e] += 1
                    ctx.undo.append(("ee", e, -1))
                    for f in e.child.edges:
                        self.edge_containers[f] += 1
                        ctx.undo.append(("ec", f, -1))
                child_added = self._insert(child, tup, ctx)
            if index == 0:
                added = child_added
        return added

    def remove_tuple(self, tup: Tuple) -> bool:
        """Remove a full tuple; prune sub-instances that become empty.

        Returns ``True`` when the tuple was present (in the primary branch —
        well-formed instances agree across branches).  Shared children are
        resolved through the registry and unlinked from each parent with
        ``remove_value`` — O(1) on intrusive containers, so a multi-branch
        removal pays no per-branch victim scan.

        Strongly exception safe: a failure mid-walk undoes every unlink,
        registry pop and unit clear already applied before propagating (see
        :meth:`insert_tuple`).
        """
        ctx = _OpContext()
        try:
            removed, _ = self._remove(self.root, tup, ctx)
        except BaseException as exc:
            self._rollback(ctx, exc)
            raise
        if removed:
            self._tuple_count -= 1
            self._version += 1
        return removed

    def _rollback(self, ctx: _OpContext, cause: BaseException) -> None:
        """Replay *ctx*'s undo journal in reverse, restoring the pre-op state.

        Journal entries are tagged inverse steps recorded after each
        successful mutation; replaying them newest-first unwinds the partial
        operation exactly.  Container calls made here may recurse into
        instrumented mutators, but injected faults are one-shot (disarmed
        before raising) so a rollback never re-faults.  If the rollback
        itself fails the instance may be corrupt, which is the one
        non-recoverable outcome — reported as
        :class:`~repro.core.errors.IntegrityError` with the original
        failure as ``__cause__``.
        """
        try:
            for entry in reversed(ctx.undo):
                tag = entry[0]
                if tag == "unit":  # restore a unit leaf's previous tuple
                    entry[1].unit_value = entry[2]
                elif tag == "rm":  # undo a fresh non-shared insert
                    entry[1].remove(entry[2])
                elif tag == "ins":  # undo a non-shared remove (child held)
                    entry[1].insert(entry[2], entry[3])
                elif tag == "unlink":  # undo a shared insert_unique
                    entry[1].remove_value(entry[2], entry[3])
                elif tag == "link":  # undo a shared remove_value
                    entry[1].insert_unique(entry[2], entry[3])
                elif tag == "reg_del":  # undo a registry entry creation
                    entry[1].pop(entry[2], None)
                elif tag == "reg_set":  # undo a registry pop
                    entry[1][entry[2]] = entry[3]
                elif tag == "ee":  # undo an edge_entries delta
                    self.edge_entries[entry[1]] += entry[2]
                elif tag == "ec":  # undo an edge_containers delta
                    self.edge_containers[entry[1]] += entry[2]
                elif tag == "count":  # undo a journalled eviction's count
                    self._tuple_count += entry[1]
        except BaseException:
            raise IntegrityError(
                "rollback after a failed mutator could not restore the "
                "previous instance state; the instance may be corrupt"
            ) from cause
        ctx.undo.clear()

    def _remove(
        self, instance: NodeInstance, tup: Tuple, ctx: _OpContext
    ) -> "tuple[bool, bool]":
        """Remove *tup* below *instance*; return ``(removed, now_empty)``."""
        node = instance.node
        if node.is_unit:
            if instance.unit_value is not None and instance.unit_value == tup.project(
                node.unit_columns
            ):
                if FAULTS.active:
                    FAULTS.check("instance.remove.unit")
                ctx.undo.append(("unit", instance, instance.unit_value))
                instance.unit_value = None
                return True, True
            return False, instance.unit_value is None
        removed = False
        empty = True
        for container, e in zip(instance.containers, node.edges):
            key = tup.project(e.key)
            bound = self._shared_bound.get(id(e.child))
            if bound is not None:
                registry = self._shared[id(e.child)]
                binding = tup.project(bound)
                resolved_key = (id(e.child), binding)
                child = ctx.resolved.get(resolved_key)
                if child is None:
                    child = registry.get(binding)
                    if child is not None:
                        ctx.resolved[resolved_key] = child
                if child is not None:
                    result = ctx.removals.get(id(child))
                    if result is None:
                        result = self._remove(child, tup, ctx)
                        ctx.removals[id(child)] = result
                    child_removed, child_empty = result
                    removed = removed or child_removed
                    if child_empty:
                        if FAULTS.active:
                            FAULTS.check("instance.remove.unlink_shared")
                        container.remove_value(key, child)
                        ctx.undo.append(("link", container, key, child))
                        self.edge_entries[e] -= 1
                        ctx.undo.append(("ee", e, 1))
                        if FAULTS.active:
                            FAULTS.check("instance.remove.registry_pop")
                        if registry.pop(binding, None) is not None:
                            ctx.undo.append(("reg_set", registry, binding, child))
                            for f in e.child.edges:
                                self.edge_containers[f] -= 1
                                ctx.undo.append(("ec", f, 1))
            else:
                child = container.lookup(key)
                if child is not MISSING:
                    child_removed, child_empty = self._remove(child, tup, ctx)
                    removed = removed or child_removed
                    if child_empty:
                        # Key-based removal: a non-shared child was found by
                        # key, and erasing it pays the structure's key cost
                        # again — ``remove_value``'s O(1) unlink is reserved
                        # for the shared path above, where the record is
                        # held by reference (otherwise ``ilist`` would beat
                        # ``dlist`` on ordinary edges and the enumerator's
                        # cost-class collapse would be unsound).
                        if FAULTS.active:
                            FAULTS.check("instance.remove.prune")
                        container.remove(key)
                        ctx.undo.append(("ins", container, key, child))
                        self.edge_entries[e] -= 1
                        ctx.undo.append(("ee", e, 1))
                        for f in child.node.edges:
                            self.edge_containers[f] -= 1
                            ctx.undo.append(("ec", f, 1))
            if len(container):
                empty = False
        return removed, empty

    def update_residuals(self, victims: List[Tuple], changes: Tuple) -> None:
        """Rewrite residual-only columns of *victims* in place — the batch
        update path.

        *changes* must touch only columns outside every edge key (callers
        gate on :func:`repro.decomposition.plan.residual_update_columns`),
        so no container key, shared-node binding, branch membership or edge
        size can change: each victim's unit leaves holding a changed column
        are located through the ordinary counted descent and their unit
        tuples replaced, with no remove/re-insert churn.  Only branches
        whose coverage reaches a changed column are descended — a
        key-projection branch stores no residuals and is skipped outright.

        Strongly exception safe like the other mutators: unit writes are
        journalled and rolled back in reverse on failure.
        """
        changed = changes.columns
        coverage = self.decomposition.edge_coverage
        reaches = {e: bool(coverage(e) & changed) for e in self._edges}
        ctx = _OpContext()
        try:
            for tup in victims:
                ctx.visited.clear()
                self._update_residual(self.root, tup, changes, changed, reaches, ctx)
        except BaseException as exc:
            self._rollback(ctx, exc)
            raise
        self._version += 1

    def _update_residual(
        self,
        instance: NodeInstance,
        tup: Tuple,
        changes: Tuple,
        changed: ColumnSet,
        reaches: Dict[MapEdge, bool],
        ctx: _OpContext,
    ) -> None:
        node = instance.node
        if node.is_unit:
            value = instance.unit_value
            touched = node.unit_columns & changed
            if value is not None and touched:
                if FAULTS.active:
                    FAULTS.check("instance.update.residual")
                ctx.undo.append(("unit", instance, value))
                instance.unit_value = value.merge(changes.project(touched))
            return
        for container, e in zip(instance.containers, node.edges):
            if not reaches[e]:
                continue
            bound = self._shared_bound.get(id(e.child))
            if bound is not None:
                # Registry resolution (the held record pointer, uncounted);
                # a shared subtree is rewritten once per victim even when
                # several parents reach it.
                child = self._shared[id(e.child)].get(tup.project(bound))
                if child is not None and id(child) not in ctx.visited:
                    ctx.visited.add(id(child))
                    self._update_residual(child, tup, changes, changed, reaches, ctx)
            else:
                child = container.lookup(tup.project(e.key))
                if child is not MISSING:
                    self._update_residual(child, tup, changes, changed, reaches, ctx)

    def clear(self) -> None:
        """Reset to the empty instance."""
        self.root = NodeInstance(self.decomposition.root)
        self._reset_stats()

    # -- abstraction function ---------------------------------------------------

    def alpha(self) -> Relation:
        """``α(instance)`` — the relation this instance represents.

        Reads the primary (first) branch of every node;
        :meth:`check_well_formed` verifies the other branches agree.
        """
        return Relation(self.spec.columns, self.iter_tuples())

    def iter_tuples(self) -> Iterator[Tuple]:
        """Iterate the represented tuples via each node's primary branch."""
        yield from self._iter(self.root, Tuple.empty())

    def _iter(self, instance: NodeInstance, binding: Tuple) -> Iterator[Tuple]:
        node = instance.node
        if node.is_unit:
            if instance.unit_value is not None:
                yield binding.merge(instance.unit_value)
            return
        for key, child in instance.containers[0].items():
            yield from self._iter(child, binding.merge(key))

    def __len__(self) -> int:
        """O(1): the count is maintained incrementally by the mutators."""
        return self._tuple_count

    def is_empty(self) -> bool:
        """O(1) via the incremental tuple count."""
        return self._tuple_count == 0

    # -- live size statistics (cost-based planning) ------------------------------

    def edge_size(self, e: MapEdge) -> float:
        """Average number of entries per materialised container of edge *e*."""
        containers = self.edge_containers.get(e, 0)
        if containers <= 0:
            return 0.0
        return self.edge_entries[e] / containers

    def edge_sizes(self) -> Dict[MapEdge, float]:
        """Average live container size for every edge of the decomposition.

        Passed to :func:`repro.decomposition.plan.plan_query` so that
        index-vs-scan choices track the data actually stored rather than a
        symbolic default size.
        """
        return {e: self.edge_size(e) for e in self._edges}

    def size_signature(self) -> PyTuple[int, ...]:
        """Per-edge size classes (power-of-two buckets of the average size).

        ``DecomposedRelation`` caches query plans per signature: while every
        edge stays within its size class, cached plans remain valid; when a
        container grows or shrinks past a power of two the signature changes
        and cached plans are re-ranked against the live sizes.
        """
        return tuple(size_class(self.edge_size(e)) for e in self._edges)

    # -- well-formedness (Figure 5 + the sharing invariant) -----------------------

    def check_well_formed(self) -> None:
        """Verify the instance-level well-formedness rules of Figure 5.

        Raises:
            WellFormednessError: when a container key or unit tuple has the
                wrong columns, when the branches of a node disagree on the
                set of tuples they represent, or when the sharing invariant
                is broken — two parent edges of a shared node referencing
                different objects for one binding, a parent entry that is
                not the registry's object, or a stale registry entry.
        """
        shared_seen: Dict["tuple[int, Tuple]", NodeInstance] = {}
        self._check(self.root, Tuple.empty(), shared_seen)
        for nid, registry in self._shared.items():
            live = {binding for (node_id, binding) in shared_seen if node_id == nid}
            stale = set(registry) - live
            if stale:
                raise WellFormednessError(
                    f"shared-node registry holds {len(stale)} entr(y/ies) not "
                    f"reachable from any parent edge: {sorted(stale, key=Tuple.sort_key)!r}"
                )

    def _check(
        self,
        instance: NodeInstance,
        binding: Tuple,
        shared_seen: Dict["tuple[int, Tuple]", NodeInstance],
    ) -> Set[Tuple]:
        node = instance.node
        if node.is_unit:
            if instance.unit_value is None:
                return set()
            if instance.unit_value.columns != node.unit_columns:
                raise WellFormednessError(
                    f"unit instance holds {instance.unit_value!r}, which is not a "
                    f"valuation of the leaf's unit columns"
                )
            return {binding.merge(instance.unit_value)}
        branch_sets: List[Set[Tuple]] = []
        branch_columns: List[ColumnSet] = []
        for container, e in zip(instance.containers, node.edges):
            branch_columns.append(
                binding.columns | self.decomposition.edge_coverage(e)
            )
            tuples: Set[Tuple] = set()
            for key, child in container.items():
                if key.columns != e.key:
                    raise WellFormednessError(
                        f"container key {key!r} is not a valuation of the edge's "
                        f"key columns"
                    )
                if not isinstance(child, NodeInstance) or child.node is not e.child:
                    raise WellFormednessError(
                        f"container entry under {key!r} is not an instance of the "
                        f"edge's child node"
                    )
                child_binding = binding.merge(key)
                if id(e.child) in self._shared_bound:
                    seen_key = (id(e.child), child_binding)
                    earlier = shared_seen.get(seen_key)
                    if earlier is None:
                        shared_seen[seen_key] = child
                    elif earlier is not child:
                        raise WellFormednessError(
                            f"sharing invariant violated: parent edges of a shared "
                            f"node reference different objects for binding "
                            f"{child_binding!r}"
                        )
                    registered = self._shared[id(e.child)].get(child_binding)
                    if registered is not child:
                        raise WellFormednessError(
                            f"sharing invariant violated: the registry entry for "
                            f"binding {child_binding!r} is not the object the "
                            f"parent container holds"
                        )
                child_tuples = self._check(child, child_binding, shared_seen)
                if not child_tuples:
                    raise WellFormednessError(
                        f"container entry under {key!r} is an empty sub-instance "
                        f"(empty sub-instances must be pruned)"
                    )
                tuples |= child_tuples
            branch_sets.append(tuples)
        for index, later in enumerate(branch_sets[1:], start=1):
            # A key-projection branch must hold exactly the projection of
            # the primary branch's tuples onto its own columns (adequacy's
            # branch-keyness makes the projection injective, so set sizes
            # agree too); full-coverage branches compare unprojected.
            expected = {t.restrict(branch_columns[index]) for t in branch_sets[0]}
            if later != expected:
                missing = expected ^ later
                raise WellFormednessError(
                    f"the branches of a node disagree on {len(missing)} tuple(s): "
                    f"{sorted(missing, key=lambda t: t.sort_key())!r}"
                )
        return branch_sets[0]
