"""Query plans over decomposition instances (the Section 4 plan skeleton).

A query ``query r s C`` is answered by walking one root-to-leaf path of the
decomposition.  At each edge the planner emits one of two step kinds:

* :class:`LookupStep` — the edge's key columns are all bound by the query
  pattern, so a single container lookup descends into one sub-instance
  (cost ``m_ψ(n)``);
* :class:`ScanStep` — otherwise every entry of the container is visited,
  skipping entries whose key contradicts the pattern (cost ``n``).

Because adequacy guarantees every path binds or stores every column, any
single path can answer any query; the planner chooses the cheapest path
under the containers' cost models (fewest scans first, then estimated
accesses).  It already exploits the structure the decomposition provides: a
pattern bound on ``{state}`` uses the ``state`` index branch while a
pattern on ``{ns, pid}`` uses the primary-key branch.

**Cross-branch convergence on shared nodes**: when branches share a
sub-node (Section 3's shared records), every path that reaches the shared
node with its bound columns covered by the pattern lands on the *same*
record object — a cross-branch hash-join between the converging branches
degenerates to picking the cheapest access path, because the "join" on the
shared node's bound columns is object identity, not a tuple comparison.
The planner records this on the plan (:attr:`QueryPlan.leaf_shared`), ranks
the converging paths purely by access cost, and downstream consumers rely
on the identity: ``DecomposedRelation.remove`` finds victims through the
cheapest branch and unlinks the very same record objects from every other
branch in O(1) via the instance's shared registry and intrusive containers.
:func:`converging_plans` exposes the full set of equivalent lookup-only
plans for inspection and testing.

:func:`plan_query` is pure planning; :func:`execute_plan` runs a plan
against a :class:`~repro.decomposition.instance.DecompositionInstance`.
"""

from __future__ import annotations

from typing import Iterable, Iterator, List, Mapping, Optional, Union

from ..core.columns import ColumnSet, columns, format_columns
from ..core.errors import QueryPlanError
from ..core.tuples import Tuple
from ..structures.base import MISSING
from ..structures.registry import structure_cost
from .instance import DecompositionInstance, NodeInstance
from .model import Decomposition, MapEdge, Path

__all__ = [
    "LookupStep",
    "ScanStep",
    "QueryPlan",
    "plan_query",
    "execute_plan",
    "converging_plans",
]

#: Symbolic container size at which plan costs are compared when no live
#: sizes are available (e.g. planning against a decomposition with no
#: instance, or an edge that has not materialised any container yet).
DEFAULT_COST_SIZE = 1000.0

#: Optional per-edge live container sizes (average entries per container),
#: as produced by :meth:`DecompositionInstance.edge_sizes`.
EdgeSizes = Mapping[MapEdge, float]


class LookupStep:
    """Descend through one container entry whose key the pattern determines."""

    __slots__ = ("edge", "edge_index")

    def __init__(self, edge: MapEdge, edge_index: int):
        self.edge = edge
        self.edge_index = edge_index

    def cost(self, n: float) -> float:
        return structure_cost(self.edge.structure, n, "lookup")

    def describe(self) -> str:
        return f"lookup[{', '.join(sorted(self.edge.key))}]({self.edge.structure})"


class ScanStep:
    """Visit every entry of a container, filtering keys against the pattern."""

    __slots__ = ("edge", "edge_index")

    def __init__(self, edge: MapEdge, edge_index: int):
        self.edge = edge
        self.edge_index = edge_index

    def cost(self, n: float) -> float:
        return structure_cost(self.edge.structure, n, "scan")

    def describe(self) -> str:
        return f"scan({self.edge.structure})"


PlanStep = Union[LookupStep, ScanStep]


class QueryPlan:
    """A straight-line plan: one step per edge of a root-to-leaf path.

    ``leaf_shared`` records that the plan's leaf node has several parent
    edges: every converging path yields the *same* record objects, so two
    lookup-only plans over such a leaf are interchangeable up to access
    cost (the planner's cross-branch-join degeneracy, see the module
    docstring).
    """

    __slots__ = ("path", "steps", "pattern_columns", "leaf_shared")

    def __init__(
        self,
        path: Path,
        steps: List[PlanStep],
        pattern_columns: ColumnSet,
        leaf_shared: bool = False,
    ):
        self.path = path
        self.steps = list(steps)
        self.pattern_columns = pattern_columns
        self.leaf_shared = leaf_shared

    @property
    def scan_count(self) -> int:
        return sum(1 for step in self.steps if isinstance(step, ScanStep))

    @property
    def lookup_count(self) -> int:
        return sum(1 for step in self.steps if isinstance(step, LookupStep))

    def estimated_cost(
        self, n: float = DEFAULT_COST_SIZE, sizes: Optional[EdgeSizes] = None
    ) -> float:
        """A coarse cost estimate: scans multiply the frontier, lookups do not.

        With *sizes* (a mapping from :class:`MapEdge` to its average live
        container size, see :meth:`DecompositionInstance.edge_sizes`), each
        step is charged against the size of the containers it actually
        touches instead of the symbolic *n* — so the estimate tracks the
        data distribution, e.g. a deep index whose second level holds two
        entries per key costs far less than one holding a thousand.
        """
        total = 0.0
        frontier = 1.0
        for step in self.steps:
            step_n = n if sizes is None else sizes.get(step.edge, n)
            total += frontier * step.cost(step_n)
            if isinstance(step, ScanStep):
                frontier *= max(1.0, step_n)
        return total

    def describe(self) -> str:
        body = " -> ".join(step.describe() for step in self.steps)
        return body or "unit"

    def __repr__(self) -> str:
        return f"QueryPlan({self.describe()} | pattern={format_columns(self.pattern_columns)})"


def plan_query(
    decomposition: Decomposition,
    pattern_columns: Union[str, Iterable[str]],
    require_lookup: bool = False,
    sizes: Optional[EdgeSizes] = None,
) -> QueryPlan:
    """Choose the cheapest straight-line plan for a pattern over *pattern_columns*.

    Args:
        decomposition: the (validated) decomposition to plan against.
        pattern_columns: the columns the query pattern binds.
        require_lookup: when ``True``, raise :class:`QueryPlanError` unless a
            plan exists whose every step is a lookup (the paper's "query is
            supported efficiently" notion used by operation planning).
        sizes: optional per-edge live container sizes
            (:meth:`DecompositionInstance.edge_sizes`).  Without them plans
            are ranked structurally (fewest scans first, then the symbolic
            cost at :data:`DEFAULT_COST_SIZE`); with them the estimated cost
            against the real data leads, so the chosen path flips when the
            data distribution does.
    """
    bound = columns(pattern_columns)
    parent_counts = decomposition.parent_counts()
    best = best_lookup = None
    best_plan = best_lookup_plan = None
    for path_index, path in enumerate(decomposition.paths()):
        steps: List[PlanStep] = []
        for edge_index, e in zip(path.edge_indices, path.edges):
            if e.key <= bound:
                steps.append(LookupStep(e, edge_index))
            else:
                steps.append(ScanStep(e, edge_index))
        plan = QueryPlan(
            path, steps, bound, leaf_shared=parent_counts.get(id(path.leaf), 0) >= 2
        )
        if sizes is None:
            rank = (plan.scan_count, plan.estimated_cost(), path_index)
        else:
            rank = (plan.estimated_cost(sizes=sizes), plan.scan_count, path_index)
        if best is None or rank < best:
            best, best_plan = rank, plan
        # With live sizes a scanning plan over tiny containers can outrank a
        # lookup-only plan; callers asking for require_lookup still deserve
        # the cheapest lookup-only plan if one exists, so rank those apart.
        if plan.scan_count == 0 and (best_lookup is None or rank < best_lookup):
            best_lookup, best_lookup_plan = rank, plan
    if best_plan is None:
        raise QueryPlanError(
            f"decomposition {decomposition.name!r} has no root-to-leaf paths"
        )
    if require_lookup:
        if best_lookup_plan is None:
            raise QueryPlanError(
                f"no lookup-only plan answers a pattern over {format_columns(bound)} "
                f"on decomposition {decomposition.name!r}; best plan is "
                f"{best_plan.describe()}"
            )
        return best_lookup_plan
    return best_plan


def converging_plans(
    decomposition: Decomposition,
    pattern_columns: Union[str, Iterable[str]],
) -> List[QueryPlan]:
    """Every lookup-only plan landing on one shared leaf for this pattern.

    When the pattern binds a shared leaf's full bound column set, each
    branch that reaches the leaf by lookups alone is an equivalent access
    path: executing any of them yields the *identical* record objects (the
    sharing invariant), so a cross-branch hash-join between them is the
    degenerate identity join.  Returns the equivalence class (possibly
    empty — e.g. when the pattern leaves some bound column free), cheapest
    plan first under the symbolic cost model.  :func:`plan_query` already
    picks the cheapest member; this helper exposes the whole class for
    consumers (and tests) that rely on the identity guarantee.
    """
    bound = columns(pattern_columns)
    parent_counts = decomposition.parent_counts()
    target: Optional[int] = None
    plans: List[QueryPlan] = []
    for path in decomposition.paths():
        if parent_counts.get(id(path.leaf), 0) < 2:
            continue
        if not path.bound <= bound:
            continue
        if target is None:
            target = id(path.leaf)
        elif id(path.leaf) != target:
            continue  # Equivalence holds per shared leaf, not across leaves.
        steps: List[PlanStep] = [
            LookupStep(e, index) for index, e in zip(path.edge_indices, path.edges)
        ]
        plans.append(QueryPlan(path, steps, bound, leaf_shared=True))
    plans.sort(key=lambda plan: plan.estimated_cost())
    return plans


def execute_plan(
    plan: QueryPlan, instance: DecompositionInstance, pattern: Tuple
) -> Iterator[Tuple]:
    """Run *plan* against *instance*, yielding the full matching tuples.

    The residual pattern columns (those stored in unit leaves rather than
    bound by map keys) are filtered at the leaves via ``t ⊇ pattern``.
    """
    if not plan.pattern_columns <= pattern.columns:
        raise QueryPlanError(
            f"plan for pattern columns {format_columns(plan.pattern_columns)} cannot "
            f"execute pattern {pattern!r}: the pattern must bind at least the "
            f"planned columns"
        )
    yield from _execute(plan, 0, instance.root, Tuple.empty(), pattern)


def _execute(
    plan: QueryPlan,
    depth: int,
    instance: NodeInstance,
    binding: Tuple,
    pattern: Tuple,
) -> Iterator[Tuple]:
    if depth == len(plan.steps):
        if instance.unit_value is None:
            # An empty unit represents no tuple.
            return
        result = binding.merge(instance.unit_value)
        if result.extends(pattern):
            yield result
        return
    step = plan.steps[depth]
    container = instance.containers[step.edge_index]
    if isinstance(step, LookupStep):
        key = pattern.project(step.edge.key)
        child = container.lookup(key)
        if child is not MISSING:
            yield from _execute(plan, depth + 1, child, binding.merge(key), pattern)
        return
    for key, child in container.items():
        if key.matches(pattern):
            yield from _execute(plan, depth + 1, child, binding.merge(key), pattern)
