"""Query plans over decomposition instances (the Section 4 plan IR).

Plans form a small recursive IR instead of a single straight line:

* a **chain** (:class:`QueryPlan`) walks one root-to-leaf path.  At each
  edge the planner emits a :class:`LookupStep` when the edge's key columns
  are all bound (by the query pattern, or — inside a join — by the other
  branch's output) or a :class:`ScanStep` otherwise, and finishes with an
  explicit :class:`ResidualFilter` over the bound columns the leaf's unit
  tuple must be checked against;
* a **join** (:class:`JoinPlan`) composes two chains over *different*
  branches: the ``build`` side is evaluated first and the ``probe`` side is
  planned with the build side's columns treated as bound — so a probe whose
  keys become fully bound turns into per-row container lookups (the
  cheaper-side/other-side choice the cost model makes from live
  ``edge_sizes``), while an independent probe is enumerated once and
  matched through a temporary hash table on the common columns
  (``style == "hash"``).

**Validity (the paper's Figure 8).**  With partial-coverage branches
(key-projection secondaries, see :mod:`repro.decomposition.adequacy`) a
plan is no longer correct merely because adequacy says "any path binds
every column".  A plan is *valid* iff the columns it binds and checks
determine every specification column under the FD closure::

    fd.closure(bound ∪ checked) ⊇ C

and a join is additionally *lossless*: the columns the two sides are
matched on must determine one side's full column set, otherwise rows of
two different stored tuples could be glued into a tuple the relation never
contained.  :func:`plan_query` only returns valid plans and records the
witness on the plan (:class:`PlanWitness`, shown by ``describe()``);
:func:`validate_plan` re-checks any plan — including hand-built ones — and
raises :class:`QueryPlanError` naming the underdetermined columns.

**Cross-branch convergence on shared nodes** (Section 3) is the degenerate
join: branches converging on a shared record join on the record's full
bound column set, and the "join" is object identity — so the planner just
picks the cheapest converging chain (:attr:`QueryPlan.leaf_shared`,
:func:`converging_plans`).  Both the convergence helper and the join
search enumerate candidate chains through one shared helper,
:func:`path_steps`.

:func:`plan_query` is pure planning; :func:`execute_plan` runs any plan of
the IR against a :class:`~repro.decomposition.instance.DecompositionInstance`.
"""

from __future__ import annotations

from typing import Iterable, Iterator, List, Mapping, Optional, Sequence, Union

from ..core.columns import ColumnSet, columns, format_columns
from ..core.errors import QueryPlanError
from ..core.fd import FDSet
from ..core.spec import RelationSpec
from ..core.tuples import Tuple
from ..structures.base import COUNTER, MISSING
from ..structures.registry import structure_cost
from .instance import DecompositionInstance, NodeInstance
from .model import Decomposition, MapEdge, Path

__all__ = [
    "LookupStep",
    "ScanStep",
    "ResidualFilter",
    "PlanWitness",
    "QueryPlan",
    "JoinPlan",
    "path_steps",
    "plan_query",
    "residual_update_columns",
    "validate_plan",
    "execute_plan",
    "converging_plans",
]

#: Symbolic container size at which plan costs are compared when no live
#: sizes are available (e.g. planning against a decomposition with no
#: instance, or an edge that has not materialised any container yet).
DEFAULT_COST_SIZE = 1000.0

#: Optional per-edge live container sizes (average entries per container),
#: as produced by :meth:`DecompositionInstance.edge_sizes`.
EdgeSizes = Mapping[MapEdge, float]


class LookupStep:
    """Descend through one container entry whose key the context determines."""

    __slots__ = ("edge", "edge_index")

    def __init__(self, edge: MapEdge, edge_index: int):
        self.edge = edge
        self.edge_index = edge_index

    def cost(self, n: float) -> float:
        return structure_cost(self.edge.structure, n, "lookup")

    def describe(self) -> str:
        return f"lookup[{', '.join(sorted(self.edge.key))}]({self.edge.structure})"


class ScanStep:
    """Visit every entry of a container, filtering keys against the context."""

    __slots__ = ("edge", "edge_index")

    def __init__(self, edge: MapEdge, edge_index: int):
        self.edge = edge
        self.edge_index = edge_index

    def cost(self, n: float) -> float:
        return structure_cost(self.edge.structure, n, "scan")

    def describe(self) -> str:
        return f"scan({self.edge.structure})"


class ResidualFilter:
    """An explicit residual check: the leaf's unit tuple must agree with the
    bound context on these columns (the plan's ``checked`` contribution)."""

    __slots__ = ("columns",)

    def __init__(self, filter_columns: ColumnSet):
        self.columns: ColumnSet = frozenset(filter_columns)

    def describe(self) -> str:
        return f"filter[{', '.join(sorted(self.columns))}]"

    def __repr__(self) -> str:
        return f"ResidualFilter({format_columns(self.columns)})"


PlanStep = Union[LookupStep, ScanStep]


class PlanWitness:
    """The Figure 8 validity witness: what a plan binds, checks and closes.

    ``bound`` are the columns the plan reads out of containers and units
    (key columns of its steps plus unit residuals) together with the
    pattern columns; ``checked`` are the columns compared rather than
    introduced — residual filters and a join's matched columns; ``closed``
    is ``fd.closure(bound ∪ checked)``.  The plan is valid iff ``closed``
    covers every specification column (``missing`` is empty).
    """

    __slots__ = ("bound", "checked", "closed", "missing")

    def __init__(
        self,
        bound: ColumnSet,
        checked: ColumnSet,
        fds: FDSet,
        required: ColumnSet,
    ):
        self.bound = frozenset(bound)
        self.checked = frozenset(checked)
        self.closed = fds.closure(self.bound | self.checked)
        self.missing = frozenset(required) - self.closed

    @property
    def valid(self) -> bool:
        return not self.missing

    def describe(self) -> str:
        text = (
            f"binds {format_columns(self.bound)} "
            f"checks {format_columns(self.checked)} "
            f"closes {format_columns(self.closed)}"
        )
        if self.missing:
            text += f" MISSING {format_columns(self.missing)}"
        return text

    def __repr__(self) -> str:
        return f"PlanWitness({self.describe()})"


class QueryPlan:
    """A chain plan: one step per edge of a root-to-leaf path, plus an
    explicit residual filter at the leaf.

    ``leaf_shared`` records that the plan's leaf node has several parent
    edges: every converging path yields the *same* record objects, so two
    lookup-only plans over such a leaf are interchangeable up to access
    cost (the planner's degenerate cross-branch join, see the module
    docstring).  ``witness`` carries the Figure 8 validity witness when the
    plan was produced with a specification in hand.
    """

    __slots__ = ("path", "steps", "pattern_columns", "leaf_shared", "filter", "witness")

    def __init__(
        self,
        path: Path,
        steps: List[PlanStep],
        pattern_columns: ColumnSet,
        leaf_shared: bool = False,
        residual_filter: Optional[ResidualFilter] = None,
        witness: Optional[PlanWitness] = None,
    ):
        self.path = path
        self.steps = list(steps)
        self.pattern_columns = pattern_columns
        self.leaf_shared = leaf_shared
        if residual_filter is None:
            residual_filter = ResidualFilter(pattern_columns & path.leaf.unit_columns)
        self.filter = residual_filter
        self.witness = witness

    @property
    def scan_count(self) -> int:
        return sum(1 for step in self.steps if isinstance(step, ScanStep))

    @property
    def lookup_count(self) -> int:
        return sum(1 for step in self.steps if isinstance(step, LookupStep))

    @property
    def produced(self) -> ColumnSet:
        """The columns this chain physically reads: its path's coverage."""
        return self.path.covered

    def estimated_cost(
        self, n: float = DEFAULT_COST_SIZE, sizes: Optional[EdgeSizes] = None
    ) -> float:
        """A coarse cost estimate: scans multiply the frontier, lookups do not.

        With *sizes* (a mapping from :class:`MapEdge` to its average live
        container size, see :meth:`DecompositionInstance.edge_sizes`), each
        step is charged against the size of the containers it actually
        touches instead of the symbolic *n* — so the estimate tracks the
        data distribution, e.g. a deep index whose second level holds two
        entries per key costs far less than one holding a thousand.
        """
        total = 0.0
        frontier = 1.0
        for step in self.steps:
            step_n = n if sizes is None else sizes.get(step.edge, n)
            total += frontier * step.cost(step_n)
            if isinstance(step, ScanStep):
                frontier *= max(1.0, step_n)
        return total

    def estimated_rows(
        self, n: float = DEFAULT_COST_SIZE, sizes: Optional[EdgeSizes] = None
    ) -> float:
        """Upper-bound estimate of the rows the chain yields (scan fan-out)."""
        rows = 1.0
        for step in self.steps:
            if isinstance(step, ScanStep):
                step_n = n if sizes is None else sizes.get(step.edge, n)
                rows *= max(1.0, step_n)
        return rows

    def describe_bare(self) -> str:
        """The step chain without the validity witness (used inside joins,
        which print one combined witness for both sides)."""
        parts = [step.describe() for step in self.steps]
        if self.filter.columns:
            parts.append(self.filter.describe())
        return " -> ".join(parts) or "unit"

    def describe(self) -> str:
        body = self.describe_bare()
        if self.witness is not None:
            body += f" | {self.witness.describe()}"
        return body

    def __repr__(self) -> str:
        return f"QueryPlan({self.describe()} | pattern={format_columns(self.pattern_columns)})"


class JoinPlan:
    """A cross-branch join of two chain plans (the IR's ``Join`` node).

    The ``build`` chain is evaluated against the pattern alone.  The
    ``probe`` chain was planned with ``pattern ∪ build.produced`` treated
    as bound:

    * ``style == "probe"`` — the probe chain is re-walked once per build
      row with the row's columns bound, so probe lookups become direct
      container probes keyed by build-side values (the common case: a
      cheap secondary branch drives per-row lookups into the primary);
    * ``style == "hash"`` — the probe chain is independent of the build
      side's bindings; it is enumerated once and the two row sets are
      matched through a temporary hash table keyed on ``on`` (both the
      temporary inserts and the probes are charged one counted access, in
      this interpreter and in the compiled tier alike).

    ``on`` is the full set of columns the two sides share — rows are glued
    only when they agree on all of them; the planner's lossless check
    (``closure(on) ⊇ one side``) is what makes that sound.
    """

    __slots__ = ("build", "probe", "on", "pattern_columns", "style", "witness")

    def __init__(
        self,
        build: QueryPlan,
        probe: QueryPlan,
        on: ColumnSet,
        pattern_columns: ColumnSet,
        style: str = "probe",
        witness: Optional[PlanWitness] = None,
    ):
        if style not in ("probe", "hash"):
            raise QueryPlanError(f"unknown join style {style!r}; use 'probe' or 'hash'")
        self.build = build
        self.probe = probe
        self.on = frozenset(on)
        self.pattern_columns = pattern_columns
        self.style = style
        self.witness = witness

    leaf_shared = False

    @property
    def steps(self) -> List[PlanStep]:
        """Every access step of both sides (build first) — for inspection."""
        return self.build.steps + self.probe.steps

    @property
    def scan_count(self) -> int:
        return self.build.scan_count + self.probe.scan_count

    @property
    def lookup_count(self) -> int:
        return self.build.lookup_count + self.probe.lookup_count

    @property
    def produced(self) -> ColumnSet:
        return self.build.produced | self.probe.produced

    def estimated_cost(
        self, n: float = DEFAULT_COST_SIZE, sizes: Optional[EdgeSizes] = None
    ) -> float:
        build_cost = self.build.estimated_cost(n, sizes)
        build_rows = self.build.estimated_rows(n, sizes)
        probe_cost = self.probe.estimated_cost(n, sizes)
        if self.style == "probe":
            return build_cost + build_rows * probe_cost
        probe_rows = self.probe.estimated_rows(n, sizes)
        # Temporary hash: one access per build-row insert and per probe-row probe.
        return build_cost + probe_cost + build_rows + probe_rows

    def estimated_rows(
        self, n: float = DEFAULT_COST_SIZE, sizes: Optional[EdgeSizes] = None
    ) -> float:
        return max(
            self.build.estimated_rows(n, sizes), self.probe.estimated_rows(n, sizes)
        )

    def describe(self) -> str:
        body = (
            f"join[{', '.join(sorted(self.on))}]"
            f"(build: {self.build.describe_bare()}; "
            f"{self.style}: {self.probe.describe_bare()})"
        )
        if self.witness is not None:
            body += f" | {self.witness.describe()}"
        return body

    def __repr__(self) -> str:
        return f"JoinPlan({self.describe()} | pattern={format_columns(self.pattern_columns)})"


AnyPlan = Union[QueryPlan, JoinPlan]


def path_steps(path: Path, bound: ColumnSet) -> List[PlanStep]:
    """The chain steps walking *path* with *bound* columns available.

    The one shared enumeration used by :func:`plan_query`'s single-path and
    join searches and by :func:`converging_plans` — an edge whose key is
    covered by *bound* becomes a :class:`LookupStep`, anything else a
    :class:`ScanStep`.
    """
    return [
        LookupStep(e, index) if e.key <= bound else ScanStep(e, index)
        for index, e in zip(path.edge_indices, path.edges)
    ]


def residual_update_columns(
    decomposition: Decomposition, spec: RelationSpec
) -> ColumnSet:
    """Columns an ``update`` may rewrite in place (the batch-update gate).

    A column qualifies when it is stored *only* as a leaf residual — it
    appears in no edge key anywhere in the decomposition, so changing it
    never moves a tuple between containers — and it is FD-inert: it sits on
    no functional dependency's left-hand side, and on a right-hand side only
    when that dependency's left-hand side closes over the whole schema.  The
    closure condition makes each victim the unique stored row for its
    left-hand-side binding (FD enforcement, or the FD-off last-writer-wins
    eviction invariant, guarantees uniqueness), so rewriting the residual
    can neither merge two rows into one nor create a conflict a re-insert
    would have evicted — the in-place path is state-identical to
    remove-then-reinsert in both FD modes.
    """
    all_cols = frozenset(spec.columns)
    key_cols: set = set()
    for node in decomposition.nodes():
        for e in node.edges:
            key_cols |= e.key
    safe = set()
    for c in all_cols - key_cols:
        ok = True
        for fd in spec.fds:
            if c in fd.lhs:
                ok = False
                break
            if c in fd.rhs and not all_cols <= spec.fds.closure(fd.lhs):
                ok = False
                break
        if ok:
            safe.add(c)
    return frozenset(safe)


def _chain_witness(
    path: Path, pattern: ColumnSet, fds: FDSet, required: ColumnSet
) -> PlanWitness:
    # Only columns the chain physically reads count: a pattern column the
    # path never binds or checks contributes nothing to validity (the
    # executor cannot filter on it).
    return PlanWitness(
        bound=path.covered,
        checked=pattern & path.leaf.unit_columns,
        fds=fds,
        required=required,
    )


def _chain_plan(
    path: Path,
    bound: ColumnSet,
    pattern: ColumnSet,
    leaf_shared: bool,
    spec: Optional[RelationSpec],
) -> QueryPlan:
    """Build one chain plan over *path*; *bound* may exceed *pattern* when
    the chain is a join's probe side (the build side's columns are bound)."""
    witness = None
    if spec is not None:
        witness = _chain_witness(path, pattern, spec.fds, spec.columns)
    return QueryPlan(
        path,
        path_steps(path, bound),
        pattern,
        leaf_shared=leaf_shared,
        residual_filter=ResidualFilter(bound & path.leaf.unit_columns),
        witness=witness,
    )


def validate_plan(plan: AnyPlan, spec: RelationSpec) -> PlanWitness:
    """Check a plan against the paper's Figure 8 validity rule.

    Recomputes the witness from the plan's own structure (so hand-built
    plans are judged on what they actually bind and check, not on a stored
    witness) and raises :class:`QueryPlanError` naming the underdetermined
    columns when ``fd.closure(bound ∪ checked)`` misses part of the
    specification, or when a join's matched columns fail the lossless
    condition.  Returns the witness on success and stores it on the plan.
    """
    fds = spec.fds
    required = spec.columns
    # A pattern column the plan never reads cannot be filtered on — the
    # executor would silently ignore the constraint — so it contributes
    # nothing to validity and renders the plan unable to answer its own
    # pattern.
    unservable = plan.pattern_columns - plan.produced
    if unservable:
        raise QueryPlanError(
            f"plan never binds or checks its own pattern columns "
            f"{format_columns(unservable)}: it reads only "
            f"{format_columns(plan.produced)}, so executing it would "
            f"silently ignore the constraint"
        )
    if isinstance(plan, JoinPlan):
        left, right = plan.build.produced, plan.probe.produced
        closed_on = fds.closure(plan.on)
        if not (left <= closed_on or right <= closed_on):
            undetermined = (left | right) - closed_on
            raise QueryPlanError(
                f"join plan is not lossless: matching on "
                f"{format_columns(plan.on)} determines neither side "
                f"({format_columns(left)} / {format_columns(right)}); "
                f"underdetermined columns: {format_columns(undetermined)}"
            )
        bound = left | right
        checked = (
            plan.on
            | plan.build.filter.columns
            | plan.probe.filter.columns
        )
    else:
        bound = plan.produced
        checked = plan.filter.columns
    witness = PlanWitness(bound, checked, fds, required)
    if not witness.valid:
        raise QueryPlanError(
            f"plan is not valid under the specification's functional "
            f"dependencies (Figure 8): closure of bound ∪ checked = "
            f"{format_columns(witness.closed)} does not determine columns "
            f"{format_columns(witness.missing)}"
        )
    plan.witness = witness
    return witness


def _join_witness(
    build: QueryPlan, probe: QueryPlan, on: ColumnSet, pattern: ColumnSet, spec: RelationSpec
) -> PlanWitness:
    return PlanWitness(
        bound=build.produced | probe.produced,
        checked=on | build.filter.columns | probe.filter.columns,
        fds=spec.fds,
        required=spec.columns,
    )


def plan_query(
    decomposition: Decomposition,
    pattern_columns: Union[str, Iterable[str]],
    require_lookup: bool = False,
    sizes: Optional[EdgeSizes] = None,
    spec: Optional[RelationSpec] = None,
    allow_join: bool = True,
) -> AnyPlan:
    """Choose the cheapest valid plan for a pattern over *pattern_columns*.

    Args:
        decomposition: the (validated) decomposition to plan against.
        pattern_columns: the columns the query pattern binds.
        require_lookup: when ``True``, raise :class:`QueryPlanError` unless a
            *chain* plan exists whose every step is a lookup (the paper's
            "query is supported efficiently" notion used by operation
            planning).
        sizes: optional per-edge live container sizes
            (:meth:`DecompositionInstance.edge_sizes`).  Without them plans
            are ranked structurally (fewest scans first, then the symbolic
            cost at :data:`DEFAULT_COST_SIZE`); with them the estimated cost
            against the real data leads, so the chosen plan flips when the
            data distribution does — including flips between single-path
            and join plans.
        spec: the relational specification.  With it the planner searches
            cross-branch **join** candidates, validates every candidate by
            the Figure 8 FD-closure rule, and attaches the validity witness
            to the returned plan.  Without it only full-coverage single
            paths are considered (which need no FD reasoning).
        allow_join: set ``False`` to restrict the search to single-path
            plans (used e.g. to measure how much a join plan saves).
    """
    bound = columns(pattern_columns)
    parent_counts = decomposition.parent_counts()
    required = spec.columns if spec is not None else decomposition.covered_columns()

    candidates: List[AnyPlan] = []
    chain_plans: List[QueryPlan] = []
    for path in decomposition.paths():
        leaf_shared = parent_counts.get(id(path.leaf), 0) >= 2
        plan = _chain_plan(path, bound, bound, leaf_shared, spec)
        chain_plans.append(plan)
        if path.covered >= required:
            candidates.append(plan)

    if spec is not None and allow_join:
        candidates.extend(
            _join_candidates(decomposition, bound, spec, chain_plans, parent_counts)
        )

    if not candidates and not chain_plans:
        raise QueryPlanError(
            f"decomposition {decomposition.name!r} has no root-to-leaf paths"
        )
    if not candidates:
        raise QueryPlanError(
            f"no valid plan answers a pattern over {format_columns(bound)} on "
            f"decomposition {decomposition.name!r}: no single path covers "
            f"{format_columns(required)} and no valid join combines the branches"
        )

    def rank(indexed) -> tuple:
        order, plan = indexed
        kind = 1 if isinstance(plan, JoinPlan) else 0
        if sizes is None:
            return (plan.scan_count, plan.estimated_cost(), kind, order)
        return (plan.estimated_cost(sizes=sizes), plan.scan_count, kind, order)

    best = min(enumerate(candidates), key=rank)[1]
    if spec is not None:
        validate_plan(best, spec)

    if require_lookup:
        lookup_only = [
            (i, p)
            for i, p in enumerate(chain_plans)
            if p.scan_count == 0 and p.produced >= required
        ]
        if not lookup_only:
            raise QueryPlanError(
                f"no lookup-only plan answers a pattern over {format_columns(bound)} "
                f"on decomposition {decomposition.name!r}; best plan is "
                f"{best.describe()}"
            )
        return min(lookup_only, key=rank)[1]
    return best


def _join_candidates(
    decomposition: Decomposition,
    pattern: ColumnSet,
    spec: RelationSpec,
    chain_plans: Sequence[QueryPlan],
    parent_counts,
) -> List[JoinPlan]:
    """Every valid two-branch join candidate for *pattern*.

    For each ordered pair of distinct paths, the first is the build side
    (planned against the pattern alone) and the second the probe side
    (planned with the build side's columns additionally bound).  A pair
    qualifies when together the sides read every required column, and the
    full common column set — what the rows are matched on — FD-determines
    at least one side (the lossless condition that keeps the glued rows
    real).  Paths converging on one shared leaf are skipped: their join is
    the degenerate identity join already served by the cheapest single
    chain (see :func:`converging_plans`).
    """
    fds = spec.fds
    required = spec.columns
    paths = decomposition.paths()
    joins: List[JoinPlan] = []
    for i, build_path in enumerate(paths):
        if build_path.covered >= required:
            continue  # Probing adds nothing a full build side does not have.
        build = chain_plans[i]
        for j, probe_path in enumerate(paths):
            if i == j:
                continue
            if build_path.leaf is probe_path.leaf and parent_counts.get(
                id(build_path.leaf), 0
            ) >= 2:
                continue  # Degenerate identity join over a shared leaf.
            produced = build_path.covered | probe_path.covered
            if not required <= produced:
                continue
            on = build_path.covered & probe_path.covered
            closed_on = fds.closure(on)
            if not (build_path.covered <= closed_on or probe_path.covered <= closed_on):
                continue  # Not lossless: the glued rows could be spurious.
            leaf_shared = parent_counts.get(id(probe_path.leaf), 0) >= 2
            probe = _chain_plan(
                probe_path, pattern | build_path.covered, pattern, leaf_shared, spec
            )
            witness = _join_witness(build, probe, on, pattern, spec)
            if not witness.valid:
                continue
            joins.append(JoinPlan(build, probe, on, pattern, "probe", witness))
            if probe.scan_count:
                # The probe side scans; when those scans do not profit from
                # the build side's bindings, enumerating the probe once and
                # matching through a temporary hash beats re-scanning per
                # build row.  Offer it as a separate candidate and let the
                # cost ranking decide.
                independent = _chain_plan(probe_path, pattern, pattern, leaf_shared, spec)
                joins.append(
                    JoinPlan(build, independent, on, pattern, "hash", witness)
                )
    return joins


def converging_plans(
    decomposition: Decomposition,
    pattern_columns: Union[str, Iterable[str]],
) -> List[QueryPlan]:
    """Every lookup-only chain landing on one shared leaf for this pattern.

    When the pattern binds a shared leaf's full bound column set, each
    branch that reaches the leaf by lookups alone is an equivalent access
    path: executing any of them yields the *identical* record objects (the
    sharing invariant), so a cross-branch join between them is the
    degenerate identity join — which is why :func:`plan_query`'s join
    search skips converging pairs and simply ranks the chains.  Returns the
    equivalence class (possibly empty — e.g. when the pattern leaves some
    bound column free), cheapest plan first under the symbolic cost model.
    """
    bound = columns(pattern_columns)
    parent_counts = decomposition.parent_counts()
    target: Optional[int] = None
    plans: List[QueryPlan] = []
    for path in decomposition.paths():
        if parent_counts.get(id(path.leaf), 0) < 2:
            continue
        if not path.bound <= bound:
            continue
        if target is None:
            target = id(path.leaf)
        elif id(path.leaf) != target:
            continue  # Equivalence holds per shared leaf, not across leaves.
        steps = path_steps(path, path.bound)
        plans.append(QueryPlan(path, steps, bound, leaf_shared=True))
    plans.sort(key=lambda plan: plan.estimated_cost())
    return plans


def execute_plan(
    plan: AnyPlan, instance: DecompositionInstance, pattern: Tuple
) -> Iterator[Tuple]:
    """Run *plan* against *instance*, yielding the full matching tuples.

    Chain plans walk their path with the pattern as context; join plans
    evaluate the build chain, then either re-walk the probe chain per build
    row with the row's columns bound (``style == "probe"``) or enumerate
    the probe chain once and match through a temporary hash table
    (``style == "hash"``, charged one counted access per temporary insert
    and probe, mirroring the compiled tier).
    """
    if not plan.pattern_columns <= pattern.columns:
        raise QueryPlanError(
            f"plan for pattern columns {format_columns(plan.pattern_columns)} cannot "
            f"execute pattern {pattern!r}: the pattern must bind at least the "
            f"planned columns"
        )
    if isinstance(plan, JoinPlan):
        yield from _execute_join(plan, instance, pattern)
        return
    yield from _execute(plan, 0, instance.root, Tuple.empty(), pattern)


def _execute_join(
    plan: JoinPlan, instance: DecompositionInstance, pattern: Tuple
) -> Iterator[Tuple]:
    build_rows = _execute(plan.build, 0, instance.root, Tuple.empty(), pattern)
    if plan.style == "probe":
        for left in build_rows:
            context = pattern.merge(left)
            for right in _execute(plan.probe, 0, instance.root, Tuple.empty(), context):
                yield left.merge(right)
        return
    on = sorted(plan.on)
    table: dict = {}
    for left in build_rows:
        COUNTER.count_access()  # Temporary-hash insert.
        table.setdefault(left.project(on), []).append(left)
    for right in _execute(plan.probe, 0, instance.root, Tuple.empty(), pattern):
        COUNTER.count_access()  # Temporary-hash probe.
        for left in table.get(right.project(on), ()):
            yield left.merge(right)


def _execute(
    plan: QueryPlan,
    depth: int,
    instance: NodeInstance,
    binding: Tuple,
    pattern: Tuple,
) -> Iterator[Tuple]:
    if depth == len(plan.steps):
        if instance.unit_value is None:
            # An empty unit represents no tuple.
            return
        result = binding.merge(instance.unit_value)
        if result.matches(pattern):
            yield result
        return
    step = plan.steps[depth]
    container = instance.containers[step.edge_index]
    if isinstance(step, LookupStep):
        key = pattern.project(step.edge.key)
        child = container.lookup(key)
        if child is not MISSING:
            yield from _execute(plan, depth + 1, child, binding.merge(key), pattern)
        return
    for key, child in container.items():
        if key.matches(pattern):
            yield from _execute(plan, depth + 1, child, binding.merge(key), pattern)
