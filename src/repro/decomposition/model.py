"""Decompositions: rooted DAGs describing how a relation is laid out (Section 3).

A *decomposition* describes how to represent a relation over columns ``C``
as a hierarchy of primitive containers.  It is a rooted directed acyclic
graph:

* an internal node has one or more outgoing :class:`MapEdge`\\ s.  An edge
  ``x --ψ, K--> y`` says: store the sub-relation at *x* in an associative
  container of kind ``ψ`` (``htable``, ``btree``, ``dlist``, ...) keyed by
  the columns ``K``, each entry holding a sub-instance shaped like *y*.
  A node with several outgoing edges stores its sub-relation once per edge
  (the paper's join/branch decompositions — e.g. an index by ``{ns, pid}``
  *and* an index by ``{state}``);
* a leaf node is a *unit* holding a single tuple over its residual columns
  (possibly none, in which case the unit is a pure presence marker).

Every node has a *type* ``B ▷ C``: ``B`` is the set of columns bound by map
keys on the way from the root, and ``C`` the columns the node's subtree
represents.  In this reproduction types are computed per root-to-leaf
:class:`Path` rather than stored on nodes, which lets the same node object
be reused in several positions.

This module defines the static shape only.  Judging a decomposition against
a :class:`~repro.core.spec.RelationSpec` lives in
:mod:`repro.decomposition.adequacy`; populated instances live in
:mod:`repro.decomposition.instance`.
"""

from __future__ import annotations

from typing import Callable, Dict, Iterable, Iterator, List, Optional, Sequence, Tuple as PyTuple, Union

from ..core.columns import ColumnSet, columns, format_columns
from ..core.errors import DecompositionError
from ..structures.registry import get_structure

__all__ = ["MapEdge", "DecompNode", "Path", "Decomposition", "unit", "edge", "format_node"]


class MapEdge:
    """A map edge ``--ψ, K-->`` from a node to a child node.

    Parameters:
        key: the key columns ``K`` (non-empty).
        structure: the name of a registered container class (``htable``, ...).
        child: the target :class:`DecompNode`.
    """

    __slots__ = ("key", "structure", "child")

    def __init__(self, key: Union[str, Iterable[str]], structure: str, child: "DecompNode"):
        self.key: ColumnSet = columns(key)
        if not self.key:
            raise DecompositionError("a map edge needs at least one key column")
        if not isinstance(structure, str) or not structure:
            raise DecompositionError(f"edge structure must be a container name; got {structure!r}")
        # Fail fast on unknown container names (raises DecompositionError).
        get_structure(structure)
        if not isinstance(child, DecompNode):
            raise DecompositionError(f"edge child must be a DecompNode; got {type(child).__name__}")
        self.structure = structure
        self.child = child

    def structure_class(self):
        """The registered :class:`AssociativeContainer` subclass for this edge."""
        return get_structure(self.structure)

    def __repr__(self) -> str:
        return f"MapEdge({format_columns(self.key)} -> {self.structure})"


class DecompNode:
    """A node of a decomposition: either a unit leaf or a map node.

    A node holds *either* outgoing edges (an internal map node) *or* a set
    of unit columns (a leaf); the paper's grammar keeps the two separate and
    so does this class.
    """

    __slots__ = ("edges", "unit_columns")

    def __init__(
        self,
        edges: Sequence[MapEdge] = (),
        unit_columns: Union[str, Iterable[str]] = (),
    ):
        self.edges: PyTuple[MapEdge, ...] = tuple(edges)
        self.unit_columns: ColumnSet = columns(unit_columns)
        if self.edges and self.unit_columns:
            raise DecompositionError(
                "a decomposition node is either a map node (with edges) or a unit leaf "
                f"(with columns), not both: edges={list(self.edges)!r}, "
                f"unit={format_columns(self.unit_columns)}"
            )
        for e in self.edges:
            if not isinstance(e, MapEdge):
                raise DecompositionError(f"node edges must be MapEdge instances; got {e!r}")

    @property
    def is_unit(self) -> bool:
        """Is this node a unit leaf?"""
        return not self.edges

    def __repr__(self) -> str:
        if self.is_unit:
            return f"unit{format_columns(self.unit_columns)}"
        return f"DecompNode({len(self.edges)} edges)"


def unit(unit_columns: Union[str, Iterable[str]] = ()) -> DecompNode:
    """Build a unit leaf node, e.g. ``unit("state, cpu")``."""
    return DecompNode(unit_columns=unit_columns)


def edge(
    key: Union[str, Iterable[str]],
    structure: str,
    child: Union[DecompNode, str, Iterable[str]],
) -> DecompNode:
    """Build a single-edge map node, e.g. ``edge("ns, pid", "htable", unit("state, cpu"))``.

    As a convenience the child may be given as a column string/iterable, in
    which case it is wrapped in a unit leaf.
    """
    if not isinstance(child, DecompNode):
        child = unit(child)
    return DecompNode(edges=(MapEdge(key, structure, child),))


class Path:
    """A root-to-leaf path: the sequence of edges followed plus the leaf node.

    The per-path node typing ``B ▷ C`` of the paper is recovered from paths:
    :meth:`bound_at` gives ``B`` after the first *depth* edges and
    :meth:`covered` gives the full column set the path accounts for.
    """

    __slots__ = ("edges", "leaf", "edge_indices")

    def __init__(self, edges: Sequence[MapEdge], leaf: DecompNode, edge_indices: Sequence[int]):
        self.edges: PyTuple[MapEdge, ...] = tuple(edges)
        self.leaf = leaf
        #: For each step, the index of the edge among its source node's edges.
        self.edge_indices: PyTuple[int, ...] = tuple(edge_indices)

    def bound_at(self, depth: int) -> ColumnSet:
        """Columns bound after following the first *depth* edges of the path."""
        bound: ColumnSet = frozenset()
        for e in self.edges[:depth]:
            bound |= e.key
        return bound

    @property
    def bound(self) -> ColumnSet:
        """Columns bound at the leaf (the leaf's ``B``)."""
        return self.bound_at(len(self.edges))

    @property
    def covered(self) -> ColumnSet:
        """Every column this path accounts for: bound keys plus unit columns."""
        return self.bound | self.leaf.unit_columns

    def describe(self) -> str:
        parts = [f"{format_columns(e.key)}:{e.structure}" for e in self.edges]
        parts.append(f"unit{format_columns(self.leaf.unit_columns)}")
        return " -> ".join(parts)

    def __repr__(self) -> str:
        return f"Path({self.describe()})"


class Decomposition:
    """A named, validated decomposition: a root node plus structural checks.

    Construction performs the *structural* well-formedness checks that do
    not require a specification: the graph must be acyclic, every edge's
    structure must be registered, and no path may bind or store a column
    twice.  Checks against a specification (column coverage and the
    adequacy judgement of Section 3.2) are performed by
    :func:`repro.decomposition.adequacy.check_adequacy`.
    """

    __slots__ = ("name", "root", "_paths")

    #: Guard against pathological graphs: branching nodes multiply paths.
    MAX_PATHS = 64

    def __init__(self, root: DecompNode, name: str = "decomposition"):
        if not isinstance(root, DecompNode):
            raise DecompositionError(f"decomposition root must be a DecompNode; got {root!r}")
        self.name = name
        self.root = root
        self._paths: List[Path] = []
        self._validate()

    # -- structural validation -------------------------------------------------

    def _validate(self) -> None:
        paths: List[Path] = []

        def walk(node: DecompNode, edges: List[MapEdge], indices: List[int], on_path: List[DecompNode]) -> None:
            if any(node is seen for seen in on_path):
                raise DecompositionError(
                    f"decomposition {self.name!r} contains a cycle through {node!r}"
                )
            bound: ColumnSet = frozenset()
            for e in edges:
                bound |= e.key
            if node.is_unit:
                clash = node.unit_columns & bound
                if clash:
                    raise DecompositionError(
                        f"unit columns {format_columns(clash)} are already bound by "
                        f"map keys on the path to the leaf"
                    )
                if len(paths) >= self.MAX_PATHS:
                    raise DecompositionError(
                        f"decomposition {self.name!r} has more than "
                        f"{self.MAX_PATHS} root-to-leaf paths"
                    )
                paths.append(Path(edges, node, indices))
                return
            for index, e in enumerate(node.edges):
                clash = e.key & bound
                if clash:
                    raise DecompositionError(
                        f"map key {format_columns(e.key)} re-binds columns "
                        f"{format_columns(clash)} already bound on the path from the root"
                    )
                walk(e.child, edges + [e], indices + [index], on_path + [node])

        walk(self.root, [], [], [])
        self._paths = paths

    # -- inspection ------------------------------------------------------------

    def paths(self) -> List[Path]:
        """Every root-to-leaf path, in deterministic (left-to-right) order."""
        return list(self._paths)

    def nodes(self) -> List[DecompNode]:
        """Every distinct node, in pre-order (deduplicated by identity)."""
        seen: List[DecompNode] = []

        def visit(node: DecompNode) -> None:
            if any(node is s for s in seen):
                return
            seen.append(node)
            for e in node.edges:
                visit(e.child)

        visit(self.root)
        return seen

    def node_names(self) -> Dict[int, str]:
        """Stable display names (``x0``, ``x1``, ...) keyed by ``id(node)``."""
        return {id(node): f"x{i}" for i, node in enumerate(self.nodes())}

    def structures(self) -> List[str]:
        """The container names used by the decomposition, sorted."""
        return sorted({e.structure for p in self._paths for e in p.edges})

    def key_columns(self) -> ColumnSet:
        """Every column bound by some map key."""
        result: ColumnSet = frozenset()
        for p in self._paths:
            result |= p.bound
        return result

    def covered_columns(self) -> ColumnSet:
        """Every column mentioned anywhere in the decomposition."""
        result: ColumnSet = frozenset()
        for p in self._paths:
            result |= p.covered
        return result

    def depth(self) -> int:
        """Length of the longest root-to-leaf path (number of map levels)."""
        return max(len(p.edges) for p in self._paths)

    def __iter__(self) -> Iterator[Path]:
        return iter(self._paths)

    # -- formatting -------------------------------------------------------------

    def describe(self) -> str:
        """Render the decomposition in the textual notation of
        :mod:`repro.decomposition.parser` (the rendering re-parses to an
        equivalent decomposition)."""
        return format_node(self.root)

    def __repr__(self) -> str:
        return f"Decomposition({self.name!r}, {self.describe()})"


def format_node(
    node: DecompNode, structure_name: Optional[Callable[[str], str]] = None
) -> str:
    """Render *node* (and its subtree) in the textual decomposition notation.

    *structure_name* maps each edge's structure name for display — the
    default renders names as written; the autotuner passes alias resolution
    (for canonical dedup keys) or a constant (for structure-free shape
    skeletons), so every rendering shares one formatter.
    """
    if node.is_unit:
        return "{" + ", ".join(sorted(node.unit_columns)) + "}"
    rendered = [
        f"{', '.join(sorted(e.key))} -> "
        f"{structure_name(e.structure) if structure_name else e.structure} "
        f"{format_node(e.child, structure_name)}"
        for e in node.edges
    ]
    if len(rendered) == 1:
        return rendered[0]
    return "[" + " ; ".join(rendered) + "]"
