"""Decompositions: rooted DAGs describing how a relation is laid out (Section 3).

A *decomposition* describes how to represent a relation over columns ``C``
as a hierarchy of primitive containers.  It is a rooted directed acyclic
graph:

* an internal node has one or more outgoing :class:`MapEdge`\\ s.  An edge
  ``x --ψ, K--> y`` says: store the sub-relation at *x* in an associative
  container of kind ``ψ`` (``htable``, ``btree``, ``dlist``, ...) keyed by
  the columns ``K``, each entry holding a sub-instance shaped like *y*.
  A node with several outgoing edges stores its sub-relation once per edge
  (the paper's join/branch decompositions — e.g. an index by ``{ns, pid}``
  *and* an index by ``{state}``);
* a leaf node is a *unit* holding a single tuple over its residual columns
  (possibly none, in which case the unit is a pure presence marker).

Every node has a *type* ``B ▷ C``: ``B`` is the set of columns bound by map
keys on the way from the root, and ``C`` the columns the node's subtree
represents.  In this reproduction types are computed per root-to-leaf
:class:`Path` rather than stored on nodes, which lets the same node object
be reused in several positions.

This module defines the static shape only.  Judging a decomposition against
a :class:`~repro.core.spec.RelationSpec` lives in
:mod:`repro.decomposition.adequacy`; populated instances live in
:mod:`repro.decomposition.instance`.
"""

from __future__ import annotations

from typing import Callable, Dict, Iterable, Iterator, List, Optional, Sequence, Tuple as PyTuple, Union

from ..core.columns import ColumnSet, columns, format_columns
from ..core.errors import DecompositionError
from ..structures.registry import get_structure

__all__ = [
    "MapEdge",
    "DecompNode",
    "Path",
    "Decomposition",
    "unit",
    "edge",
    "format_node",
    "format_decomposition",
]


class MapEdge:
    """A map edge ``--ψ, K-->`` from a node to a child node.

    Parameters:
        key: the key columns ``K`` (non-empty).
        structure: the name of a registered container class (``htable``, ...).
        child: the target :class:`DecompNode`.
    """

    __slots__ = ("key", "structure", "child")

    def __init__(self, key: Union[str, Iterable[str]], structure: str, child: "DecompNode"):
        self.key: ColumnSet = columns(key)
        if not self.key:
            raise DecompositionError("a map edge needs at least one key column")
        if not isinstance(structure, str) or not structure:
            raise DecompositionError(f"edge structure must be a container name; got {structure!r}")
        # Fail fast on unknown container names (raises DecompositionError).
        get_structure(structure)
        if not isinstance(child, DecompNode):
            raise DecompositionError(f"edge child must be a DecompNode; got {type(child).__name__}")
        self.structure = structure
        self.child = child

    def structure_class(self):
        """The registered :class:`AssociativeContainer` subclass for this edge."""
        return get_structure(self.structure)

    def __repr__(self) -> str:
        return f"MapEdge({format_columns(self.key)} -> {self.structure})"


class DecompNode:
    """A node of a decomposition: either a unit leaf or a map node.

    A node holds *either* outgoing edges (an internal map node) *or* a set
    of unit columns (a leaf); the paper's grammar keeps the two separate and
    so does this class.
    """

    __slots__ = ("edges", "unit_columns")

    def __init__(
        self,
        edges: Sequence[MapEdge] = (),
        unit_columns: Union[str, Iterable[str]] = (),
    ):
        self.edges: PyTuple[MapEdge, ...] = tuple(edges)
        self.unit_columns: ColumnSet = columns(unit_columns)
        if self.edges and self.unit_columns:
            raise DecompositionError(
                "a decomposition node is either a map node (with edges) or a unit leaf "
                f"(with columns), not both: edges={list(self.edges)!r}, "
                f"unit={format_columns(self.unit_columns)}"
            )
        for e in self.edges:
            if not isinstance(e, MapEdge):
                raise DecompositionError(f"node edges must be MapEdge instances; got {e!r}")

    @property
    def is_unit(self) -> bool:
        """Is this node a unit leaf?"""
        return not self.edges

    def __repr__(self) -> str:
        if self.is_unit:
            return f"unit{format_columns(self.unit_columns)}"
        return f"DecompNode({len(self.edges)} edges)"


def unit(unit_columns: Union[str, Iterable[str]] = ()) -> DecompNode:
    """Build a unit leaf node, e.g. ``unit("state, cpu")``."""
    return DecompNode(unit_columns=unit_columns)


def edge(
    key: Union[str, Iterable[str]],
    structure: str,
    child: Union[DecompNode, str, Iterable[str]],
) -> DecompNode:
    """Build a single-edge map node, e.g. ``edge("ns, pid", "htable", unit("state, cpu"))``.

    As a convenience the child may be given as a column string/iterable, in
    which case it is wrapped in a unit leaf.
    """
    if not isinstance(child, DecompNode):
        child = unit(child)
    return DecompNode(edges=(MapEdge(key, structure, child),))


class Path:
    """A root-to-leaf path: the sequence of edges followed plus the leaf node.

    The per-path node typing ``B ▷ C`` of the paper is recovered from paths:
    :meth:`bound_at` gives ``B`` after the first *depth* edges and
    :meth:`covered` gives the full column set the path accounts for.
    """

    __slots__ = ("edges", "leaf", "edge_indices")

    def __init__(self, edges: Sequence[MapEdge], leaf: DecompNode, edge_indices: Sequence[int]):
        self.edges: PyTuple[MapEdge, ...] = tuple(edges)
        self.leaf = leaf
        #: For each step, the index of the edge among its source node's edges.
        self.edge_indices: PyTuple[int, ...] = tuple(edge_indices)

    def bound_at(self, depth: int) -> ColumnSet:
        """Columns bound after following the first *depth* edges of the path."""
        bound: ColumnSet = frozenset()
        for e in self.edges[:depth]:
            bound |= e.key
        return bound

    @property
    def bound(self) -> ColumnSet:
        """Columns bound at the leaf (the leaf's ``B``)."""
        return self.bound_at(len(self.edges))

    @property
    def covered(self) -> ColumnSet:
        """Every column this path accounts for: bound keys plus unit columns."""
        return self.bound | self.leaf.unit_columns

    def describe(self) -> str:
        parts = [f"{format_columns(e.key)}:{e.structure}" for e in self.edges]
        parts.append(f"unit{format_columns(self.leaf.unit_columns)}")
        return " -> ".join(parts)

    def __repr__(self) -> str:
        return f"Path({self.describe()})"


class Decomposition:
    """A named, validated decomposition: a root node plus structural checks.

    Construction performs the *structural* well-formedness checks that do
    not require a specification: the graph must be acyclic, every edge's
    structure must be registered, and no path may bind or store a column
    twice.  Checks against a specification (column coverage and the
    adequacy judgement of Section 3.2) are performed by
    :func:`repro.decomposition.adequacy.check_adequacy`.
    """

    __slots__ = ("name", "root", "_paths", "_node_bounds", "_parent_counts", "_coverage")

    #: Guard against pathological graphs: branching nodes multiply paths.
    MAX_PATHS = 64

    def __init__(self, root: DecompNode, name: str = "decomposition"):
        if not isinstance(root, DecompNode):
            raise DecompositionError(f"decomposition root must be a DecompNode; got {root!r}")
        self.name = name
        self.root = root
        self._paths: List[Path] = []
        self._node_bounds: Optional[Dict[int, List[ColumnSet]]] = None
        self._parent_counts: Optional[Dict[int, int]] = None
        self._coverage: Optional[Dict[int, ColumnSet]] = None
        self._validate()

    # -- structural validation -------------------------------------------------

    def _validate(self) -> None:
        paths: List[Path] = []

        def walk(node: DecompNode, edges: List[MapEdge], indices: List[int], on_path: List[DecompNode]) -> None:
            if any(node is seen for seen in on_path):
                raise DecompositionError(
                    f"decomposition {self.name!r} contains a cycle through {node!r}"
                )
            bound: ColumnSet = frozenset()
            for e in edges:
                bound |= e.key
            if node.is_unit:
                clash = node.unit_columns & bound
                if clash:
                    raise DecompositionError(
                        f"unit columns {format_columns(clash)} are already bound by "
                        f"map keys on the path to the leaf"
                    )
                if len(paths) >= self.MAX_PATHS:
                    raise DecompositionError(
                        f"decomposition {self.name!r} has more than "
                        f"{self.MAX_PATHS} root-to-leaf paths"
                    )
                paths.append(Path(edges, node, indices))
                return
            for index, e in enumerate(node.edges):
                clash = e.key & bound
                if clash:
                    raise DecompositionError(
                        f"map key {format_columns(e.key)} re-binds columns "
                        f"{format_columns(clash)} already bound on the path from the root"
                    )
                walk(e.child, edges + [e], indices + [index], on_path + [node])

        walk(self.root, [], [], [])
        self._paths = paths

    # -- inspection ------------------------------------------------------------

    def paths(self) -> List[Path]:
        """Every root-to-leaf path, in deterministic (left-to-right) order."""
        return list(self._paths)

    def nodes(self) -> List[DecompNode]:
        """Every distinct node, in pre-order (deduplicated by identity)."""
        seen: List[DecompNode] = []

        def visit(node: DecompNode) -> None:
            if any(node is s for s in seen):
                return
            seen.append(node)
            for e in node.edges:
                visit(e.child)

        visit(self.root)
        return seen

    def node_names(self) -> Dict[int, str]:
        """Stable display names (``x0``, ``x1``, ...) keyed by ``id(node)``."""
        return {id(node): f"x{i}" for i, node in enumerate(self.nodes())}

    # -- node sharing (Section 3's shared sub-nodes) -----------------------------

    def parent_counts(self) -> Dict[int, int]:
        """How many distinct map edges point at each node, keyed by ``id(node)``.

        A node with two or more parents is *shared*: several branches store
        a reference to the same child object (the paper's scheduler records,
        reached from both the ``ns, pid`` index and the per-``state`` lists).
        The root has no entry.  Cached — the graph is immutable after
        validation, and the planner asks on every ``plan_query`` call.
        """
        if self._parent_counts is not None:
            return self._parent_counts
        counts: Dict[int, int] = {}
        for node in self.nodes():
            for e in node.edges:
                counts[id(e.child)] = counts.get(id(e.child), 0) + 1
        self._parent_counts = counts
        return counts

    def shared_nodes(self) -> List[DecompNode]:
        """Every node reachable through two or more parent edges, in pre-order."""
        counts = self.parent_counts()
        return [node for node in self.nodes() if counts.get(id(node), 0) >= 2]

    def node_bounds(self) -> Dict[int, List[ColumnSet]]:
        """The bound column sets each node is reachable with, keyed by ``id(node)``.

        Computed by a traversal memoised on ``(node, bound)`` pairs, so a
        shared node is visited once per *distinct* bound set rather than once
        per root-to-leaf path — the adequacy checker uses this to type-check
        shared decompositions without enumerating an exponential path set.
        The result is cached (the graph is immutable after validation):
        callers iterating shared nodes pay one traversal, not one per node.
        """
        if self._node_bounds is not None:
            return self._node_bounds
        bounds: Dict[int, List[ColumnSet]] = {}
        seen: set = set()
        stack: List[PyTuple[DecompNode, ColumnSet]] = [(self.root, frozenset())]
        while stack:
            node, bound = stack.pop()
            key = (id(node), bound)
            if key in seen:
                continue
            seen.add(key)
            bounds.setdefault(id(node), []).append(bound)
            for e in reversed(node.edges):
                stack.append((e.child, bound | e.key))
        for entry in bounds.values():
            entry.sort(key=sorted)
        self._node_bounds = bounds
        return bounds

    def shared_bound(self, node: DecompNode) -> ColumnSet:
        """The unique bound column set of a shared node.

        Raises :class:`DecompositionError` when the node is reached with
        more than one bound set — instances and the code generator require
        every shared node to have one type ``B ▷ C`` (the adequacy checker
        reports this as an adequacy problem first).
        """
        entries = self.node_bounds().get(id(node), [])
        if len(entries) != 1:
            raise DecompositionError(
                f"shared node {node!r} of decomposition {self.name!r} is reached "
                f"with {len(entries)} different bound column sets "
                f"({[format_columns(b) for b in entries]}); a shared sub-node "
                f"must have a single type"
            )
        return entries[0]

    def node_coverage(self) -> Dict[int, ColumnSet]:
        """The columns each node's subtree reads or binds, keyed by ``id(node)``.

        A unit leaf covers its unit columns; a map node covers the union of
        ``edge.key ∪ coverage(child)`` over its edges.  With
        **key-projection branches** (a branch storing only a key subset of
        the columns — see :mod:`repro.decomposition.adequacy`) coverage
        differs per branch, and the planner's join search, the instances'
        projected branch-agreement check and the code generator's
        projected well-formedness all consume this map.  Cached — the graph
        is immutable after validation.
        """
        if self._coverage is not None:
            return self._coverage
        coverage: Dict[int, ColumnSet] = {}

        def visit(node: DecompNode) -> ColumnSet:
            cached = coverage.get(id(node))
            if cached is not None:
                return cached
            if node.is_unit:
                result = node.unit_columns
            else:
                result = frozenset()
                for e in node.edges:
                    result |= e.key | visit(e.child)
            coverage[id(node)] = result
            return result

        visit(self.root)
        self._coverage = coverage
        return coverage

    def edge_coverage(self, e: MapEdge) -> ColumnSet:
        """The columns one branch accounts for: ``e.key ∪ coverage(e.child)``."""
        return e.key | self.node_coverage()[id(e.child)]

    def structures(self) -> List[str]:
        """The container names used by the decomposition, sorted."""
        return sorted({e.structure for p in self._paths for e in p.edges})

    def key_columns(self) -> ColumnSet:
        """Every column bound by some map key."""
        result: ColumnSet = frozenset()
        for p in self._paths:
            result |= p.bound
        return result

    def covered_columns(self) -> ColumnSet:
        """Every column mentioned anywhere in the decomposition."""
        result: ColumnSet = frozenset()
        for p in self._paths:
            result |= p.covered
        return result

    def depth(self) -> int:
        """Length of the longest root-to-leaf path (number of map levels)."""
        return max(len(p.edges) for p in self._paths)

    def __iter__(self) -> Iterator[Path]:
        return iter(self._paths)

    # -- formatting -------------------------------------------------------------

    def describe(self) -> str:
        """Render the decomposition in the textual notation of
        :mod:`repro.decomposition.parser` (the rendering re-parses to an
        equivalent decomposition, preserving node sharing via ``@name``
        references and a ``where`` clause)."""
        return format_decomposition(self.root)

    def __repr__(self) -> str:
        return f"Decomposition({self.name!r}, {self.describe()})"


def format_node(
    node: DecompNode,
    structure_name: Optional[Callable[[str], str]] = None,
    shared_names: Optional[Dict[int, str]] = None,
) -> str:
    """Render *node* (and its subtree) in the textual decomposition notation.

    *structure_name* maps each edge's structure name for display — the
    default renders names as written; the autotuner passes alias resolution
    (for canonical dedup keys) or a constant (for structure-free shape
    skeletons), so every rendering shares one formatter.

    *shared_names* maps ``id(child)`` to a name for children that must be
    rendered as ``@name`` references instead of being expanded in place —
    :func:`format_decomposition` uses it to emit each shared node once.
    The node passed in is always expanded (so a shared node's own
    definition body renders normally).
    """
    if node.is_unit:
        return "{" + ", ".join(sorted(node.unit_columns)) + "}"

    def child_text(child: DecompNode) -> str:
        if shared_names is not None and id(child) in shared_names:
            return f"@{shared_names[id(child)]}"
        return format_node(child, structure_name, shared_names)

    rendered = [
        f"{', '.join(sorted(e.key))} -> "
        f"{structure_name(e.structure) if structure_name else e.structure} "
        f"{child_text(e.child)}"
        for e in node.edges
    ]
    if len(rendered) == 1:
        return rendered[0]
    return "[" + " ; ".join(rendered) + "]"


def format_decomposition(
    root: DecompNode, structure_name: Optional[Callable[[str], str]] = None
) -> str:
    """Render a whole decomposition, emitting each shared node exactly once.

    Nodes with a single parent render inline as before.  Nodes reached
    through several parent edges are replaced by ``@name`` references and
    defined once in a trailing ``where`` clause::

        [ns, pid -> htable (state -> htable @s0) ;
         state -> htable (ns, pid -> ilist @s0)] where @s0 = {cpu}

    Definitions are emitted innermost-first, so each definition only
    references names defined before it — the property the parser's
    single-pass resolution relies on.  Re-parsing the rendering yields one
    node object per name, so sharing survives a ``parse(format(d))``
    round-trip by object identity.
    """
    order: List[DecompNode] = []

    def visit(node: DecompNode) -> None:
        if any(node is s for s in order):
            return
        order.append(node)
        for e in node.edges:
            visit(e.child)

    visit(root)
    counts: Dict[int, int] = {}
    for node in order:
        for e in node.edges:
            counts[id(e.child)] = counts.get(id(e.child), 0) + 1
    shared = [node for node in order if counts.get(id(node), 0) >= 2]
    if not shared:
        return format_node(root, structure_name)
    names = {id(node): f"s{i}" for i, node in enumerate(shared)}

    postorder: List[DecompNode] = []

    def post(node: DecompNode) -> None:
        if any(node is s for s in postorder):
            return
        for e in node.edges:
            post(e.child)
        postorder.append(node)

    post(root)
    definitions = [
        f"@{names[id(node)]} = {format_node(node, structure_name, names)}"
        for node in postorder
        if id(node) in names
    ]
    main = format_node(root, structure_name, names)
    return f"{main} where {' ; '.join(definitions)}"
