"""Data representation synthesis (Hawkins et al., PLDI 2011) in Python.

The library is layered like the paper:

* :mod:`repro.core` — relational specifications ``(C, ∆)``, functional
  dependencies, relational algebra, the five-operation relational
  interface, and its reference implementation (Section 2);
* :mod:`repro.decomposition` — decompositions, the adequacy judgement, the
  abstraction function α, query plans, and the decomposed implementation
  of the relational interface (Sections 3–4);
* :mod:`repro.structures` — the primitive container library backing map
  edges (Section 6);
* :mod:`repro.codegen` — the performance tier: compile a decomposition
  into a standalone specialised class (the paper's code generator);
* :mod:`repro.autotuner` — the synthesis loop (Section 5): record an
  operation trace, enumerate adequate decompositions, score them against
  the trace, and compile the winner (``synthesize(spec, trace)``).

The most common entry points are re-exported here::

    from repro import RelationSpec, DecomposedRelation, t

    spec = RelationSpec("ns, pid, state, cpu", fds=["ns, pid -> state, cpu"])
    processes = DecomposedRelation(spec, "ns, pid -> htable {state, cpu}")
    processes.insert(t(ns=1, pid=42, state="running", cpu=0))
"""

from .autotuner import Trace, TraceRecorder, autotune, enumerate_decompositions, synthesize
from .codegen import compile_relation, generate_source
from .core import (
    FDSet,
    FunctionalDependency,
    ReferenceRelation,
    Relation,
    RelationInterface,
    RelationSpec,
    Tuple,
    t,
)
from .decomposition import (
    DecomposedRelation,
    Decomposition,
    check_adequacy,
    is_adequate,
    parse_decomposition,
    plan_query,
    validate_plan,
)

__version__ = "0.1.0"

__all__ = [
    "DecomposedRelation",
    "Decomposition",
    "FDSet",
    "FunctionalDependency",
    "ReferenceRelation",
    "Relation",
    "RelationInterface",
    "RelationSpec",
    "Trace",
    "TraceRecorder",
    "Tuple",
    "autotune",
    "check_adequacy",
    "compile_relation",
    "enumerate_decompositions",
    "generate_source",
    "is_adequate",
    "parse_decomposition",
    "plan_query",
    "validate_plan",
    "synthesize",
    "t",
    "__version__",
]
