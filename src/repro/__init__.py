"""Data representation synthesis (Hawkins et al., PLDI 2011) in Python.

**The canonical entry point is** :func:`repro.open` — one factory behind
every tier of the library::

    import repro
    from repro import RelationSpec, t

    spec = RelationSpec("ns, pid, state, cpu", fds=["ns, pid -> state, cpu"])

    # An explicit layout, compiled (the default tier):
    processes = repro.open(spec, "ns, pid -> htable {state, cpu}")
    processes.insert(t(ns=1, pid=42, state="running", cpu=0))

    # Let the autotuner pick the layout from a recorded trace:
    processes = repro.open(spec, tune=trace)

    # A live relation: always-on sampling, automatic re-tune, and
    # hot-swap between layouts via the abstraction function α:
    processes = repro.open(spec, live=True)

``tier="reference" | "interpreted" | "compiled" | "auto"`` selects the
implementation; every tier honours the same five-operation contract
(:class:`~repro.core.interface.RelationInterface`), which is the paper's
central abstraction claim.  The constituent classes remain importable for
direct use — ``ReferenceRelation``, ``DecomposedRelation``,
``compile_relation``, ``synthesize`` — but new code should go through the
factory, which is what the benchmarks and docs use.

The library is layered like the paper:

* :mod:`repro.core` — relational specifications ``(C, ∆)``, functional
  dependencies, relational algebra, the five-operation relational
  interface, and its reference implementation (Section 2);
* :mod:`repro.decomposition` — decompositions, the adequacy judgement, the
  abstraction function α, query plans, and the decomposed implementation
  of the relational interface (Sections 3–4);
* :mod:`repro.structures` — the primitive container library backing map
  edges (Section 6);
* :mod:`repro.codegen` — the performance tier: compile a decomposition
  into a standalone specialised class (the paper's code generator);
* :mod:`repro.autotuner` — the synthesis loop (Section 5): record an
  operation trace, enumerate adequate decompositions, score them against
  the trace, and compile the winner (``synthesize(spec, trace)``);
* :mod:`repro.live` — the online closing of that loop:
  :class:`~repro.live.LiveRelation` samples its own workload, re-tunes
  when the operation mix drifts, and migrates between layouts via α.
"""

from .autotuner import Trace, TraceRecorder, autotune, enumerate_decompositions, synthesize
from .codegen import compile_relation, generate_source
from .core import (
    FDSet,
    FunctionalDependency,
    ReferenceRelation,
    Relation,
    RelationInterface,
    RelationSpec,
    Tuple,
    t,
)
from .decomposition import (
    DecomposedRelation,
    Decomposition,
    check_adequacy,
    is_adequate,
    parse_decomposition,
    plan_query,
    validate_plan,
)
from .faults import FAULTS, fault_sites, inject
from .live import (
    LiveRelation,
    RetunePolicy,
    RetuneReport,
    SamplingTraceRecorder,
    open_relation,
)

#: ``repro.open`` — the factory is deliberately named after the builtin it
#: shadows *inside this namespace only*; import it as ``open_relation`` if
#: the name matters in your module.
open = open_relation

__version__ = "0.1.0"

__all__ = [
    "DecomposedRelation",
    "Decomposition",
    "FAULTS",
    "FDSet",
    "FunctionalDependency",
    "LiveRelation",
    "ReferenceRelation",
    "Relation",
    "RelationInterface",
    "RelationSpec",
    "RetunePolicy",
    "RetuneReport",
    "SamplingTraceRecorder",
    "Trace",
    "TraceRecorder",
    "Tuple",
    "autotune",
    "check_adequacy",
    "compile_relation",
    "enumerate_decompositions",
    "fault_sites",
    "generate_source",
    "inject",
    "is_adequate",
    "open",
    "open_relation",
    "parse_decomposition",
    "plan_query",
    "validate_plan",
    "synthesize",
    "t",
    "__version__",
]
