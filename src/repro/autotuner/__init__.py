"""The §5 autotuner: pick a decomposition for a spec from a recorded trace.

This package closes the paper's synthesis loop — *"given a relational
specification and a workload, synthesize the best representation"*:

* :mod:`~repro.autotuner.trace` — the workload: record the five relational
  operations from any :class:`~repro.core.interface.RelationInterface`
  (:class:`TraceRecorder`) or adapt a benchmark workload
  (:meth:`Trace.from_workload`); replay against any tier;
* :mod:`~repro.autotuner.enumerator` — bounded-depth enumeration of
  adequate candidate decompositions (single-path + 2-branch shapes,
  structure assignments from the registry);
* :mod:`~repro.autotuner.scorer` — the two-phase scorer: static
  plan-cost estimates prune, exact
  :class:`~repro.structures.base.OperationCounter` replay ranks, Pareto
  front over (accesses, memory proxy);
* :mod:`~repro.autotuner.tuner` — :func:`autotune` (the full search,
  returning a :class:`TuningResult`) and :func:`synthesize` (search +
  :func:`~repro.codegen.compile_relation` of the winner).

Quickstart::

    from repro import RelationSpec, ReferenceRelation
    from repro.autotuner import TraceRecorder, synthesize

    spec = RelationSpec("ns, pid, state, cpu", fds=["ns, pid -> state, cpu"])
    recorder = TraceRecorder(ReferenceRelation(spec))
    run_application(recorder)            # any RelationInterface consumer

    Tuned = synthesize(spec, recorder.trace)   # a compiled relation class
    processes = Tuned()                        # same five-operation interface

``python -m repro.autotuner <workload>`` runs the tuner against a benchmark
workload and verifies the winner (the CI smoke step).
"""

from .enumerator import canonical_shape, enumerate_decompositions, representative_structures
from .scorer import ScoredCandidate, exact_accesses, memory_proxy, pareto_front, static_cost
from .trace import Trace, TraceProfile, TraceRecorder, replay_operations, replay_trace
from .tuner import TuningResult, autotune, synthesize

__all__ = [
    "ScoredCandidate",
    "Trace",
    "TraceProfile",
    "TraceRecorder",
    "TuningResult",
    "autotune",
    "canonical_shape",
    "enumerate_decompositions",
    "exact_accesses",
    "memory_proxy",
    "pareto_front",
    "replay_operations",
    "replay_trace",
    "representative_structures",
    "static_cost",
    "synthesize",
]
