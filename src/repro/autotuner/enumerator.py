"""Bounded-depth enumeration of adequate candidate decompositions (Section 5).

The autotuner's search space is generated, not hand-listed: given a
specification ``(C, ∆)`` and the pattern column sets a workload binds, the
enumerator yields every decomposition it will consider, **adequate by
construction**:

* **single-path layouts** — for each interesting bound set ``B`` (the
  specification's minimal keys, and ``C`` itself for fully-bound layouts),
  every ordered partition of ``B`` into at most ``max_depth`` map levels,
  with the residual ``C \\ B`` stored in the unit leaf.  Since ``B`` is a
  key, the path's enforced dependency ``B → C \\ B`` is justified and the
  layout is adequate (Figure 6);
* **secondary index paths** — for each workload pattern column set ``P``
  that is not itself a key, the two-level path ``P → (K \\ P) → unit`` for
  each minimal key ``K`` (the scheduler's ``state → (ns, pid) → {cpu}``
  shape), plus the fully-bound variant ``P → (C \\ P) → {}``.  These are
  also offered standalone;
* **2-branch variants** — every primary single-path layout over a minimal
  key paired with every secondary index path, sharing the root (the
  paper's branching decompositions: one tuple stored once per branch);
* **shared-node variants** (Section 3's shared sub-nodes) — for each
  minimal key ``K`` and workload pattern ``P``, the two branches
  ``K → (P \\ K) → @u`` and ``(P \\ K) → K → @u`` *converging on one
  shared unit* ``@u = C \\ (K ∪ P)``: the paper's scheduler records,
  reached from both the primary-key index and the per-``P`` lists, stored
  once and unlinked in O(1) by intrusive containers.

Each shape is instantiated once per **structure assignment**: one container
choice per edge, drawn from :func:`~repro.structures.registry.default_structure_names`
(or a caller-supplied list) collapsed to one representative per *cost
class*.  ``dlist`` and ``ilist`` share lookup/scan cost curves, so for
ordinary edges ``dlist`` stands in for both — but on edges **into a shared
node** intrusiveness is behaviourally meaningful (O(1) unlink vs. a linear
victim scan), so there ``ilist`` is offered as an additional choice.
``ilist`` is never proposed on a non-shared edge, where it could not be
distinguished from ``dlist``; ``vector`` has its own cost curve (``n/4``
contiguous probes vs. ``n/2`` pointer chasing) and therefore its own class.
Candidates are deduplicated by canonical shape (structure aliases such as
``btree`` resolve to their canonical names first; sharing is part of the
shape, so a shared layout never collides with its per-branch-copy twin).

What the enumerator deliberately does **not** explore (see ROADMAP):
≥3-branch layouts, depth beyond ``max_depth``, shared *map* sub-nodes
(only shared unit leaves are enumerated; the instance/codegen layers
support the general case), and key partitions inside shared variants.
"""

from __future__ import annotations

from itertools import product
from typing import Dict, FrozenSet, Iterable, Iterator, List, Optional, Sequence, Tuple as PyTuple

from ..core.columns import ColumnSet, columns
from ..core.errors import AutotunerError
from ..core.spec import RelationSpec
from ..decomposition.adequacy import check_adequacy
from ..decomposition.model import Decomposition, DecompNode, MapEdge, format_decomposition
from ..structures.registry import (
    canonical_structure_name,
    default_structure_names,
    get_structure,
)

__all__ = [
    "enumerate_decompositions",
    "canonical_shape",
    "shape_skeleton",
    "representative_structures",
    "PathShape",
]

#: A path shape: the ordered key groups of its map levels plus the unit
#: columns of its leaf.
PathShape = PyTuple[PyTuple[ColumnSet, ...], ColumnSet]


def canonical_shape(decomposition: Decomposition) -> str:
    """A canonical text key for deduplicating decompositions by shape.

    :meth:`Decomposition.describe` with structure aliases resolved
    (``btree`` → ``avl``), so a layout written with either name maps to the
    same key.  Node sharing is part of the key (shared nodes render as
    ``@name`` references), so a shared layout and its per-branch-copy twin
    are distinct candidates.
    """
    return format_decomposition(decomposition.root, canonical_structure_name)


def shape_skeleton(decomposition: Decomposition) -> str:
    """The decomposition's shape with the structure names erased.

    Candidates sharing a skeleton differ only in container flavour; the
    tuner's exact-replay beam caps how many of them advance, so a block of
    cost-tied same-shape variants cannot crowd every *different* shape out
    of the replay phase.
    """
    return format_decomposition(decomposition.root, lambda _name: "?")


def representative_structures(names: Optional[Sequence[str]] = None) -> List[str]:
    """Collapse *names* to one representative per cost model.

    Containers with identical lookup/scan cost curves (sampled at a few
    sizes) are indistinguishable to both scoring phases, so only the first
    of each group is kept — e.g. the default library's ``dlist`` stands in
    for ``ilist`` on ordinary edges (``vector`` has its own curve, ``n/4``,
    and keeps its own class).  Intrusiveness is *not* part of the curve:
    on edges into a shared node, where O(1) unlink is behaviourally
    meaningful, the enumerator re-adds ``ilist`` as an extra choice
    (:data:`SHARED_EDGE_EXTRAS`) rather than collapsing it here.
    """
    if names is None:
        names = default_structure_names()
    sample_sizes = (1.0, 8.0, 64.0, 1024.0)
    seen: Dict[tuple, str] = {}
    representatives: List[str] = []
    for name in names:
        canonical = canonical_structure_name(name)
        cls = get_structure(canonical)
        signature = tuple(
            (round(cls.estimate_accesses(n), 9), round(cls.scan_cost(n), 9))
            for n in sample_sizes
        )
        if signature not in seen:
            seen[signature] = canonical
            representatives.append(canonical)
    return representatives


def _ordered_partitions(cols: ColumnSet, max_groups: int) -> Iterator[PyTuple[ColumnSet, ...]]:
    """Ordered partitions of *cols* into 1..max_groups non-empty groups.

    Deterministic: first groups are enumerated by (size, sorted names).
    """
    members = sorted(cols)
    if not members:
        return
    if max_groups <= 1:
        yield (frozenset(members),)
        return

    def subsets() -> Iterator[FrozenSet[str]]:
        # Non-empty proper subsets by (size, lexicographic), then the whole set.
        from itertools import combinations

        for size in range(1, len(members)):
            for combo in combinations(members, size):
                yield frozenset(combo)

    yield (frozenset(members),)
    for first in subsets():
        rest = frozenset(members) - first
        for tail in _ordered_partitions(rest, max_groups - 1):
            yield (first,) + tail


#: Extra container choices offered on edges whose child is a shared node,
#: where intrusiveness is behaviourally meaningful (O(1) unlink of a record
#: both branches hold by reference) — never on ordinary edges, where these
#: structures are cost-indistinguishable from their representative.
SHARED_EDGE_EXTRAS = ("ilist",)


def _build_branch(shape: PathShape, structures: Sequence[str]) -> MapEdge:
    """Build one root edge chaining the shape's key groups down to its unit."""
    groups, unit_cols = shape
    node = DecompNode(unit_columns=unit_cols)
    for key, structure in zip(reversed(groups), reversed(list(structures))):
        node = DecompNode(edges=(MapEdge(key, structure, node),))
    return node.edges[0]


def _build_shared_root(
    key_set: ColumnSet,
    pattern: ColumnSet,
    unit_cols: ColumnSet,
    structures: Sequence[str],
) -> DecompNode:
    """Two branches converging on one shared unit leaf.

    ``structures`` is ``(sA1, sA2, sB1, sB2)``: branch A is
    ``K -sA1-> (P -sA2-> @u)``, branch B is ``P -sB1-> (K -sB2-> @u)``;
    both reach ``@u`` with bound columns ``K ∪ P``, so the shared node has
    a single type and instances materialise one record per binding.
    """
    a1, a2, b1, b2 = structures
    shared = DecompNode(unit_columns=unit_cols)
    branch_a = MapEdge(key_set, a1, DecompNode(edges=(MapEdge(pattern, a2, shared),)))
    branch_b = MapEdge(pattern, b1, DecompNode(edges=(MapEdge(key_set, b2, shared),)))
    return DecompNode(edges=(branch_a, branch_b))


def _shape_edge_count(shapes: Sequence[PathShape]) -> int:
    return sum(len(groups) for groups, _ in shapes)


def enumerate_decompositions(
    spec: RelationSpec,
    patterns: Iterable = (),
    structures: Optional[Sequence[str]] = None,
    max_depth: int = 2,
    max_candidates: Optional[int] = None,
) -> List[Decomposition]:
    """Enumerate adequate candidate decompositions for *spec*.

    Args:
        spec: the relational specification ``(C, ∆)``.
        patterns: pattern column sets the workload binds (strings, iterables
            or frozensets) — these seed the secondary index shapes.
        structures: container names to assign per edge (default:
            :func:`default_structure_names`), collapsed to cost-model
            representatives.
        max_depth: maximum number of map levels on any path (≥ 1).
        max_candidates: optional hard cap; enumeration stops (deterministically)
            once reached.

    Returns:
        Deduplicated list of adequate decompositions, each named
        ``auto0, auto1, ...`` in enumeration order.

    Raises:
        AutotunerError: on a non-positive depth or an empty search space.
    """
    if max_depth < 1:
        raise AutotunerError(f"max_depth must be at least 1; got {max_depth}")
    cols = spec.columns
    reps = representative_structures(structures)
    if not reps:
        raise AutotunerError("no candidate structures to assign to map edges")
    #: Every structure the caller actually allows (canonicalised) — the
    #: shared-edge extras are drawn from this set, never beyond it.
    allowed = {
        canonical_structure_name(name)
        for name in (structures if structures is not None else default_structure_names())
    }

    minimal_keys = [k for k in spec.minimal_keys() if k]
    pattern_sets: List[ColumnSet] = []
    for pattern in patterns:
        normalized = frozenset(columns(pattern)) & cols
        if normalized and normalized < cols and normalized not in pattern_sets:
            pattern_sets.append(normalized)
    pattern_sets.sort(key=lambda s: (len(s), sorted(s)))

    # -- path shapes ------------------------------------------------------------

    primary_shapes: List[PathShape] = []  # over minimal keys: 2-branch primaries
    single_shapes: List[PathShape] = []  # offered standalone

    def add_shape(target: List[PathShape], shape: PathShape) -> None:
        if shape not in target:
            target.append(shape)

    for key_set in minimal_keys:
        for groups in _ordered_partitions(key_set, max_depth):
            shape = (groups, cols - key_set)
            add_shape(primary_shapes, shape)
            add_shape(single_shapes, shape)
    if frozenset(cols) not in minimal_keys:
        for groups in _ordered_partitions(cols, max_depth):
            add_shape(single_shapes, (groups, frozenset()))

    secondary_shapes: List[PathShape] = []
    if max_depth >= 2:
        for pattern in pattern_sets:
            if spec.fds.is_key(pattern, cols):
                continue  # A key pattern is already served by a primary shape.
            residuals = [cols - pattern]
            for key_set in minimal_keys:
                residual = key_set - pattern
                if residual and residual not in residuals:
                    residuals.append(residual)
            for second in residuals:
                bound = pattern | second
                if not spec.fds.is_key(bound, cols):
                    continue  # Inadequate: the path would enforce an unjustified FD.
                shape = ((pattern, second), cols - bound)
                add_shape(secondary_shapes, shape)
                add_shape(single_shapes, shape)

    # -- instantiate structure assignments --------------------------------------

    decompositions: List[Decomposition] = []
    seen_shapes: set = set()
    truncated = False

    def emit(branch_shapes: Sequence[PathShape]) -> bool:
        """Instantiate every structure assignment of one multi-branch shape.

        Returns ``False`` once the candidate cap is reached.
        """
        nonlocal truncated
        edge_count = _shape_edge_count(branch_shapes)
        for assignment in product(reps, repeat=edge_count):
            if max_candidates is not None and len(decompositions) >= max_candidates:
                truncated = True
                return False
            edges: List[MapEdge] = []
            offset = 0
            for groups, unit_cols in branch_shapes:
                branch_structures = assignment[offset : offset + len(groups)]
                offset += len(groups)
                edges.append(_build_branch((groups, unit_cols), branch_structures))
            root = DecompNode(edges=tuple(edges))
            decomposition = Decomposition(root, name=f"auto{len(decompositions)}")
            key = canonical_shape(decomposition)
            if key in seen_shapes:
                continue
            check_adequacy(decomposition, spec)  # Adequate by construction.
            seen_shapes.add(key)
            decompositions.append(decomposition)
        return True

    def emit_shared() -> bool:
        """Instantiate the shared-node 2-branch variants (one per minimal
        key × non-key workload pattern × structure assignment); edges into
        the shared unit additionally offer the intrusive choices."""
        nonlocal truncated
        if max_depth < 2:
            return True
        shared_extras = [
            canonical
            for canonical in (canonical_structure_name(n) for n in SHARED_EDGE_EXTRAS)
            if canonical in allowed and canonical not in reps
        ]
        into_shared = reps + shared_extras
        for key_set in minimal_keys:
            for pattern in pattern_sets:
                effective = pattern - key_set
                if not effective or spec.fds.is_key(pattern, cols):
                    continue
                unit_cols = cols - (key_set | effective)
                for assignment in product(reps, into_shared, reps, into_shared):
                    if max_candidates is not None and len(decompositions) >= max_candidates:
                        truncated = True
                        return False
                    a1, a2, b1, b2 = assignment
                    root = _build_shared_root(
                        key_set, effective, unit_cols, (a1, a2, b1, b2)
                    )
                    decomposition = Decomposition(root, name=f"auto{len(decompositions)}")
                    key = canonical_shape(decomposition)
                    if key in seen_shapes:
                        continue
                    check_adequacy(decomposition, spec)  # Adequate by construction.
                    seen_shapes.add(key)
                    decompositions.append(decomposition)
        return True

    for shape in single_shapes:
        if not emit([shape]):
            break
    if not truncated:
        for primary in primary_shapes:
            for secondary in secondary_shapes:
                if primary == secondary:
                    continue
                if not emit([primary, secondary]):
                    break
            if truncated:
                break
    if not truncated:
        emit_shared()

    if not decompositions:
        raise AutotunerError(
            f"no adequate decompositions enumerable for specification {spec.name!r} "
            f"(columns {sorted(cols)}, fds {spec.fds!r}) at max_depth={max_depth}"
        )
    return decompositions
