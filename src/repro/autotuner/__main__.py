"""Autotuner smoke CLI: tune a benchmark workload and verify the winner.

Used by CI's bench job::

    PYTHONPATH=src python -m repro.autotuner scheduler --quick

Runs the full §5 loop against one workload from ``benchmarks/workloads.py``
(which must be importable — run from the repository root), prints the
scored candidate table, and exits non-zero unless

* the winner's exact access count is strictly below the worst replayed
  candidate's (the tuner is discriminating, not rubber-stamping), and
* the winner is no worse than the workload's hand-written layout.
"""

from __future__ import annotations

import argparse
import sys
from typing import List, Optional

from .trace import Trace
from .tuner import autotune


def main(argv: Optional[List[str]] = None) -> int:
    parser = argparse.ArgumentParser(
        prog="python -m repro.autotuner",
        description="Tune a benchmark workload and verify the winning layout.",
    )
    parser.add_argument("workload", help="workload name from benchmarks/workloads.py")
    parser.add_argument(
        "--quick", action="store_true", help="small trace (CI smoke mode)"
    )
    parser.add_argument(
        "--max-depth", type=int, default=2, help="maximum map levels per path"
    )
    parser.add_argument(
        "--exact-top",
        type=int,
        default=None,
        help="candidates advancing to exact replay (default: the tuner's)",
    )
    parser.add_argument(
        "--explain",
        action="store_true",
        help="print the winner's chosen query plan per workload pattern, "
        "with the Figure 8 validity witness (bound / checked / FD-closed)",
    )
    args = parser.parse_args(argv)

    try:
        from benchmarks.workloads import DEFAULT_SCALE, QUICK_SCALE, WORKLOADS
    except ImportError:
        print(
            "cannot import benchmarks.workloads — run from the repository root "
            "(the benchmarks/ package must be importable)",
            file=sys.stderr,
        )
        return 2
    builder = WORKLOADS.get(args.workload)
    if builder is None:
        print(
            f"unknown workload {args.workload!r}; available: {sorted(WORKLOADS)}",
            file=sys.stderr,
        )
        return 2

    workload = builder(QUICK_SCALE if args.quick else DEFAULT_SCALE)
    trace = Trace.from_workload(workload)
    options = {"max_depth": args.max_depth, "include": [workload.layout]}
    if args.exact_top is not None:
        options["exact_top"] = args.exact_top
    result = autotune(workload.spec, trace, **options)
    print(result.describe())

    if args.explain:
        from ..decomposition.plan import plan_query
        from .scorer import estimate_edge_sizes

        profile = trace.profile()
        sizes = estimate_edge_sizes(result.winner_decomposition, profile)
        print("\nwinner plans per workload pattern (trace-estimated sizes):")
        patterns = sorted(profile.pattern_columns(), key=lambda p: (len(p), sorted(p)))
        for pattern in patterns:
            plan = plan_query(
                result.winner_decomposition, pattern, sizes=sizes, spec=workload.spec
            )
            shown = "{" + ", ".join(sorted(pattern)) + "}"
            print(f"  {shown or '{}'}: {plan.describe()}")

    failures = []
    worst = result.replayed[-1]
    if not (result.winner.accesses < worst.accesses):
        failures.append(
            f"winner ({result.winner.accesses:,d} accesses) does not beat the worst "
            f"replayed candidate ({worst.accesses:,d})"
        )
    # The hand-written layout was passed via include, so it is in `replayed`.
    from ..decomposition.parser import parse_decomposition
    from .enumerator import canonical_shape

    hand_shape = canonical_shape(parse_decomposition(workload.layout))
    hand = next(
        (c for c in result.replayed if canonical_shape(c.decomposition) == hand_shape),
        None,
    )
    if hand is None:
        failures.append("hand-written layout missing from the replayed candidates")
    elif result.winner.accesses > hand.accesses:
        failures.append(
            f"winner ({result.winner.accesses:,d} accesses) is worse than the "
            f"hand-written layout ({hand.accesses:,d})"
        )
    else:
        print(
            f"winner: {result.winner.accesses:,d} accesses vs hand-written "
            f"{hand.accesses:,d} ({hand.accesses / max(1, result.winner.accesses):.2f}x)"
        )

    if failures:
        print("\nAUTOTUNER SMOKE FAILURES:", file=sys.stderr)
        for failure in failures:
            print(f"  - {failure}", file=sys.stderr)
        return 1
    print("autotuner smoke passed")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
