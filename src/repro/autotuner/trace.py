"""Operation traces: record, profile, and replay the five relational operations.

The autotuner (Section 5) scores candidate decompositions against a
*workload*: a concrete sequence of the five relational operations of
Section 2.  This module provides the workload representation:

* :class:`Trace` — an immutable-ish list of operations over one
  specification, replayable against any :class:`RelationInterface` tier
  (reference, interpreted, compiled) via :func:`replay_trace`;
* :class:`TraceRecorder` — a transparent :class:`RelationInterface`
  wrapper that forwards every operation to an inner relation and records
  the ones that succeed, so real application code can be profiled without
  modification;
* :meth:`Trace.from_workload` — adapter for the benchmark workloads in
  ``benchmarks/workloads.py``, which already store their traces in the
  same ``(kind, *args)`` format;
* :meth:`Trace.profile` — the static summary (operation counts per pattern
  column set, approximate live size) consumed by the autotuner's cheap
  scoring phase.
"""

from __future__ import annotations

from typing import Dict, Iterable, Iterator, List, Mapping, Tuple as PyTuple, Union

from ..core.errors import AutotunerError
from ..core.interface import RelationInterface, coerce_tuple
from ..core.relation import Relation
from ..core.spec import RelationSpec
from ..core.tuples import Tuple

__all__ = [
    "Operation",
    "Trace",
    "TraceProfile",
    "TraceRecorder",
    "replay_operations",
    "replay_trace",
]

#: ``("insert", tuple) | ("remove", pattern) | ("update", pattern, changes)
#: | ("query", pattern, output-or-None) | ("range", column, lo, hi)`` — the
#: format shared with ``benchmarks/workloads.py``.
Operation = PyTuple

#: Operation kind → full tuple length (kind plus its arguments).
_ARITIES = {"insert": 2, "remove": 2, "update": 3, "query": 3, "range": 4}


class TraceProfile:
    """Static summary of a trace, consumed by the autotuner's cheap scorer.

    Attributes:
        inserts: number of insert operations.
        queries / removes / updates: operation counts keyed by the frozenset
            of pattern columns each operation binds.
        update_changes: update counts keyed by ``(pattern columns, changed
            columns)`` — the finer split the static scorer needs to price
            residual-only updates by the in-place batch path instead of the
            generic remove/re-insert (see
            :func:`repro.autotuner.scorer.static_cost`).
        approx_max_size: upper estimate of the relation's live size while
            the trace runs (inserts minus full clears; removals by pattern
            are not tracked, so this over-estimates).  Informational — the
            static scorer sizes containers from the distinct-value
            statistics below, not from this.
        column_distinct: distinct values observed per column across the
            trace's inserts — the workload statistics the static scorer uses
            to estimate per-edge container sizes (how many entries a map
            keyed by ``K`` holds, under the usual independence assumption).
        distinct_tuples: distinct full tuples observed across inserts.
    """

    __slots__ = (
        "inserts",
        "queries",
        "removes",
        "updates",
        "update_changes",
        "approx_max_size",
        "column_distinct",
        "distinct_tuples",
    )

    def __init__(self) -> None:
        self.inserts = 0
        self.queries: Dict[frozenset, int] = {}
        self.removes: Dict[frozenset, int] = {}
        self.updates: Dict[frozenset, int] = {}
        self.update_changes: Dict[tuple, int] = {}
        self.approx_max_size = 0
        self.column_distinct: Dict[str, int] = {}
        self.distinct_tuples = 0

    def distinct_count(self, columns: Iterable[str]) -> float:
        """Estimated distinct valuations of *columns* among stored tuples.

        The product of the per-column distinct counts, capped at the number
        of distinct tuples — the textbook independence estimate, good
        enough to size one map level against another.
        """
        ceiling = float(max(1, self.distinct_tuples))
        product = 1.0
        for column in columns:
            product *= float(max(1, self.column_distinct.get(column, self.distinct_tuples)))
            if product >= ceiling:
                return ceiling
        return max(1.0, product)

    def pattern_columns(self) -> List[frozenset]:
        """Every distinct pattern column set the trace binds, sorted."""
        seen = set(self.queries) | set(self.removes) | set(self.updates)
        return sorted(seen, key=lambda s: (len(s), sorted(s)))

    def operation_count(self) -> int:
        return (
            self.inserts
            + sum(self.queries.values())
            + sum(self.removes.values())
            + sum(self.updates.values())
        )


class Trace:
    """A named sequence of relational operations over one specification.

    ``enforce_fds`` records the FD mode of the relation the operations ran
    against: a trace recorded with enforcement off may legitimately contain
    FD-conflicting inserts (resolved by eviction), so it must be replayed —
    and scored by the autotuner — in the same mode.
    """

    __slots__ = ("spec", "operations", "name", "enforce_fds")

    def __init__(
        self,
        spec: RelationSpec,
        operations: Iterable[Operation] = (),
        name: str = "trace",
        enforce_fds: bool = True,
    ):
        self.spec = spec
        self.name = name
        self.enforce_fds = enforce_fds
        self.operations: List[Operation] = []
        for op in operations:
            self._check(op)
            self.operations.append(op)

    @staticmethod
    def _check(op: Operation) -> None:
        if not isinstance(op, tuple) or not op or op[0] not in _ARITIES:
            raise AutotunerError(
                f"trace operations must be ('insert'|'remove'|'update'|'query', ...) "
                f"tuples; got {op!r}"
            )
        if len(op) != _ARITIES[op[0]]:
            raise AutotunerError(
                f"{op[0]!r} operations take {_ARITIES[op[0]] - 1} argument(s); got {op!r}"
            )

    @classmethod
    def from_workload(cls, workload) -> "Trace":
        """Adapt a ``benchmarks.workloads.Workload`` (same operation format)."""
        return cls(workload.spec, workload.trace, name=workload.name)

    # -- recording --------------------------------------------------------------

    def record(self, kind: str, *args) -> None:
        op = (kind,) + args
        self._check(op)
        self.operations.append(op)

    # -- inspection -------------------------------------------------------------

    def __len__(self) -> int:
        return len(self.operations)

    def __iter__(self) -> Iterator[Operation]:
        return iter(self.operations)

    def __repr__(self) -> str:
        return f"Trace({self.name!r}, {len(self.operations)} ops)"

    def profile(self) -> TraceProfile:
        """Summarise the trace for the static scoring phase."""
        profile = TraceProfile()
        live = 0
        seen_values: Dict[str, set] = {}
        seen_tuples = set()
        for op in self.operations:
            kind = op[0]
            if kind == "insert":
                profile.inserts += 1
                live += 1
                profile.approx_max_size = max(profile.approx_max_size, live)
                tup = coerce_tuple(op[1])
                seen_tuples.add(tup)
                for column, value in tup.items():
                    seen_values.setdefault(column, set()).add(value)
            elif kind == "remove":
                cols = coerce_tuple(op[1]).columns
                profile.removes[cols] = profile.removes.get(cols, 0) + 1
                if not cols:
                    live = 0  # remove(None) clears the relation.
                elif live:
                    live -= 1
            elif kind == "update":
                cols = coerce_tuple(op[1]).columns
                profile.updates[cols] = profile.updates.get(cols, 0) + 1
                key = (cols, coerce_tuple(op[2]).columns)
                profile.update_changes[key] = profile.update_changes.get(key, 0) + 1
            elif kind == "range":
                # A range scan is charged like an unbound query (the generic
                # fallback IS a filtered full scan) — uniform across
                # candidates, so static ranking is unaffected; the exact
                # replay phase rewards layouts whose ordered index serves
                # the range by bounded descent.
                profile.queries[frozenset()] = profile.queries.get(frozenset(), 0) + 1
            else:  # query
                cols = coerce_tuple(op[1]).columns
                profile.queries[cols] = profile.queries.get(cols, 0) + 1
        profile.column_distinct = {c: len(values) for c, values in seen_values.items()}
        profile.distinct_tuples = len(seen_tuples)
        return profile

    def replay(self, relation: RelationInterface) -> RelationInterface:
        """Apply every operation to *relation* (returned for chaining)."""
        return replay_trace(self, relation)


def replay_operations(relation: RelationInterface, operations: List[Operation]) -> int:
    """Apply raw ``(kind, *args)`` operations to *relation*; return the count.

    The single replay loop shared by :func:`replay_trace` and
    ``benchmarks.harness.replay``, so the access counts the autotuner scores
    against are comparable with the benchmark harness's numbers by
    construction rather than by hand-synchronised copies.
    """
    insert = relation.insert
    remove = relation.remove
    update = relation.update
    query = relation.query
    for op in operations:
        kind = op[0]
        if kind == "insert":
            insert(op[1])
        elif kind == "remove":
            remove(op[1])
        elif kind == "update":
            update(op[1], op[2])
        elif kind == "query":
            query(op[1], op[2])
        elif kind == "range":
            relation.query_range(op[1], op[2], op[3])
        else:  # Unreachable for Trace (validated); raw lists may be malformed.
            raise AutotunerError(
                f"unknown operation {kind!r}; valid kinds: "
                f"insert, remove, update, query, range"
            )
    return len(operations)


def replay_trace(trace: Trace, relation: RelationInterface) -> RelationInterface:
    """Replay *trace* against any relational tier (returned for chaining)."""
    replay_operations(relation, trace.operations)
    return relation


class TraceRecorder(RelationInterface):
    """Record the operations applied to an inner relation.

    Wraps any :class:`RelationInterface` implementation, forwarding every
    operation and appending the ones that *succeed* to :attr:`trace` (an
    operation that raises — e.g. an FD violation under enforcement — never
    executed, so it is not part of the workload).  Profile real client code
    by swapping the relation for ``TraceRecorder(relation)``, then feed
    ``recorder.trace`` to :func:`repro.autotuner.synthesize`.
    """

    def __init__(self, inner: RelationInterface, name: str = "recorded"):
        spec = getattr(inner, "spec", None)
        if spec is None:
            raise AutotunerError(
                f"cannot record {type(inner).__name__}: the wrapped relation must "
                f"expose its RelationSpec as `.spec`"
            )
        self.inner = inner
        self.spec: RelationSpec = spec
        # Propagate the inner relation's FD mode: a trace recorded with
        # enforcement off can contain FD-conflicting inserts and must be
        # replayed (and autotuned) in the same mode.  Exposed as
        # `.enforce_fds` too, keeping the wrapper transparent (including
        # for a recorder wrapping another recorder).
        self.enforce_fds: bool = getattr(inner, "enforce_fds", True)
        self.trace = Trace(spec, name=name, enforce_fds=self.enforce_fds)

    # -- the five operations, forwarded and recorded -----------------------------

    def insert(self, tup: Union[Tuple, Mapping]) -> None:
        tup = coerce_tuple(tup)
        self.inner.insert(tup)
        self.trace.record("insert", tup)

    def remove(self, pattern: Union[Tuple, Mapping, None] = None) -> None:
        pattern = coerce_tuple(pattern)
        self.inner.remove(pattern)
        self.trace.record("remove", pattern)

    def update(self, pattern: Union[Tuple, Mapping], changes: Union[Tuple, Mapping]) -> None:
        pattern = coerce_tuple(pattern)
        changes = coerce_tuple(changes)
        self.inner.update(pattern, changes)
        self.trace.record("update", pattern, changes)

    def query(
        self,
        pattern: Union[Tuple, Mapping, None] = None,
        output: Union[str, Iterable[str], None] = None,
    ) -> List[Tuple]:
        pattern = coerce_tuple(pattern)
        # Normalise one-shot iterables before use: the recorded operation
        # must carry the same output columns the inner query consumed.
        if output is not None and not isinstance(output, str):
            output = tuple(output)
        results = self.inner.query(pattern, output)
        self.trace.record("query", pattern, output)
        return results

    def query_range(self, column: str, lo=None, hi=None) -> List[Tuple]:
        results = self.inner.query_range(column, lo, hi)
        self.trace.record("range", column, lo, hi)
        return results

    # -- inspection, forwarded ---------------------------------------------------

    def to_relation(self) -> Relation:
        return self.inner.to_relation()

    def checkpoint(self) -> Relation:
        return self.to_relation()

    # Inspection dunders forward without recording: ``len(r)`` / ``for t in
    # r`` / ``t in r`` are not part of the five-operation workload, and the
    # inner tier's O(1) ``__len__`` (where it has one) must survive wrapping.

    def __len__(self) -> int:
        return len(self.inner)

    def __iter__(self) -> Iterator[Tuple]:
        return iter(self.inner)

    def __contains__(self, pattern: object) -> bool:
        return pattern in self.inner

    def __repr__(self) -> str:
        return f"TraceRecorder({self.inner!r}, {len(self.trace)} ops)"
