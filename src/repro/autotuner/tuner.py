"""The autotuner driver: enumerate → prune → replay → pick (Section 5).

:func:`autotune` closes the paper's synthesis loop: given a relational
specification and a recorded operation trace, it enumerates the adequate
candidate decompositions (:mod:`~repro.autotuner.enumerator`), prunes them
with the static cost estimate, replays the trace exactly on the survivors
(:mod:`~repro.autotuner.scorer`), and returns the Pareto front plus the
access-count winner.  :func:`synthesize` goes one step further and hands
back a compiled relation class (:func:`repro.codegen.compile_relation`) for
the winning layout — specification + workload in, generated code out.
"""

from __future__ import annotations

from typing import Iterable, List, Optional, Sequence, Union

from ..core.errors import AutotunerError
from ..core.spec import RelationSpec
from ..codegen import compile_relation
from ..decomposition.model import Decomposition
from ..decomposition.parser import parse_decomposition
from .enumerator import canonical_shape, enumerate_decompositions, shape_skeleton
from .scorer import (
    ScoredCandidate,
    estimate_edge_sizes,
    exact_accesses,
    memory_proxy,
    pareto_front,
    static_cost,
)
from .trace import Trace

__all__ = ["TuningResult", "autotune", "synthesize"]

#: How many statically-ranked candidates advance to exact trace replay.
DEFAULT_EXACT_TOP = 16

#: Within the exact-replay beam, at most this many candidates sharing one
#: structure-free skeleton: static cost ties between container flavours of
#: the same shape must not crowd out genuinely different shapes.  Flavours
#: inside a tied block are ordered by the scaled-size tie-break (see
#: :data:`TIEBREAK_SIZE_SCALE`), so the two slots go to the flavours that
#: scale best, not to the lexicographically first.
MAX_PER_SKELETON = 2

#: When two candidates' static costs tie at the trace-estimated container
#: sizes (common for small traces, where every per-key container rounds to
#: a handful of entries and the cost models floor at one access), the tie
#: is broken by re-costing with every estimated size multiplied by this
#: factor — preferring the flavour whose asymptotics survive growth (a
#: hash or intrusive edge over a linear scan), which is also the flavour
#: the exact replay phase tends to crown.
TIEBREAK_SIZE_SCALE = 8.0


class TuningResult:
    """Everything the autotuner learned about one (spec, trace) pair.

    Attributes:
        spec / trace: the tuning inputs.
        candidates: every candidate considered (enumerated plus any
            ``include`` layouts) with its static score, ascending.  The
            replayed subset is chosen from the top of this ranking by a
            shape-diverse beam, so it is not necessarily a prefix.
        replayed: the exactly-replayed candidates, ascending by accesses.
        pareto: the Pareto front over (accesses, memory proxy).
        winner: the replayed candidate with the fewest accesses (ties break
            towards the smaller memory proxy, then the canonical shape).
        enforce_fds: the FD mode the candidates were scored under — also
            the constructor default of classes from :meth:`compile_winner`.
    """

    __slots__ = (
        "spec",
        "trace",
        "candidates",
        "replayed",
        "pareto",
        "winner",
        "enforce_fds",
    )

    def __init__(
        self,
        spec: RelationSpec,
        trace: Trace,
        candidates: List[ScoredCandidate],
        replayed: List[ScoredCandidate],
        pareto: List[ScoredCandidate],
        winner: ScoredCandidate,
        enforce_fds: bool = True,
    ):
        self.spec = spec
        self.trace = trace
        self.candidates = candidates
        self.replayed = replayed
        self.pareto = pareto
        self.winner = winner
        self.enforce_fds = enforce_fds

    @property
    def winner_decomposition(self) -> Decomposition:
        return self.winner.decomposition

    @property
    def winner_layout(self) -> str:
        return self.winner.decomposition.describe()

    def compile_winner(self, class_name: Optional[str] = None) -> type:
        """Compile the winning layout into a relation class.

        The generated constructor defaults to the FD mode the tuning ran
        under, so a class synthesized from an FD-off trace replays its own
        workload without raising.  The compile-time plan table is ranked
        against the trace's estimated per-edge container sizes, so plans
        that only pay off at the workload's data distribution — notably
        cross-branch joins on split-pattern queries — are compiled in.
        """
        return compile_relation(
            self.spec,
            self.winner.decomposition,
            class_name,
            enforce_fds_default=self.enforce_fds,
            sizes=estimate_edge_sizes(self.winner.decomposition, self.trace.profile()),
        )

    def describe(self) -> str:
        """A human-readable summary table (used by ``python -m repro.autotuner``)."""
        lines = [
            f"spec {self.spec.name!r}: {len(self.candidates)} candidates enumerated, "
            f"{len(self.replayed)} replayed exactly on {len(self.trace)} ops",
            f"{'accesses':>12}  {'memory':>6}  layout",
        ]
        for candidate in self.replayed:
            marker = " *" if candidate is self.winner else (
                " p" if candidate in self.pareto else "  "
            )
            lines.append(
                f"{candidate.accesses:>12,d}{marker} {candidate.memory:>6d}  {candidate.layout}"
            )
        lines.append(f"winner: {self.winner_layout}")
        return "\n".join(lines)

    def __repr__(self) -> str:
        return (
            f"TuningResult(winner={self.winner_layout!r}, "
            f"accesses={self.winner.accesses}, "
            f"candidates={len(self.candidates)})"
        )


def _coerce_include(
    spec: RelationSpec, include: Iterable[Union[Decomposition, str]]
) -> List[Decomposition]:
    coerced = []
    for entry in include:
        if isinstance(entry, str):
            entry = parse_decomposition(entry, name="included")
        if not isinstance(entry, Decomposition):
            raise AutotunerError(
                f"include entries must be decompositions or layout strings; got {entry!r}"
            )
        coerced.append(entry)
    return coerced


def autotune(
    spec: RelationSpec,
    trace: Trace,
    structures: Optional[Sequence[str]] = None,
    max_depth: int = 2,
    exact_top: int = DEFAULT_EXACT_TOP,
    max_candidates: Optional[int] = None,
    include: Iterable[Union[Decomposition, str]] = (),
    enforce_fds: Optional[bool] = None,
) -> TuningResult:
    """Pick the best decomposition for *spec* under the workload *trace*.

    Args:
        spec: the relational specification ``(C, ∆)``.
        trace: the recorded workload (:class:`~repro.autotuner.trace.Trace`).
        structures: candidate container names per edge (default: the
            registry's :func:`default_structure_names`).
        max_depth: maximum map levels per path for enumerated candidates.
        exact_top: how many statically-ranked candidates advance to exact
            replay (the winner is chosen among these).
        max_candidates: optional hard cap on enumeration.
        include: extra layouts (strings or :class:`Decomposition`) that skip
            static pruning and are always replayed — e.g. the hand-written
            layout being compared against.  They must be adequate for *spec*.
        enforce_fds: replay mode for exact scoring; defaults to the mode the
            trace was recorded under (``trace.enforce_fds``), so traces
            recorded from an ``enforce_fds=False`` relation — which may
            contain FD-conflicting inserts — replay without raising.

    Raises:
        AutotunerError: when the trace targets a different specification or
            nothing can be enumerated.
    """
    if trace.spec.columns != spec.columns:
        raise AutotunerError(
            f"trace is over columns {sorted(trace.spec.columns)} but the "
            f"specification has {sorted(spec.columns)}"
        )
    if enforce_fds is None:
        enforce_fds = trace.enforce_fds
    profile = trace.profile()
    enumerated = enumerate_decompositions(
        spec,
        patterns=profile.pattern_columns(),
        structures=structures,
        max_depth=max_depth,
        max_candidates=max_candidates,
    )

    def score(decomposition: Decomposition) -> ScoredCandidate:
        return ScoredCandidate(
            decomposition,
            static_cost(decomposition, profile, spec=spec),
            memory_proxy(decomposition),
        )

    def rank(candidate: ScoredCandidate) -> tuple:
        return (
            candidate.static,
            candidate.static_scaled,
            candidate.memory,
            canonical_shape(candidate.decomposition),
        )

    def apply_tiebreaks(pool: List[ScoredCandidate]) -> None:
        """Compute the scaled tie-break score, lazily: only candidates whose
        primary static cost ties with another's can be reordered by it, so
        singletons keep the default (``static_scaled == static``) and skip
        the second full static evaluation."""
        groups: dict = {}
        for candidate in pool:
            groups.setdefault(candidate.static, []).append(candidate)
        for group in groups.values():
            if len(group) < 2:
                continue
            for candidate in group:
                candidate.static_scaled = static_cost(
                    candidate.decomposition,
                    profile,
                    size_scale=TIEBREAK_SIZE_SCALE,
                    spec=spec,
                )

    candidates = [score(d) for d in enumerated]
    apply_tiebreaks(candidates)
    candidates.sort(key=rank)

    # Static pruning: the top of the static ranking advances — diversified
    # so at most MAX_PER_SKELETON same-shape container flavours occupy beam
    # slots — plus every explicitly included layout (deduplicated against
    # the enumerated set).
    exact_top = max(1, exact_top)
    advancing: List[ScoredCandidate] = []
    skeleton_counts: dict = {}
    for candidate in candidates:
        if len(advancing) >= exact_top:
            break
        skeleton = shape_skeleton(candidate.decomposition)
        if skeleton_counts.get(skeleton, 0) >= MAX_PER_SKELETON:
            continue
        skeleton_counts[skeleton] = skeleton_counts.get(skeleton, 0) + 1
        advancing.append(candidate)
    known_shapes = {canonical_shape(c.decomposition) for c in advancing}
    by_shape = {canonical_shape(c.decomposition): c for c in candidates}
    for extra in _coerce_include(spec, include):
        shape = canonical_shape(extra)
        if shape in known_shapes:
            continue
        known_shapes.add(shape)
        candidate = by_shape.get(shape)
        if candidate is None:
            candidate = score(extra)
            candidates.append(candidate)
        advancing.append(candidate)

    # Included layouts were appended above; keep the candidate ranking sorted.
    apply_tiebreaks(candidates)
    candidates.sort(key=rank)

    for candidate in advancing:
        candidate.accesses = exact_accesses(
            trace, candidate.decomposition, enforce_fds, spec=spec
        )

    replayed = sorted(
        advancing, key=lambda c: (c.accesses, c.memory, canonical_shape(c.decomposition))
    )
    winner = replayed[0]
    return TuningResult(
        spec, trace, candidates, replayed, pareto_front(replayed), winner, enforce_fds
    )


def synthesize(
    spec: RelationSpec,
    trace: Trace,
    class_name: Optional[str] = None,
    **options,
) -> type:
    """Synthesize a compiled relation class for *spec* tuned to *trace*.

    The paper's §5 loop end-to-end: enumerate adequate decompositions,
    score them against the recorded workload, compile the winner.  The
    returned class implements :class:`~repro.core.interface.RelationInterface`
    and carries the chosen layout as ``cls.DECOMPOSITION`` and the full
    :class:`TuningResult` as ``cls.TUNING``.  Generated classes are cached
    by shape (see :func:`repro.codegen.compile_relation`): two tunings
    whose winners share a canonical shape and size classes receive the
    *same* class object, whose ``TUNING`` reflects the most recent call.

    Keyword options are forwarded to :func:`autotune`.
    """
    result = autotune(spec, trace, **options)
    cls = result.compile_winner(class_name)
    cls.TUNING = result  # type: ignore[attr-defined]
    return cls
