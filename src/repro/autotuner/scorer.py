"""Two-phase scoring of candidate decompositions against a trace (Section 5).

Phase 1 — **static estimate** (:func:`static_cost`): a closed-form cost per
candidate computed from the trace *profile* (operation counts per pattern
column set) and the containers' cost models, via the same
:func:`~repro.decomposition.plan.plan_query` / ``structure_cost`` machinery
the live planner uses.  Cheap enough to rank hundreds of candidates and
prune the space.

Phase 2 — **exact replay** (:func:`exact_accesses`): the surviving
candidates replay the full trace on the interpreted tier under the
library-wide :class:`~repro.structures.base.OperationCounter`, giving the
deterministic, machine-independent access count the benchmark harness also
reports.  The final ranking — and the Pareto front over (accesses, memory
proxy) — uses these exact numbers.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Sequence

from ..core.spec import RelationSpec
from ..decomposition.model import Decomposition, MapEdge
from ..decomposition.plan import plan_query, residual_update_columns
from ..decomposition.relation import DecomposedRelation
from ..structures.base import COUNTER
from ..structures.registry import structure_cost
from .trace import Trace, TraceProfile, replay_trace

__all__ = [
    "ScoredCandidate",
    "estimate_edge_sizes",
    "static_cost",
    "memory_proxy",
    "exact_accesses",
    "pareto_front",
]


class ScoredCandidate:
    """A candidate decomposition with its scores.

    ``accesses`` is ``None`` until the candidate survives static pruning and
    is replayed exactly.  ``static_scaled`` is the tie-break score: the
    static estimate recomputed at scaled-up container sizes (see
    ``tuner.TIEBREAK_SIZE_SCALE``), which separates flavours whose costs
    coincide at the trace's own small sizes.
    """

    __slots__ = ("decomposition", "static", "static_scaled", "memory", "accesses")

    def __init__(
        self,
        decomposition: Decomposition,
        static: float,
        memory: int,
        static_scaled: Optional[float] = None,
    ):
        self.decomposition = decomposition
        self.static = static
        self.static_scaled = static if static_scaled is None else static_scaled
        self.memory = memory
        self.accesses: Optional[int] = None

    @property
    def layout(self) -> str:
        return self.decomposition.describe()

    def __repr__(self) -> str:
        exact = f", accesses={self.accesses}" if self.accesses is not None else ""
        return (
            f"ScoredCandidate({self.layout!r}, static={self.static:.0f}, "
            f"memory={self.memory}{exact})"
        )


def memory_proxy(decomposition: Decomposition) -> int:
    """Per-tuple storage cost proxy: container entries plus residual fields.

    Every *distinct* edge stores one container entry per represented tuple
    and every *distinct* unit leaf stores its residual columns once — so
    the proxy is ``(# distinct edges) + Σ |unit columns|`` over distinct
    leaves (the second Pareto axis; the paper uses measured heap size,
    which a Python reproduction cannot compare meaningfully across
    container kinds).  Counting nodes once by identity is what lets shared
    layouts win the memory axis: a record shared by two branches pays its
    residual once, while the per-branch-copy twin pays it per branch.
    """
    nodes = decomposition.nodes()
    edges = sum(len(node.edges) for node in nodes)
    residuals = sum(len(node.unit_columns) for node in nodes if node.is_unit)
    return edges + residuals


def estimate_edge_sizes(
    decomposition: Decomposition, profile: TraceProfile
) -> Dict[MapEdge, float]:
    """Estimate each edge's average live container size from workload stats.

    A container for an edge with key ``K`` at the end of bound prefix ``B``
    holds one entry per distinct ``B ∪ K`` valuation of each distinct ``B``
    binding — estimated from the trace's per-column distinct counts
    (:meth:`TraceProfile.distinct_count`).  This is what lets the static
    phase see that scanning a ten-entry outer container is nearly free while
    scanning a thousand-entry one is not, instead of charging every edge the
    same symbolic size — the same per-edge-size shape the live planner
    consumes (:meth:`DecompositionInstance.edge_sizes`).
    """
    sizes: Dict[MapEdge, float] = {}
    for path in decomposition.paths():
        bound: frozenset = frozenset()
        for e in path.edges:
            parent_bindings = profile.distinct_count(bound)
            bound = bound | e.key
            sizes[e] = max(1.0, profile.distinct_count(bound) / parent_bindings)
    return sizes


def static_cost(
    decomposition: Decomposition,
    profile: TraceProfile,
    size_scale: float = 1.0,
    spec: Optional[RelationSpec] = None,
) -> float:
    """Estimated total accesses for a trace profile on *decomposition*.

    Each edge's container size is estimated from the trace's distinct-value
    statistics (:func:`estimate_edge_sizes`) and fed through the planner's
    live-size cost machinery; queries are charged their cheapest plan,
    inserts and removes the per-edge mutation cost for one victim on every
    edge (every branch stores the tuple), removes and updates additionally
    their pattern's plan (updates twice: remove + re-insert — unless the
    update's changed columns are residual-safe for the candidate, in which
    case it is charged the cheaper in-place batch path).  On an edge
    whose child is **shared**, the mutation cost is the structure's
    ``unlink`` cost instead of its lookup cost — the record is held by
    reference, so an intrusive container links/unlinks it in O(1) where a
    plain list would pay a victim scan.  The estimate only has to *rank*
    candidates well enough that the exact replay phase sees the contenders.

    *size_scale* multiplies every estimated container size — the tuner's
    tie-break recomputes the estimate at inflated sizes, separating
    flavours whose costs coincide at the trace's own (often tiny) sizes.

    With *spec* the planner also searches **cross-branch join plans**
    (validated by the Figure 8 FD-closure rule), so 2-branch candidates
    whose split patterns previously forced full scans are costed by their
    cheapest join instead and ranked fairly against single-path layouts.
    """
    sizes = estimate_edge_sizes(decomposition, profile)
    if size_scale != 1.0:
        sizes = {e: n * size_scale for e, n in sizes.items()}
    parent_counts = decomposition.parent_counts()
    edges: List[MapEdge] = [e for node in decomposition.nodes() for e in node.edges]
    touch_all_edges = sum(
        structure_cost(
            e.structure,
            sizes[e],
            "unlink" if parent_counts.get(id(e.child), 0) >= 2 else "lookup",
        )
        for e in edges
    )

    plan_costs: Dict[frozenset, float] = {}

    def plan_cost(pattern: frozenset) -> float:
        cached = plan_costs.get(pattern)
        if cached is None:
            plan = plan_query(decomposition, pattern, sizes=sizes, spec=spec)
            cached = plan.estimated_cost(sizes=sizes)
            plan_costs[pattern] = cached
        return cached

    cost = profile.inserts * touch_all_edges
    for pattern, count in profile.queries.items():
        cost += count * plan_cost(pattern)
    for pattern, count in profile.removes.items():
        cost += count * (plan_cost(pattern) + touch_all_edges)

    # Updates whose changed columns are residual-safe on this candidate run
    # the in-place batch path: one keyed descent per branch that stores a
    # changed residual (shared children resolve through the uncounted
    # registry), instead of the full remove + re-insert.  Candidates that
    # keep hot update columns out of their edge keys are now priced for it.
    resid_safe = (
        residual_update_columns(decomposition, spec) if spec is not None else frozenset()
    )
    coverage = decomposition.edge_coverage

    def resid_touch(changed: frozenset) -> float:
        return sum(
            structure_cost(e.structure, sizes[e], "lookup")
            for e in edges
            if parent_counts.get(id(e.child), 0) < 2 and coverage(e) & changed
        )

    plain = dict(profile.updates)
    for (pattern, changed), count in profile.update_changes.items():
        if changed and changed <= resid_safe:
            cost += count * (plan_cost(pattern) + resid_touch(changed))
            plain[pattern] = plain.get(pattern, 0) - count
    for pattern, count in plain.items():
        if count > 0:
            cost += count * (plan_cost(pattern) + 2.0 * touch_all_edges)
    return cost


def exact_accesses(
    trace: Trace,
    decomposition: Decomposition,
    enforce_fds: bool = True,
    spec: Optional[RelationSpec] = None,
) -> int:
    """Replay *trace* on the interpreted tier; return the exact access count.

    Deterministic and machine-independent: the same
    :class:`~repro.structures.base.OperationCounter` numbers the benchmark
    harness records for the interpreted tier.  *spec* is the specification
    the relation is built against (default: the trace's own); the tuner
    passes the specification being tuned, so candidates are scored under
    exactly the FD semantics the winner will be compiled with.
    """
    relation = DecomposedRelation(spec or trace.spec, decomposition, enforce_fds=enforce_fds)
    with COUNTER:
        replay_trace(trace, relation)
        return COUNTER.accesses


def pareto_front(scored: Sequence[ScoredCandidate]) -> List[ScoredCandidate]:
    """The Pareto-optimal candidates over (exact accesses, memory proxy).

    Only exactly-replayed candidates participate.  Returned sorted by
    ascending accesses; ties and dominated candidates removed.
    """
    replayed = [c for c in scored if c.accesses is not None]
    replayed.sort(key=lambda c: (c.accesses, c.memory, c.layout))
    front: List[ScoredCandidate] = []
    best_memory: Optional[int] = None
    for candidate in replayed:
        if best_memory is None or candidate.memory < best_memory:
            front.append(candidate)
            best_memory = candidate.memory
    return front
