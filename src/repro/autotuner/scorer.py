"""Two-phase scoring of candidate decompositions against a trace (Section 5).

Phase 1 — **static estimate** (:func:`static_cost`): a closed-form cost per
candidate computed from the trace *profile* (operation counts per pattern
column set) and the containers' cost models, via the same
:func:`~repro.decomposition.plan.plan_query` / ``structure_cost`` machinery
the live planner uses.  Cheap enough to rank hundreds of candidates and
prune the space.

Phase 2 — **exact replay** (:func:`exact_accesses`): the surviving
candidates replay the full trace on the interpreted tier under the
library-wide :class:`~repro.structures.base.OperationCounter`, giving the
deterministic, machine-independent access count the benchmark harness also
reports.  The final ranking — and the Pareto front over (accesses, memory
proxy) — uses these exact numbers.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Sequence

from ..core.spec import RelationSpec
from ..decomposition.model import Decomposition, MapEdge
from ..decomposition.plan import plan_query
from ..decomposition.relation import DecomposedRelation
from ..structures.base import COUNTER
from ..structures.registry import structure_cost
from .trace import Trace, TraceProfile, replay_trace

__all__ = [
    "ScoredCandidate",
    "estimate_edge_sizes",
    "static_cost",
    "memory_proxy",
    "exact_accesses",
    "pareto_front",
]


class ScoredCandidate:
    """A candidate decomposition with its scores.

    ``accesses`` is ``None`` until the candidate survives static pruning and
    is replayed exactly.
    """

    __slots__ = ("decomposition", "static", "memory", "accesses")

    def __init__(self, decomposition: Decomposition, static: float, memory: int):
        self.decomposition = decomposition
        self.static = static
        self.memory = memory
        self.accesses: Optional[int] = None

    @property
    def layout(self) -> str:
        return self.decomposition.describe()

    def __repr__(self) -> str:
        exact = f", accesses={self.accesses}" if self.accesses is not None else ""
        return (
            f"ScoredCandidate({self.layout!r}, static={self.static:.0f}, "
            f"memory={self.memory}{exact})"
        )


def memory_proxy(decomposition: Decomposition) -> int:
    """Per-tuple storage cost proxy: map entries stored per represented tuple.

    Each root-to-leaf path stores every tuple once, paying one container
    entry per edge — so the total edge count across paths approximates the
    representation's space overhead (the second Pareto axis; the paper uses
    measured heap size, which a Python reproduction cannot compare
    meaningfully across container kinds).
    """
    return sum(len(path.edges) for path in decomposition.paths())


def estimate_edge_sizes(
    decomposition: Decomposition, profile: TraceProfile
) -> Dict[MapEdge, float]:
    """Estimate each edge's average live container size from workload stats.

    A container for an edge with key ``K`` at the end of bound prefix ``B``
    holds one entry per distinct ``B ∪ K`` valuation of each distinct ``B``
    binding — estimated from the trace's per-column distinct counts
    (:meth:`TraceProfile.distinct_count`).  This is what lets the static
    phase see that scanning a ten-entry outer container is nearly free while
    scanning a thousand-entry one is not, instead of charging every edge the
    same symbolic size — the same per-edge-size shape the live planner
    consumes (:meth:`DecompositionInstance.edge_sizes`).
    """
    sizes: Dict[MapEdge, float] = {}
    for path in decomposition.paths():
        bound: frozenset = frozenset()
        for e in path.edges:
            parent_bindings = profile.distinct_count(bound)
            bound = bound | e.key
            sizes[e] = max(1.0, profile.distinct_count(bound) / parent_bindings)
    return sizes


def static_cost(decomposition: Decomposition, profile: TraceProfile) -> float:
    """Estimated total accesses for a trace profile on *decomposition*.

    Each edge's container size is estimated from the trace's distinct-value
    statistics (:func:`estimate_edge_sizes`) and fed through the planner's
    live-size cost machinery; queries are charged their cheapest plan,
    inserts one lookup per edge (every branch stores the tuple), removes and
    updates their pattern's plan plus the per-edge mutation cost for one
    victim (updates twice: remove + re-insert).  The estimate only has to
    *rank* candidates well enough that the exact replay phase sees the
    contenders.
    """
    sizes = estimate_edge_sizes(decomposition, profile)
    edges: List[MapEdge] = [e for node in decomposition.nodes() for e in node.edges]
    touch_all_edges = sum(structure_cost(e.structure, sizes[e], "lookup") for e in edges)

    plan_costs: Dict[frozenset, float] = {}

    def plan_cost(pattern: frozenset) -> float:
        cached = plan_costs.get(pattern)
        if cached is None:
            plan = plan_query(decomposition, pattern, sizes=sizes)
            cached = plan.estimated_cost(sizes=sizes)
            plan_costs[pattern] = cached
        return cached

    cost = profile.inserts * touch_all_edges
    for pattern, count in profile.queries.items():
        cost += count * plan_cost(pattern)
    for pattern, count in profile.removes.items():
        cost += count * (plan_cost(pattern) + touch_all_edges)
    for pattern, count in profile.updates.items():
        cost += count * (plan_cost(pattern) + 2.0 * touch_all_edges)
    return cost


def exact_accesses(
    trace: Trace,
    decomposition: Decomposition,
    enforce_fds: bool = True,
    spec: Optional[RelationSpec] = None,
) -> int:
    """Replay *trace* on the interpreted tier; return the exact access count.

    Deterministic and machine-independent: the same
    :class:`~repro.structures.base.OperationCounter` numbers the benchmark
    harness records for the interpreted tier.  *spec* is the specification
    the relation is built against (default: the trace's own); the tuner
    passes the specification being tuned, so candidates are scored under
    exactly the FD semantics the winner will be compiled with.
    """
    relation = DecomposedRelation(spec or trace.spec, decomposition, enforce_fds=enforce_fds)
    with COUNTER:
        replay_trace(trace, relation)
        return COUNTER.accesses


def pareto_front(scored: Sequence[ScoredCandidate]) -> List[ScoredCandidate]:
    """The Pareto-optimal candidates over (exact accesses, memory proxy).

    Only exactly-replayed candidates participate.  Returned sorted by
    ascending accesses; ties and dominated candidates removed.
    """
    replayed = [c for c in scored if c.accesses is not None]
    replayed.sort(key=lambda c: (c.accesses, c.memory, c.layout))
    front: List[ScoredCandidate] = []
    best_memory: Optional[int] = None
    for candidate in replayed:
        if best_memory is None or candidate.memory < best_memory:
            front.append(candidate)
            best_memory = candidate.memory
    return front
