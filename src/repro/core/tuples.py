"""Tuples: immutable mappings from column names to values.

A tuple ``t = <c1: v1, c2: v2, ...>`` maps a set of columns to values
(Section 2 of the paper).  This module implements the tuple operations the
formalism relies on:

* ``dom t`` — the columns of a tuple (:meth:`Tuple.columns`),
* ``t ⊇ s`` — *t extends s* (:meth:`Tuple.extends`),
* ``t ∼ s`` — *t matches s*: equal on all common columns (:meth:`Tuple.matches`),
* ``s ◁ t`` — merge, taking values from *t* where the tuples disagree
  (:meth:`Tuple.merge`),
* ``π_C t`` — projection onto a column set (:meth:`Tuple.project`).

Tuples are hashable and therefore usable as keys of associative containers,
which is how map decompositions index their children.
"""

from __future__ import annotations

from typing import Any, Dict, Iterable, Iterator, Mapping, Optional, Tuple as PyTuple

from .errors import TupleError
from .values import Value, ensure_value, value_sort_key

__all__ = ["Tuple", "t"]


class Tuple(Mapping[str, Value]):
    """An immutable named tuple of relation values.

    Construct either from a mapping or from keyword arguments::

        Tuple({"ns": 1, "pid": 2})
        Tuple(ns=1, pid=2)

    Instances are hashable, comparable for equality, and support the
    operators of the paper's formal development.
    """

    __slots__ = ("_items", "_hash")

    def __init__(self, mapping: Optional[Mapping[str, Value]] = None, **kwargs: Value):
        items: Dict[str, Value] = {}
        if mapping is not None:
            for column, value in mapping.items():
                items[self._check_column(column)] = ensure_value(value)
        for column, value in kwargs.items():
            if column in items:
                raise TupleError(f"column {column!r} given both positionally and by keyword")
            items[self._check_column(column)] = ensure_value(value)
        # Store in sorted column order so equality/hash/repr are canonical.
        self._items: PyTuple[PyTuple[str, Value], ...] = tuple(
            (c, items[c]) for c in sorted(items)
        )
        self._hash = hash(self._items)

    @staticmethod
    def _check_column(column: Any) -> str:
        if not isinstance(column, str) or not column:
            raise TupleError(f"column names must be non-empty strings; got {column!r}")
        return column

    # -- Mapping protocol ---------------------------------------------------

    def __getitem__(self, column: str) -> Value:
        for c, v in self._items:
            if c == column:
                return v
        raise KeyError(column)

    def __iter__(self) -> Iterator[str]:
        return (c for c, _ in self._items)

    def __len__(self) -> int:
        return len(self._items)

    def __contains__(self, column: object) -> bool:
        return any(c == column for c, _ in self._items)

    # -- identity -----------------------------------------------------------

    def __hash__(self) -> int:
        return self._hash

    def __eq__(self, other: object) -> bool:
        if isinstance(other, Tuple):
            return self._items == other._items
        if isinstance(other, Mapping):
            return dict(self._items) == dict(other)
        return NotImplemented

    def __repr__(self) -> str:
        body = ", ".join(f"{c}: {v!r}" for c, v in self._items)
        return f"⟨{body}⟩"

    # -- formalism operations ------------------------------------------------

    @property
    def columns(self) -> frozenset:
        """``dom t`` — the set of columns of this tuple."""
        return frozenset(c for c, _ in self._items)

    def is_valuation_of(self, columns: Iterable[str]) -> bool:
        """Return ``True`` if this tuple is a valuation for exactly *columns*."""
        return self.columns == frozenset(columns)

    def extends(self, other: "Tuple") -> bool:
        """``self ⊇ other``: self agrees with *other* on every column of *other*.

        Both item tuples are sorted by column, so a single merge walk
        decides containment without per-column scans.
        """
        mine = self._items
        n = len(mine)
        i = 0
        for c, v in other._items:
            while i < n and mine[i][0] < c:
                i += 1
            if i >= n or mine[i][0] != c or mine[i][1] != v:
                return False
            i += 1
        return True

    def matches(self, other: "Tuple") -> bool:
        """``self ∼ other``: the tuples are equal on all common columns.

        A merge walk over the two sorted item tuples — O(|self| + |other|)
        with no temporary sets, the hot comparison of plan execution.
        """
        a = self._items
        b = other._items
        i = j = 0
        na = len(a)
        nb = len(b)
        while i < na and j < nb:
            ca = a[i][0]
            cb = b[j][0]
            if ca == cb:
                if a[i][1] != b[j][1]:
                    return False
                i += 1
                j += 1
            elif ca < cb:
                i += 1
            else:
                j += 1
        return True

    def merge(self, updates: "Tuple") -> "Tuple":
        """``self ◁ updates``: take values from *updates* wherever both define a column.

        Columns present only in *updates* are added to the result.  Both
        inputs carry validated, column-sorted items, so the result is built
        through the trusted constructor without re-validation.
        """
        if not updates._items:
            return self
        if not self._items:
            return updates
        merged = dict(self._items)
        merged.update(updates._items)
        return Tuple.from_sorted_items((c, merged[c]) for c in sorted(merged))

    def project(self, columns: Iterable[str]) -> "Tuple":
        """``π_C self``: restrict the tuple to *columns*.

        Raises:
            TupleError: if a requested column is absent from the tuple.
        """
        wanted = frozenset(columns)
        items = self._items
        if len(wanted) == len(items) and all(p[0] in wanted for p in items):
            return self  # Full projection of an immutable tuple: share it.
        picked = tuple(p for p in items if p[0] in wanted)
        if len(picked) != len(wanted):
            missing = wanted - frozenset(c for c, _ in items)
            raise TupleError(
                f"cannot project tuple {self!r} onto missing columns {sorted(missing)}"
            )
        return Tuple.from_sorted_items(picked)

    def restrict(self, columns: Iterable[str]) -> "Tuple":
        """Like :meth:`project`, but silently drops columns the tuple lacks."""
        wanted = frozenset(columns)
        return Tuple({c: v for c, v in self._items if c in wanted})

    def drop(self, columns: Iterable[str]) -> "Tuple":
        """Return a copy of the tuple without *columns*."""
        dropped = frozenset(columns)
        return Tuple({c: v for c, v in self._items if c not in dropped})

    def with_value(self, column: str, value: Value) -> "Tuple":
        """Return a copy of the tuple with *column* set to *value*."""
        updated = dict(self._items)
        updated[self._check_column(column)] = ensure_value(value)
        return Tuple(updated)

    def sort_key(self) -> PyTuple:
        """A total-order sort key over tuples with identical columns."""
        return tuple(value_sort_key(v) for _, v in self._items)

    def as_dict(self) -> Dict[str, Value]:
        """Return the tuple's contents as a plain dictionary."""
        return dict(self._items)

    # -- constructors ---------------------------------------------------------

    @staticmethod
    def empty() -> "Tuple":
        """The empty tuple ``⟨⟩`` (the unique valuation of the empty column set)."""
        return _EMPTY_TUPLE

    @classmethod
    def from_sorted_items(cls, items: Iterable[PyTuple[str, Value]]) -> "Tuple":
        """Trusted fast-path constructor used by compiled representations.

        *items* must be ``(column, value)`` pairs already sorted by column
        name, with validated column names and values — no checks are
        performed.  Compiled relation classes (:mod:`repro.codegen`) store
        rows as plain value tuples in sorted column order, so they can
        materialise :class:`Tuple` results without re-sorting or
        re-validating on every query.
        """
        self = cls.__new__(cls)
        self._items = tuple(items)
        self._hash = hash(self._items)
        return self

    @staticmethod
    def from_pairs(pairs: Iterable[PyTuple[str, Value]]) -> "Tuple":
        """Build a tuple from an iterable of ``(column, value)`` pairs."""
        return Tuple(dict(pairs))


def t(**kwargs: Value) -> Tuple:
    """Shorthand constructor: ``t(ns=1, pid=2)`` builds ``⟨ns: 1, pid: 2⟩``."""
    return Tuple(kwargs)


_EMPTY_TUPLE = Tuple({})
