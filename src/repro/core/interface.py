"""The relational interface every representation implements.

Section 2 of the paper defines five operations on relations::

    empty ()        = ref ∅
    insert r t      = r ← !r ∪ {t}
    remove r s      = r ← !r \\ {t ∈ !r | t ⊇ s}
    update r s u    = r ← {if t ⊇ s then t ◁ u else t | t ∈ !r}
    query r s C     = π_C {t ∈ !r | t ⊇ s}

:class:`RelationInterface` captures this contract as an abstract base class.
Three implementations exist in the library:

* :class:`repro.core.reference.ReferenceRelation` — the specification-level
  implementation (a mutable wrapper around :class:`repro.core.Relation`);
* :class:`repro.decomposition.DecomposedRelation` — the interpreted
  runtime over a decomposition instance (Section 3), executing each
  operation through query plans over primitive containers; and
* the classes produced by :func:`repro.codegen.compile_relation` — the
  compiled tier, specialising every operation to one decomposition at
  class-generation time (the paper's code generator).

All are interchangeable from the client's point of view, which is the
paper's central abstraction claim; ``benchmarks/`` quantifies what each
tier buys.
"""

from __future__ import annotations

import abc
from typing import Iterable, Iterator, List, Mapping, Union

from .relation import Relation
from .tuples import Tuple
from .values import Value, value_sort_key

__all__ = ["RelationInterface", "coerce_tuple"]


def coerce_tuple(value: Union[Tuple, Mapping, None]) -> Tuple:
    """Accept ``Tuple``, plain mappings or ``None`` (the empty pattern)."""
    if value is None:
        return Tuple.empty()
    if isinstance(value, Tuple):
        return value
    return Tuple(value)


class RelationInterface(abc.ABC):
    """Abstract mutable relation supporting the paper's five operations.

    **Functional-dependency semantics.**  Every implementation is
    constructed with an ``enforce_fds`` flag and honours one shared
    contract, so the tiers stay interchangeable in both modes:

    * ``enforce_fds=True`` (the default): ``insert`` and ``update`` raise
      :class:`~repro.core.errors.FunctionalDependencyError` rather than
      perform an FD-violating operation, leaving the relation untouched —
      the premise of the paper's Lemma 4, which only promises soundness for
      FD-respecting operation sequences.
    * ``enforce_fds=False``: operations never raise on FD conflicts.
      Because a decomposition can only *hold* FD-satisfying relations
      (Lemma 4 — a unit leaf stores one tuple per key binding), an
      FD-violating ``insert`` instead **evicts** every stored tuple that
      agrees with the new tuple on some FD's left-hand side but disagrees
      on its right-hand side, then adds the new tuple (last-writer-wins).
      A bulk ``update`` removes the matched tuples and re-inserts the
      merged results in canonical (sorted) order under the same eviction
      rule, so colliding merges resolve to the same winner in every tier.
      The represented relation therefore *always* satisfies the
      specification's FDs, in every implementation, in both modes.
    """

    # -- operations ------------------------------------------------------------

    @abc.abstractmethod
    def insert(self, tup: Union[Tuple, Mapping]) -> None:
        """Insert a full tuple into the relation.

        Inserting an already-present tuple is a no-op.  On an FD conflict,
        raises when ``enforce_fds`` is set, evicts the conflicting tuples
        otherwise (see the class docstring).
        """

    @abc.abstractmethod
    def remove(self, pattern: Union[Tuple, Mapping, None] = None) -> None:
        """Remove every tuple that extends *pattern*."""

    @abc.abstractmethod
    def update(self, pattern: Union[Tuple, Mapping], changes: Union[Tuple, Mapping]) -> None:
        """Apply *changes* to every tuple extending *pattern*.

        On an FD conflict, raises when ``enforce_fds`` is set (leaving the
        relation untouched), resolves last-writer-wins in canonical order
        otherwise (see the class docstring).
        """

    @abc.abstractmethod
    def query(
        self,
        pattern: Union[Tuple, Mapping, None] = None,
        output: Union[str, Iterable[str], None] = None,
    ) -> List[Tuple]:
        """Return ``π_output {t ∈ r | t ⊇ pattern}`` as a list of tuples.

        ``output=None`` requests all columns.  The result is duplicate-free
        (it is a set of tuples) but returned as a list for convenient
        iteration; ordering is unspecified.
        """

    def query_range(
        self,
        column: str,
        lo: "Union[Value, None]" = None,
        hi: "Union[Value, None]" = None,
    ) -> List[Tuple]:
        """The tuples whose *column* value lies in ``[lo, hi]``, ordered.

        Both bounds are inclusive; ``None`` leaves that side unbounded, so
        ``query_range(c)`` is an ordered full scan.  Results are full
        tuples in ascending *column* order (ties broken by the tuple sort
        key), using the same cross-type total order as container keys
        (:func:`~repro.core.values.value_sort_key`) — every tier returns
        the identical list, which is what the ordered-scan differential
        tests pin.

        This default filters and sorts a full ``query``; representations
        whose layout keeps an **ordered** index on *column* (e.g. an
        ``avl`` root edge) override it with a bounded range descent.
        """
        spec = getattr(self, "spec", None)
        if spec is not None:
            spec.check_output_columns(column)
        lo_key = value_sort_key(lo) if lo is not None else None
        hi_key = value_sort_key(hi) if hi is not None else None
        results = []
        for tup in self.query(None, None):
            key = value_sort_key(tup[column])
            if lo_key is not None and key < lo_key:
                continue
            if hi_key is not None and key > hi_key:
                continue
            results.append(tup)
        results.sort(key=lambda t: (value_sort_key(t[column]), t.sort_key()))
        return results

    # -- conveniences shared by all implementations ------------------------------

    @abc.abstractmethod
    def to_relation(self) -> Relation:
        """Materialise the current contents as an immutable :class:`Relation`."""

    def scan(self) -> List[Tuple]:
        """Return every tuple of the relation (all columns)."""
        return self.query(None, None)

    def contains(self, pattern: Union[Tuple, Mapping]) -> bool:
        """Does any tuple extend *pattern*?"""
        return bool(self.query(pattern, None))

    def count(self, pattern: Union[Tuple, Mapping, None] = None) -> int:
        """Number of tuples extending *pattern*."""
        return len(self.query(pattern, None))

    def __len__(self) -> int:
        return self.count(None)

    def __iter__(self) -> Iterator[Tuple]:
        return iter(self.scan())

    def __contains__(self, pattern: object) -> bool:
        if isinstance(pattern, (Tuple, Mapping)):
            return self.contains(pattern)  # type: ignore[arg-type]
        return False
