"""Relational core: values, tuples, functional dependencies, relations, specs.

This package contains the mathematical layer of the reproduction — the
objects Section 2 of the paper defines — plus the abstract relational
interface and its reference implementation.
"""

from .columns import ColumnSet, columns, format_columns
from .errors import (
    AdequacyError,
    AutotunerError,
    DecompositionError,
    FunctionalDependencyError,
    OperationError,
    ParseError,
    QueryPlanError,
    ReproError,
    SpecificationError,
    SynthesisError,
    TupleError,
    WellFormednessError,
)
from .fd import FDSet, FunctionalDependency, relation_satisfies
from .interface import RelationInterface, coerce_tuple
from .reference import ReferenceRelation
from .relation import Relation
from .spec import RelationSpec
from .tuples import Tuple, t
from .values import Value, ensure_value, is_valid_value, value_sort_key

__all__ = [
    "AdequacyError",
    "AutotunerError",
    "ColumnSet",
    "DecompositionError",
    "FDSet",
    "FunctionalDependency",
    "FunctionalDependencyError",
    "OperationError",
    "ParseError",
    "QueryPlanError",
    "ReferenceRelation",
    "Relation",
    "RelationInterface",
    "RelationSpec",
    "ReproError",
    "SpecificationError",
    "SynthesisError",
    "Tuple",
    "TupleError",
    "Value",
    "WellFormednessError",
    "coerce_tuple",
    "columns",
    "ensure_value",
    "format_columns",
    "is_valid_value",
    "relation_satisfies",
    "t",
    "value_sort_key",
]
