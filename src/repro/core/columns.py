"""Column-set helpers.

Column sets appear throughout the formalism (relation schemas, functional
dependencies, the ``B . C`` typings of decomposition variables, bound /
output column sets of query plans).  They are represented as ``frozenset``
of column-name strings; this module centralises validation and formatting.
"""

from __future__ import annotations

from typing import FrozenSet, Iterable, Union

from .errors import SpecificationError

__all__ = ["ColumnSet", "columns", "format_columns"]

#: Type alias for a set of column names.
ColumnSet = FrozenSet[str]


def columns(names: Union[str, Iterable[str]]) -> ColumnSet:
    """Normalise *names* into a column set.

    Accepts an iterable of column names or a single comma/space separated
    string, which makes specifications written in text files and doctests
    pleasant to read::

        >>> sorted(columns("ns, pid"))
        ['ns', 'pid']
        >>> sorted(columns(["state"]))
        ['state']
    """
    if isinstance(names, str):
        parts = [p for chunk in names.split(",") for p in chunk.split()]
    else:
        parts = list(names)
    validated = []
    for name in parts:
        if not isinstance(name, str) or not name:
            raise SpecificationError(f"column names must be non-empty strings; got {name!r}")
        validated.append(name)
    return frozenset(validated)


def format_columns(column_set: Iterable[str]) -> str:
    """Render a column set deterministically, e.g. ``{ns, pid}``."""
    return "{" + ", ".join(sorted(column_set)) + "}"
