"""Functional dependencies and their inference.

A relation ``r`` has a functional dependency ``C1 → C2`` if any pair of
tuples in ``r`` that agree on the columns ``C1`` also agree on the columns
``C2``.  Functional dependencies drive the adequacy judgement (Figure 6),
query-plan validity for joins (Figure 8) and the computation of
decomposition cuts (Section 4.5), so this module provides:

* :class:`FunctionalDependency` — a single ``lhs → rhs`` dependency,
* :class:`FDSet` — a set of dependencies with *closure* computation and the
  entailment relation ``∆ ⊢fd C1 → C2`` (sound and complete via Armstrong's
  axioms, implemented as attribute-set closure),
* :func:`relation_satisfies` — the semantic check ``r ⊨fd ∆``.
"""

from __future__ import annotations

from typing import Dict, FrozenSet, Iterable, Iterator, List, Optional, Sequence, Tuple as PyTuple, Union

from .columns import ColumnSet, columns, format_columns
from .errors import SpecificationError
from .tuples import Tuple

__all__ = ["FunctionalDependency", "FDSet", "relation_satisfies"]


class FunctionalDependency:
    """A single functional dependency ``lhs → rhs``.

    Both sides are column sets; the left-hand side may be empty (meaning the
    right-hand side columns are constant across the whole relation).
    """

    __slots__ = ("lhs", "rhs")

    def __init__(self, lhs: Union[str, Iterable[str]], rhs: Union[str, Iterable[str]]):
        self.lhs: ColumnSet = columns(lhs)
        self.rhs: ColumnSet = columns(rhs)
        if not self.rhs:
            raise SpecificationError("functional dependency must have a non-empty right-hand side")

    @property
    def all_columns(self) -> ColumnSet:
        """Every column mentioned by the dependency."""
        return self.lhs | self.rhs

    def is_trivial(self) -> bool:
        """A dependency is trivial when ``rhs ⊆ lhs`` (reflexivity)."""
        return self.rhs <= self.lhs

    def holds_on(self, tuples: Iterable[Tuple]) -> bool:
        """Semantic check: does the dependency hold on the given tuples?"""
        seen: Dict[PyTuple, PyTuple] = {}
        lhs_cols = sorted(self.lhs)
        rhs_cols = sorted(self.rhs)
        for tup in tuples:
            key = tuple(tup[c] for c in lhs_cols)
            image = tuple(tup[c] for c in rhs_cols)
            if key in seen and seen[key] != image:
                return False
            seen.setdefault(key, image)
        return True

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, FunctionalDependency):
            return NotImplemented
        return self.lhs == other.lhs and self.rhs == other.rhs

    def __hash__(self) -> int:
        return hash((self.lhs, self.rhs))

    def __repr__(self) -> str:
        return f"{format_columns(self.lhs)} → {format_columns(self.rhs)}"

    @staticmethod
    def parse(text: str) -> "FunctionalDependency":
        """Parse ``"a, b -> c, d"`` into a dependency."""
        if "->" not in text:
            raise SpecificationError(f"functional dependency {text!r} must contain '->'")
        lhs_text, rhs_text = text.split("->", 1)
        return FunctionalDependency(columns(lhs_text), columns(rhs_text))


class FDSet:
    """An immutable set of functional dependencies ``∆`` with inference.

    Entailment ``∆ ⊢fd C1 → C2`` is decided with the standard attribute-set
    closure algorithm, which is sound and complete for Armstrong's axioms.
    """

    __slots__ = ("_fds",)

    def __init__(self, fds: Iterable[Union[FunctionalDependency, str]] = ()):
        normalised: List[FunctionalDependency] = []
        for fd in fds:
            if isinstance(fd, str):
                fd = FunctionalDependency.parse(fd)
            elif not isinstance(fd, FunctionalDependency):
                raise SpecificationError(
                    f"expected FunctionalDependency or string, got {type(fd).__name__}"
                )
            normalised.append(fd)
        self._fds: PyTuple[FunctionalDependency, ...] = tuple(dict.fromkeys(normalised))

    # -- container protocol ---------------------------------------------------

    def __iter__(self) -> Iterator[FunctionalDependency]:
        return iter(self._fds)

    def __len__(self) -> int:
        return len(self._fds)

    def __contains__(self, fd: object) -> bool:
        return fd in self._fds

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, FDSet):
            return NotImplemented
        return set(self._fds) == set(other._fds)

    def __hash__(self) -> int:
        return hash(frozenset(self._fds))

    def __repr__(self) -> str:
        return "FDSet([" + ", ".join(repr(fd) for fd in self._fds) + "])"

    # -- inference -------------------------------------------------------------

    @property
    def all_columns(self) -> ColumnSet:
        """Every column mentioned by any dependency."""
        result: FrozenSet[str] = frozenset()
        for fd in self._fds:
            result |= fd.all_columns
        return result

    def closure(self, start: Union[str, Iterable[str]]) -> ColumnSet:
        """Compute the attribute closure ``start+`` under this FD set."""
        closed = set(columns(start))
        changed = True
        while changed:
            changed = False
            for fd in self._fds:
                if fd.lhs <= closed and not fd.rhs <= closed:
                    closed |= fd.rhs
                    changed = True
        return frozenset(closed)

    def entails(self, lhs: Union[str, Iterable[str]], rhs: Union[str, Iterable[str]]) -> bool:
        """Decide ``∆ ⊢fd lhs → rhs``."""
        return columns(rhs) <= self.closure(lhs)

    def entails_fd(self, fd: FunctionalDependency) -> bool:
        """Decide ``∆ ⊢fd fd``."""
        return self.entails(fd.lhs, fd.rhs)

    def is_key(self, candidate: Union[str, Iterable[str]], relation_columns: Union[str, Iterable[str]]) -> bool:
        """Is *candidate* a key for a relation over *relation_columns*?"""
        return columns(relation_columns) <= self.closure(candidate)

    def minimal_keys(self, relation_columns: Union[str, Iterable[str]]) -> List[ColumnSet]:
        """Enumerate the minimal keys of a relation over *relation_columns*.

        Exponential in the number of columns in the worst case, which is fine
        for the handful of columns typical of the paper's relations.
        """
        from itertools import combinations

        cols = sorted(columns(relation_columns))
        keys: List[ColumnSet] = []
        for size in range(0, len(cols) + 1):
            for combo in combinations(cols, size):
                candidate = frozenset(combo)
                if any(existing <= candidate for existing in keys):
                    continue
                if self.is_key(candidate, cols):
                    keys.append(candidate)
        return keys

    def restrict(self, to_columns: Union[str, Iterable[str]]) -> "FDSet":
        """Project the FD set onto a subset of columns.

        Returns a set of dependencies over *to_columns* that are entailed by
        this set.  Implemented by closing every subset of *to_columns*;
        exponential but only used for small schemas.
        """
        from itertools import combinations

        cols = sorted(columns(to_columns))
        projected: List[FunctionalDependency] = []
        for size in range(0, len(cols) + 1):
            for combo in combinations(cols, size):
                lhs = frozenset(combo)
                rhs = (self.closure(lhs) & frozenset(cols)) - lhs
                if rhs:
                    projected.append(FunctionalDependency(lhs, rhs))
        return FDSet(projected)

    def add(self, *fds: Union[FunctionalDependency, str]) -> "FDSet":
        """Return a new FD set extended with *fds*."""
        return FDSet(list(self._fds) + list(fds))

    def equivalent_to(self, other: "FDSet") -> bool:
        """Are the two FD sets logically equivalent?"""
        return all(self.entails_fd(fd) for fd in other) and all(other.entails_fd(fd) for fd in self)

    def satisfied_by(self, tuples: Iterable[Tuple]) -> bool:
        """Semantic check ``r ⊨fd ∆`` over an iterable of tuples."""
        materialised = list(tuples)
        return all(fd.holds_on(materialised) for fd in self._fds)

    def violations(self, tuples: Iterable[Tuple]) -> List[FunctionalDependency]:
        """Return the dependencies violated by the given tuples (for diagnostics)."""
        materialised = list(tuples)
        return [fd for fd in self._fds if not fd.holds_on(materialised)]

    @staticmethod
    def parse(texts: Union[str, Sequence[str]]) -> "FDSet":
        """Parse one or more ``"a, b -> c"`` strings (``;``-separated if a single string)."""
        if isinstance(texts, str):
            texts = [part for part in texts.split(";") if part.strip()]
        return FDSet([FunctionalDependency.parse(text) for text in texts])


def relation_satisfies(tuples: Iterable[Tuple], fds: Optional[FDSet]) -> bool:
    """Semantic satisfaction check ``r ⊨fd ∆`` (``None`` means no constraints)."""
    if fds is None:
        return True
    return fds.satisfied_by(tuples)
