"""The reference (specification-level) implementation of the relational interface.

:class:`ReferenceRelation` stores the relation literally as a set of tuples
and implements each operation by its defining equation from Section 2.  It
is the oracle against which every synthesized representation is tested
(Theorem 5: a sequence of operations on a decomposition instance produces
exactly the relation the reference implementation holds).
"""

from __future__ import annotations

from typing import Iterable, Iterator, List, Mapping, Optional, Set, Union

from .errors import FunctionalDependencyError, OperationError
from .interface import RelationInterface, coerce_tuple
from .relation import Relation
from .spec import RelationSpec
from .tuples import Tuple

__all__ = ["ReferenceRelation"]


def _register_reference_sites():
    # Deferred import: repro.faults imports repro.core.errors, which lives
    # beside this module; importing lazily keeps the core package cycle-free.
    from ..faults import FAULTS, register_site

    for site in ("reference.insert", "reference.remove", "reference.update"):
        register_site(site)
    return FAULTS


FAULTS = _register_reference_sites()


class ReferenceRelation(RelationInterface):
    """Mutable relation implemented directly on a Python set of tuples.

    Parameters:
        spec: the relational specification the instance must respect.
        enforce_fds: when ``True`` (the default) ``insert`` and ``update``
            raise :class:`FunctionalDependencyError` if the operation would
            violate the specification's functional dependencies — mirroring
            the premises of Lemma 4 in the paper, which only promises
            soundness for FD-respecting operation sequences.  When ``False``
            the oracle mirrors the structural behaviour of the synthesized
            representations instead: an FD-violating insert *evicts* the
            conflicting tuples before adding the new one (last-writer-wins),
            because a decomposition can only hold FD-satisfying relations
            (Lemma 4) — see :class:`~repro.core.interface.RelationInterface`
            for the full contract.
    """

    def __init__(self, spec: RelationSpec, enforce_fds: bool = True):
        self.spec = spec
        self.enforce_fds = enforce_fds
        self._tuples: Set[Tuple] = set()

    # -- operations ------------------------------------------------------------

    def insert(self, tup: Union[Tuple, Mapping]) -> None:
        tup = coerce_tuple(tup)
        self.spec.check_full_tuple(tup)
        if tup in self._tuples:
            return
        if self.enforce_fds:
            violated = self.spec.would_violate_fds(self.to_relation(), tup)
            if violated is not None:
                raise FunctionalDependencyError(
                    f"inserting {tup!r} would violate {violated!r}"
                )
            if FAULTS.active:
                FAULTS.check("reference.insert")
            self._tuples.add(tup)
            return
        # Atomic commit: compute the evicted state aside, fault-check, then
        # swap — the oracle is exception safe by construction (nothing after
        # the check can raise), the discipline the other tiers' undo logs
        # are tested against.
        new_tuples = self._tuples - self._fd_conflicts(self._tuples, tup)
        new_tuples.add(tup)
        if FAULTS.active:
            FAULTS.check("reference.insert")
        self._tuples = new_tuples

    def _fd_conflicts(self, tuples: Set[Tuple], tup: Tuple) -> Set[Tuple]:
        """Every tuple of *tuples* that FD-conflicts with *tup*.

        The last-writer-wins semantics of ``enforce_fds=False``: a
        representation can only hold FD-satisfying relations (Lemma 4), so
        before *tup* is added, any tuple agreeing with it on some FD's
        left-hand side but disagreeing on its right-hand side is evicted —
        exactly what a decomposition instance does structurally when a unit
        binding is overwritten.
        """
        conflicts: Set[Tuple] = set()
        for fd in self.spec.fds:
            lhs_value = tup.project(fd.lhs)
            rhs_value = tup.project(fd.rhs)
            for existing in tuples:
                if (
                    existing.project(fd.lhs) == lhs_value
                    and existing.project(fd.rhs) != rhs_value
                ):
                    conflicts.add(existing)
        return conflicts

    def remove(self, pattern: Union[Tuple, Mapping, None] = None) -> None:
        pattern = coerce_tuple(pattern)
        self.spec.check_partial_tuple(pattern, role="removal pattern")
        survivors = {t for t in self._tuples if not t.extends(pattern)}
        if FAULTS.active:
            FAULTS.check("reference.remove")
        self._tuples = survivors

    def update(self, pattern: Union[Tuple, Mapping], changes: Union[Tuple, Mapping]) -> None:
        pattern = coerce_tuple(pattern)
        changes = coerce_tuple(changes)
        self.spec.check_partial_tuple(pattern, role="update pattern")
        self.spec.check_partial_tuple(changes, role="update changes")
        if not changes.columns:
            return
        if self.enforce_fds:
            updated = {t.merge(changes) if t.extends(pattern) else t for t in self._tuples}
            if not self.spec.fds.satisfied_by(updated):
                raise FunctionalDependencyError(
                    f"update with pattern {pattern!r} and changes {changes!r} would violate "
                    f"the specification's functional dependencies"
                )
            if FAULTS.active:
                FAULTS.check("reference.update")
            self._tuples = updated
        else:
            # Structural semantics: remove the victims, then re-insert the
            # merged tuples in canonical order, each insertion evicting its
            # FD conflicts — so every tier resolves colliding merges to the
            # same winner regardless of its container iteration order.
            # Built aside and swapped in after the fault check (atomic
            # commit, as in insert/remove).
            victims = [t for t in self._tuples if t.extends(pattern)]
            if not victims:
                return
            merged = sorted({t.merge(changes) for t in victims}, key=Tuple.sort_key)
            new_tuples = self._tuples - set(victims)
            for tup in merged:
                new_tuples -= self._fd_conflicts(new_tuples, tup)
                new_tuples.add(tup)
            if FAULTS.active:
                FAULTS.check("reference.update")
            self._tuples = new_tuples

    def query(
        self,
        pattern: Union[Tuple, Mapping, None] = None,
        output: Union[str, Iterable[str], None] = None,
    ) -> List[Tuple]:
        pattern = coerce_tuple(pattern)
        self.spec.check_partial_tuple(pattern, role="query pattern")
        if output is None:
            wanted = self.spec.columns
        else:
            wanted = self.spec.check_output_columns(output)
        results = {t.project(wanted) for t in self._tuples if t.extends(pattern)}
        return list(results)

    # -- inspection -------------------------------------------------------------

    def to_relation(self) -> Relation:
        return Relation(self.spec.columns, self._tuples)

    def checkpoint(self) -> Relation:
        """Alias of :meth:`to_relation`, used by differential tests."""
        return self.to_relation()

    def __len__(self) -> int:
        """O(1): the stored set's size (the base class re-queries)."""
        return len(self._tuples)

    def __iter__(self) -> Iterator[Tuple]:
        return iter(self._tuples)

    def load(self, relation: Relation) -> None:
        """Replace the contents with *relation* (which must satisfy the spec)."""
        self.spec.check_relation(relation)
        self._tuples = set(relation.tuples)

    def unique_match(self, pattern: Union[Tuple, Mapping]) -> Optional[Tuple]:
        """Return the single tuple extending *pattern*.

        Raises:
            OperationError: if more than one tuple matches.
        """
        matches = self.query(pattern, None)
        if not matches:
            return None
        if len(matches) > 1:
            raise OperationError(f"pattern {pattern!r} matches {len(matches)} tuples, expected one")
        return matches[0]
