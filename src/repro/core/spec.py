"""Relational specifications: column sets plus functional dependencies.

A relational specification (Section 2) is the client-facing contract of a
synthesized data representation: a set of columns ``C`` and a set of
functional dependencies ``∆``.  The process-scheduler example of the paper
is::

    spec = RelationSpec(
        name="process",
        column_names="ns, pid, state, cpu",
        fds=["ns, pid -> state, cpu"],
    )

The specification knows nothing about representation; decompositions
(:mod:`repro.decomposition`) describe how relations over a specification are
laid out in memory.
"""

from __future__ import annotations

from typing import Iterable, List, Optional, Union

from .columns import ColumnSet, columns, format_columns
from .errors import FunctionalDependencyError, SpecificationError, TupleError
from .fd import FDSet, FunctionalDependency
from .relation import Relation
from .tuples import Tuple

__all__ = ["RelationSpec"]


class RelationSpec:
    """A relational specification ``(C, ∆)`` with an optional name."""

    __slots__ = ("name", "_columns", "_fds")

    def __init__(
        self,
        column_names: Union[str, Iterable[str]],
        fds: Union[FDSet, Iterable[Union[FunctionalDependency, str]], None] = None,
        name: str = "relation",
    ):
        self.name = name
        self._columns: ColumnSet = columns(column_names)
        if not self._columns:
            raise SpecificationError("a relational specification needs at least one column")
        if fds is None:
            fds = FDSet()
        if not isinstance(fds, FDSet):
            fds = FDSet(fds)
        self._fds = fds
        stray = self._fds.all_columns - self._columns
        if stray:
            raise SpecificationError(
                f"functional dependencies mention columns {sorted(stray)} "
                f"outside the specification columns {format_columns(self._columns)}"
            )

    # -- accessors --------------------------------------------------------------

    @property
    def columns(self) -> ColumnSet:
        """The specification's column set ``C``."""
        return self._columns

    @property
    def fds(self) -> FDSet:
        """The specification's functional dependencies ``∆``."""
        return self._fds

    def sorted_columns(self) -> List[str]:
        return sorted(self._columns)

    def __repr__(self) -> str:
        fd_text = "; ".join(repr(fd) for fd in self._fds)
        return (
            f"RelationSpec(name={self.name!r}, columns={format_columns(self._columns)}, "
            f"fds=[{fd_text}])"
        )

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, RelationSpec):
            return NotImplemented
        return (
            self.name == other.name
            and self._columns == other._columns
            and self._fds == other._fds
        )

    def __hash__(self) -> int:
        return hash((self.name, self._columns, self._fds))

    # -- validation helpers -------------------------------------------------------

    def empty_relation(self) -> Relation:
        """The empty relation over this specification's columns."""
        return Relation.empty(self._columns)

    def is_key(self, candidate: Union[str, Iterable[str]]) -> bool:
        """Is *candidate* a key of the relation (``∆ ⊢fd candidate → C``)?"""
        return self._fds.is_key(candidate, self._columns)

    def minimal_keys(self) -> List[ColumnSet]:
        """Enumerate the minimal keys of the specification."""
        return self._fds.minimal_keys(self._columns)

    def check_full_tuple(self, tup: Tuple) -> None:
        """Ensure *tup* is a valuation of all specification columns."""
        if tup.columns != self._columns:
            missing = self._columns - tup.columns
            extra = tup.columns - self._columns
            detail = []
            if missing:
                detail.append(f"missing columns {sorted(missing)}")
            if extra:
                detail.append(f"unknown columns {sorted(extra)}")
            raise TupleError(
                f"tuple {tup!r} is not a valuation of {format_columns(self._columns)}: "
                + "; ".join(detail)
            )

    def check_partial_tuple(self, tup: Tuple, role: str = "pattern") -> None:
        """Ensure *tup* only mentions specification columns."""
        extra = tup.columns - self._columns
        if extra:
            raise TupleError(
                f"{role} {tup!r} mentions columns {sorted(extra)} outside "
                f"{format_columns(self._columns)}"
            )

    def check_output_columns(self, output: Union[str, Iterable[str]]) -> ColumnSet:
        """Validate and normalise the output column set of a query."""
        wanted = columns(output)
        extra = wanted - self._columns
        if extra:
            raise SpecificationError(
                f"query output mentions columns {sorted(extra)} outside "
                f"{format_columns(self._columns)}"
            )
        return wanted

    def check_relation(self, relation: Relation) -> None:
        """Ensure a relation has the right columns and satisfies the FDs."""
        if relation.columns != self._columns:
            raise SpecificationError(
                f"relation columns {format_columns(relation.columns)} do not match "
                f"specification columns {format_columns(self._columns)}"
            )
        violated = self._fds.violations(relation.tuples)
        if violated:
            raise FunctionalDependencyError(
                f"relation violates functional dependencies: {violated}"
            )

    def would_violate_fds(self, relation: Relation, new_tuple: Tuple) -> Optional[FunctionalDependency]:
        """Return the FD violated by adding *new_tuple* to *relation*, if any."""
        candidate = list(relation.tuples) + [new_tuple]
        for fd in self._fds:
            if not fd.holds_on(candidate):
                return fd
        return None
