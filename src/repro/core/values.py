"""The value universe used by relations.

The paper assumes an untyped universe of values ``V`` that includes the
integers.  In this reproduction a value may be any hashable Python object;
helpers in this module implement the comparisons and orderings the rest of
the library relies on.

Two requirements drive the design:

* values must be *hashable*, because map decompositions use them as keys in
  hash tables and other associative containers; and
* values must be *totally orderable within a column*, because tree-based
  containers need an ordering.  Values of mixed Python types in the same
  column are ordered by ``(type name, value)`` so that ordered containers
  never raise ``TypeError``.
"""

from __future__ import annotations

from typing import Any, Hashable, Iterable, Tuple

__all__ = [
    "Value",
    "is_valid_value",
    "ensure_value",
    "value_sort_key",
    "values_sort_key",
]

#: Type alias for values stored in relations.
Value = Hashable


def is_valid_value(value: Any) -> bool:
    """Return ``True`` if *value* may be stored in a relation.

    A value is valid when it is hashable.  ``None`` is permitted and simply
    behaves as an ordinary value (it is not interpreted as "missing").
    """
    try:
        hash(value)
    except TypeError:
        return False
    return True


def ensure_value(value: Any) -> Value:
    """Validate *value* and return it.

    Raises:
        TypeError: if the value is not hashable and therefore cannot be used
            as a relation value.
    """
    if not is_valid_value(value):
        raise TypeError(
            f"relation values must be hashable; got {value!r} of type {type(value).__name__}"
        )
    return value


def value_sort_key(value: Value) -> Tuple[str, Any]:
    """Return a sort key that totally orders arbitrary relation values.

    Values of the same type compare by their natural ordering; values of
    different types compare by type name.  Booleans are folded into the
    integer ordering (mirroring Python semantics), and unorderable values
    fall back to their ``repr``.
    """
    if isinstance(value, bool):
        return ("int", int(value))
    if isinstance(value, int):
        return ("int", value)
    if isinstance(value, float):
        return ("float", value)
    if isinstance(value, str):
        return ("str", value)
    type_name = type(value).__name__
    try:
        # Probe that the value is orderable against itself; if not, fall back
        # to repr so that ordered containers still work.
        value < value  # type: ignore[operator]  # noqa: B015
    except TypeError:
        return (type_name, repr(value))
    return (type_name, value)


def values_sort_key(values: Iterable[Value]) -> Tuple[Tuple[str, Any], ...]:
    """Return a sort key for a sequence of values (e.g. a projected tuple)."""
    return tuple(value_sort_key(v) for v in values)
