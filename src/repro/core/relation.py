"""Relations and relational algebra.

A relation is a set of tuples over identical columns (Section 2).  The
:class:`Relation` class is the *mathematical* object used by the formal
development: the reference implementation of the relational interface, the
abstraction function α over decomposition instances, and all soundness tests
compare against it.  It is deliberately simple and obviously correct; the
performance-oriented representations live in :mod:`repro.decomposition`,
backed by the containers of :mod:`repro.structures`.

Supported algebra: union, intersection, difference, symmetric difference,
projection ``π_C``, selection by a partial tuple, natural join ``⋈``, and
renaming.
"""

from __future__ import annotations

from typing import FrozenSet, Iterable, Iterator, List, Optional, Union

from .columns import ColumnSet, columns, format_columns
from .errors import SpecificationError, TupleError
from .fd import FDSet
from .tuples import Tuple

__all__ = ["Relation"]


class Relation:
    """An immutable set of tuples over a fixed set of columns."""

    __slots__ = ("_columns", "_tuples")

    def __init__(self, column_names: Union[str, Iterable[str]], tuples: Iterable[Tuple] = ()):
        self._columns: ColumnSet = columns(column_names)
        materialised = frozenset(tuples)
        for tup in materialised:
            if tup.columns != self._columns:
                raise TupleError(
                    f"tuple {tup!r} does not have columns {format_columns(self._columns)}"
                )
        self._tuples: FrozenSet[Tuple] = materialised

    # -- basic protocol --------------------------------------------------------

    @property
    def columns(self) -> ColumnSet:
        return self._columns

    @property
    def tuples(self) -> FrozenSet[Tuple]:
        return self._tuples

    def __iter__(self) -> Iterator[Tuple]:
        return iter(self._tuples)

    def __len__(self) -> int:
        return len(self._tuples)

    def __contains__(self, tup: object) -> bool:
        return tup in self._tuples

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, Relation):
            return NotImplemented
        return self._columns == other._columns and self._tuples == other._tuples

    def __hash__(self) -> int:
        return hash((self._columns, self._tuples))

    def __repr__(self) -> str:
        rows = ", ".join(repr(t) for t in self.sorted_tuples())
        return f"Relation({format_columns(self._columns)}, [{rows}])"

    def is_empty(self) -> bool:
        return not self._tuples

    def sorted_tuples(self) -> List[Tuple]:
        """Tuples in a deterministic order (useful for tests and display)."""
        return sorted(self._tuples, key=lambda t: t.sort_key())

    # -- constructors ----------------------------------------------------------

    @staticmethod
    def empty(column_names: Union[str, Iterable[str]]) -> "Relation":
        return Relation(column_names, ())

    @staticmethod
    def from_dicts(column_names: Union[str, Iterable[str]], rows: Iterable[dict]) -> "Relation":
        """Build a relation from plain dictionaries."""
        return Relation(column_names, (Tuple(row) for row in rows))

    def replace(self, tuples: Iterable[Tuple]) -> "Relation":
        """Return a relation with the same columns but different tuples."""
        return Relation(self._columns, tuples)

    # -- set operations --------------------------------------------------------

    def _require_same_columns(self, other: "Relation", op: str) -> None:
        if self._columns != other._columns:
            raise SpecificationError(
                f"{op} requires identical columns: "
                f"{format_columns(self._columns)} vs {format_columns(other._columns)}"
            )

    def union(self, other: "Relation") -> "Relation":
        self._require_same_columns(other, "union")
        return Relation(self._columns, self._tuples | other._tuples)

    def intersection(self, other: "Relation") -> "Relation":
        self._require_same_columns(other, "intersection")
        return Relation(self._columns, self._tuples & other._tuples)

    def difference(self, other: "Relation") -> "Relation":
        self._require_same_columns(other, "difference")
        return Relation(self._columns, self._tuples - other._tuples)

    def symmetric_difference(self, other: "Relation") -> "Relation":
        self._require_same_columns(other, "symmetric difference")
        return Relation(self._columns, self._tuples ^ other._tuples)

    __or__ = union
    __and__ = intersection
    __sub__ = difference
    __xor__ = symmetric_difference

    # -- relational algebra ------------------------------------------------------

    def project(self, onto: Union[str, Iterable[str]]) -> "Relation":
        """``π_C r`` — project onto a subset of the relation's columns."""
        wanted = columns(onto)
        if not wanted <= self._columns:
            raise SpecificationError(
                f"cannot project onto {format_columns(wanted)}; relation has "
                f"{format_columns(self._columns)}"
            )
        return Relation(wanted, (t.project(wanted) for t in self._tuples))

    def select(self, pattern: Tuple) -> "Relation":
        """``{t ∈ r | t ⊇ pattern}`` — select tuples extending a partial tuple."""
        if not pattern.columns <= self._columns:
            raise SpecificationError(
                f"selection pattern {pattern!r} mentions columns outside "
                f"{format_columns(self._columns)}"
            )
        return Relation(self._columns, (t for t in self._tuples if t.extends(pattern)))

    def query(self, pattern: Tuple, output: Union[str, Iterable[str]]) -> "Relation":
        """The paper's ``query r s C`` = ``π_C {t ∈ r | t ⊇ s}``."""
        return self.select(pattern).project(output)

    def join(self, other: "Relation") -> "Relation":
        """Natural join ``r1 ⋈ r2`` on the common columns."""
        out_columns = self._columns | other._columns
        common = self._columns & other._columns
        if not common:
            # Cartesian product.
            joined = [
                left.merge(right) for left in self._tuples for right in other._tuples
            ]
            return Relation(out_columns, joined)
        # Hash join on the common columns.
        index: dict = {}
        for right in other._tuples:
            index.setdefault(right.project(common), []).append(right)
        joined = []
        for left in self._tuples:
            for right in index.get(left.project(common), ()):
                joined.append(left.merge(right))
        return Relation(out_columns, joined)

    __matmul__ = join

    def rename(self, mapping: dict) -> "Relation":
        """Rename columns according to ``{old: new}``."""
        missing = set(mapping) - set(self._columns)
        if missing:
            raise SpecificationError(f"cannot rename missing columns {sorted(missing)}")
        new_columns = [mapping.get(c, c) for c in self._columns]
        if len(set(new_columns)) != len(new_columns):
            raise SpecificationError("renaming would produce duplicate column names")
        renamed = []
        for tup in self._tuples:
            renamed.append(Tuple({mapping.get(c, c): v for c, v in tup.items()}))
        return Relation(new_columns, renamed)

    # -- mutation-flavoured helpers (pure; used by the reference implementation) --

    def insert(self, tup: Tuple) -> "Relation":
        """``r ∪ {t}`` for a full tuple *t*."""
        if tup.columns != self._columns:
            raise TupleError(
                f"inserted tuple {tup!r} must have columns {format_columns(self._columns)}"
            )
        return Relation(self._columns, self._tuples | {tup})

    def remove(self, pattern: Tuple) -> "Relation":
        """``r \\ {t ∈ r | t ⊇ s}`` for a partial tuple *s*."""
        return Relation(self._columns, (t for t in self._tuples if not t.extends(pattern)))

    def update(self, pattern: Tuple, changes: Tuple) -> "Relation":
        """``{if t ⊇ s then t ◁ u else t | t ∈ r}``."""
        extra = changes.columns - self._columns
        if extra:
            raise TupleError(f"update mentions columns {sorted(extra)} outside the relation")
        return Relation(
            self._columns,
            (t.merge(changes) if t.extends(pattern) else t for t in self._tuples),
        )

    # -- constraints -------------------------------------------------------------

    def satisfies(self, fds: Optional[FDSet]) -> bool:
        """Semantic check ``r ⊨fd ∆``."""
        if fds is None:
            return True
        return fds.satisfied_by(self._tuples)
