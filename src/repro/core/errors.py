"""Exception hierarchy for the repro library.

All errors raised by the library derive from :class:`ReproError`, so client
code can catch a single exception type at the relational API boundary.
"""

from __future__ import annotations


class ReproError(Exception):
    """Base class for every error raised by the repro library."""


class SpecificationError(ReproError):
    """A relational specification is malformed.

    Raised for empty column sets, functional dependencies that mention
    columns outside the specification, duplicate column names, and similar
    structural problems.
    """


class TupleError(ReproError):
    """A tuple is used with the wrong columns for an operation."""


class FunctionalDependencyError(ReproError):
    """An operation would violate the specification's functional dependencies."""


class DecompositionError(ReproError):
    """A decomposition is structurally malformed.

    Examples: unbound variables, duplicate let bindings, cycles in the
    decomposition graph, unit primitives with inconsistent columns.
    """


class AdequacyError(DecompositionError):
    """A decomposition fails the adequacy judgement of Figure 6.

    The decomposition cannot faithfully represent every relation over the
    specification's columns satisfying its functional dependencies.
    """


class WellFormednessError(DecompositionError):
    """A decomposition instance violates the well-formedness rules of Figure 5."""


class QueryPlanError(ReproError):
    """A query plan is invalid for a decomposition (Figure 8), or no valid
    plan exists for a requested query."""


class OperationError(ReproError):
    """A relational operation was invoked with unsupported arguments.

    For example, an ``update`` whose pattern is not a key of the relation, or
    an ``insert`` of a tuple with missing columns.
    """


class SynthesisError(ReproError):
    """The RELC synthesizer could not produce an implementation.

    Raised when code generation fails, when a required operation
    instantiation cannot be planned, or when a backend is misconfigured.
    """


class AutotunerError(ReproError):
    """The autotuner was misconfigured or could not enumerate candidates."""


class LiveRelationError(ReproError):
    """A live relation could not re-tune or migrate between layouts.

    Raised when an α-migration fails its equivalence check (the old and new
    backings disagree on the represented relation), or when the
    :func:`repro.live.open_relation` factory is called with an invalid tier
    or an inconsistent combination of arguments.
    """


class MigrationError(LiveRelationError):
    """An α-migration between layouts failed and was aborted.

    The old backing is left intact and keeps serving; the partially-built
    target is discarded.  Raised (and caught by the self-healing loop) for
    α-equivalence mismatches, failures while copying rows into the target,
    and faults injected inside a dual-write window.
    """

    def __init__(self, message: str, stage: str = "migrate"):
        super().__init__(message)
        #: Which migration stage failed: ``"copy"``, ``"dual-write"``,
        #: ``"verify"`` or ``"swap"``.
        self.stage = stage


class RetuneFailed(LiveRelationError):
    """A live re-tune attempt failed end to end.

    Carries the failed *stage* (``"tune"``, ``"compile"``, ``"verify"``,
    ``"dual-write"``, ...) so the circuit-breaker bookkeeping and
    ``live_stats()`` can report where the attempt died.
    """

    def __init__(self, message: str, stage: str = "tune"):
        super().__init__(message)
        self.stage = stage


class FaultInjected(ReproError):
    """A deliberately injected fault fired (see :mod:`repro.faults`).

    Never raised in production configurations: the fault layer is inert
    unless a test (or the chaos suite) arms a plan.  Carries the *site*
    that fired and the 1-based *hit* index at which it fired, so sweeps
    can assert exactly which interleaving point was exercised.
    """

    def __init__(self, site: str, hit: int = 1):
        super().__init__(f"injected fault at site {site!r} (hit #{hit})")
        self.site = site
        self.hit = hit


class IntegrityError(ReproError):
    """An exception-safety rollback could not restore the previous state.

    This is the one error after which an instance may be corrupt: a mutator
    failed mid-flight *and* undoing its partial effects failed too.  The
    original failure is attached as ``__cause__``.
    """


class ParseError(ReproError):
    """A specification / decomposition mapping file could not be parsed."""

    def __init__(self, message: str, line: int | None = None, column: int | None = None):
        location = ""
        if line is not None:
            location = f" (line {line}" + (f", column {column}" if column is not None else "") + ")"
        super().__init__(f"{message}{location}")
        self.line = line
        self.column = column
